"""Executable buses: protocol coroutines over simulated wires.

This module turns a generated :class:`~repro.protogen.structure.BusStructure`
into live signals and implements, as kernel coroutines, the transfer
disciplines of every protocol descriptor:

* **full handshake** (START/DONE, 2 clocks per word) -- the paper's
  Figure 4 procedures;
* **half handshake / fixed delay / hardwired** (1 clock per word) -- a
  two-phase word strobe; for the half handshake the strobe is the REQ
  control line, for fixed-delay and hardwired buses it models the shared
  clock edge of the statically agreed schedule (no extra wire is
  counted).

Word timing is exactly ``protocol.delay_clocks`` per bus word, which is
what makes the simulator agree clock-for-clock with the performance
estimator (ref [10]) in the uncontended case -- the cross-check the
test suite performs.

Within a *read* word, the accessor drives the address wires and the
variable process answers on the data wires of the same word (SRAM-style;
see :mod:`repro.protogen.procedures`), so the multi-driver
:class:`~repro.sim.signals.DataLines` resolution is exercised for real.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Generator,
    List,
    Optional,
    Tuple,
)

from repro.errors import SimulationError
from repro.protogen.procedures import (
    ChannelProcedures,
    FieldKind,
    Role,
    WordSpec,
)
from repro.protogen.structure import BusStructure
from repro.protogen.varproc import VariableProcess
from repro.sim.arbiter import Arbiter, ImmediateArbiter
from repro.sim.kernel import Delta, Simulator, Wait, WaitOn
from repro.sim.signals import DataLines, Signal
from repro.spec.access import Direction

if TYPE_CHECKING:
    from repro.obs.flight import FlightRecorder
    from repro.obs.simmetrics import BusMetrics
    from repro.sim.faults import FaultInjector


@dataclass(frozen=True)
class Transaction:
    """One completed message transfer, for analysis and assertions."""

    start_time: int
    end_time: int
    channel: str
    direction: Direction
    address: Optional[int]
    #: Raw (encoded) data bits moved.
    data: int
    initiator: str
    #: Retransmissions a protected transfer needed (0 when clean).
    retries: int = 0

    @property
    def clocks(self) -> int:
        return self.end_time - self.start_time


class StorageAdapter:
    """Server-side view of one variable's storage, in raw bus bits.

    The bus moves unsigned bit patterns; typed encode/decode happens at
    the edges.  ``read``/``write`` take the element address (``None``
    for scalars).
    """

    def __init__(self, read: Callable[[Optional[int]], int],
                 write: Callable[[Optional[int], int], None]):
        self.read = read
        self.write = write


def _word_parts(word: WordSpec, role: Role,
                message: int) -> Tuple[int, int]:
    """(value, mask) a role drives onto the bus word, given the full
    message value of its fields."""
    value = 0
    mask = 0
    for word_slice in word.slices_driven_by(role):
        field = word_slice.field
        bits = word_slice.bits
        slice_mask = (1 << bits) - 1
        field_value = (message >> (field.offset + word_slice.field_lo))
        value |= (field_value & slice_mask) << word_slice.word_offset
        mask |= slice_mask << word_slice.word_offset
    return value, mask


def _gather(word: WordSpec, role: Role, bus_word: int) -> int:
    """Message bits a role drove in ``bus_word``, repositioned into the
    message integer."""
    message = 0
    for word_slice in word.slices_driven_by(role):
        field = word_slice.field
        bits = word_slice.bits
        slice_mask = (1 << bits) - 1
        chunk = (bus_word >> word_slice.word_offset) & slice_mask
        message |= chunk << (field.offset + word_slice.field_lo)
    return message


class SimBus:
    """Live signals plus protocol engines for one generated bus."""

    def __init__(self, structure: BusStructure, sim: Simulator,
                 arbiter: Optional[Arbiter] = None, trace: bool = False,
                 metrics: Optional["BusMetrics"] = None):
        self.structure = structure
        self.name = structure.name
        self.sim = sim
        self.arbiter = arbiter or ImmediateArbiter(sim)
        clock = lambda: sim.now  # noqa: E731 - tiny closure is clearest
        # structure.control_lines appends the NACK wire on protected
        # buses; the protocol's own lines come first either way.
        self.controls: Dict[str, Signal] = {
            name: Signal(f"{structure.name}.{name}", clock=clock,
                         trace=trace, width=1)
            for name in structure.control_lines
        }
        self.id_lines = Signal(f"{structure.name}.ID", clock=clock,
                               trace=trace,
                               width=max(1, structure.id_lines))
        self.data = DataLines(f"{structure.name}.DATA", structure.width,
                              clock=clock, trace=trace)
        #: Word strobe for 1-clock protocols.  For the half handshake it
        #: *is* the REQ control line; otherwise it models the clock edge
        #: of the static schedule and is not a counted wire.
        if "REQ" in self.controls:
            self._strobe = self.controls["REQ"]
        else:
            self._strobe = Signal(f"{structure.name}._strobe", clock=clock,
                                  trace=trace)
        self.transactions: List[Transaction] = []
        self.busy_clocks = 0
        #: Optional :class:`repro.obs.BusMetrics`-shaped live collector.
        self.metrics = metrics
        #: Optional :class:`repro.sim.faults.FaultInjector`; attached by
        #: the runtime when a fault plan targets this bus.
        self.injector: Optional["FaultInjector"] = None
        #: Optional :class:`repro.obs.flight.FlightRecorder`; attached
        #: by the runtime.  Every hook is None-guarded so unrecorded
        #: runs pay one pointer test per site.
        self.recorder: Optional["FlightRecorder"] = None
        #: Fault-tolerance policy of the generated structure (None for
        #: the paper's plain buses).
        self.protection = structure.protection

    # ------------------------------------------------------------------

    @property
    def width(self) -> int:
        return self.structure.width

    @property
    def uses_handshake(self) -> bool:
        lines = self.structure.protocol.control_lines
        return "START" in lines and "DONE" in lines

    @property
    def uses_burst(self) -> bool:
        """Burst protocols handshake once per message, then stream."""
        return self.uses_handshake and \
            self.structure.protocol.setup_clocks > 0

    def utilization(self, end_time: int) -> float:
        """Fraction of elapsed clocks the bus was transferring."""
        if end_time <= 0:
            return 0.0
        return self.busy_clocks / end_time

    def _clear_word(self) -> None:
        """Turn the data wires over to the next word."""
        self.data.drive("accessor", 0, 0)
        self.data.drive("server", 0, 0)

    # ------------------------------------------------------------------
    # Accessor side
    # ------------------------------------------------------------------

    def accessor_transfer(self, procs: ChannelProcedures, initiator: str,
                          address: Optional[int],
                          data: Optional[int]) -> Generator:
        """Coroutine performing one whole message transfer.

        ``data`` is the raw encoded value for writes, ``None`` for
        reads.  Returns the raw received data for reads (via the
        generator's return value; call with ``yield from``).

        The caller must hold the bus (arbiter) for the duration.
        """
        channel = procs.channel
        layout = procs.layout
        if channel.is_write:
            if data is None:
                raise SimulationError(
                    f"channel {channel.name}: write transfer needs data"
                )
            message = layout.pack(address, data)
        else:
            message = layout.pack(address, 0) if layout.has_address else 0

        code = self.structure.ids.code(channel.name)
        words = layout.words(self.width)
        start_time = self.sim.now

        recorder = self.recorder
        if recorder is not None:
            flight = recorder.on_transfer_start(
                self.name, channel.name, initiator, start_time,
                len(words), self._check_extra_words(layout),
                channel.direction)
        else:
            flight = None

        retries = 0
        if self.injector is not None:
            self.injector.begin_attempt(self.name)
        if self.protection is not None:
            received, retries = yield from self._accessor_protected(
                procs, code, words, message, flight)
        elif self.uses_burst:
            received = yield from self._accessor_burst(
                code, words, message, flight)
        elif self.uses_handshake:
            received = yield from self._accessor_handshake(
                code, words, message, flight)
        else:
            received = yield from self._accessor_strobed(
                code, words, message, flight)

        message_clocks = self.structure.protocol.message_clocks(len(words))
        message_clocks *= 1 + retries
        self.busy_clocks += message_clocks

        if channel.is_write:
            result: Optional[int] = None
            logged_data = data
        else:
            data_field = layout.field(FieldKind.DATA)
            assert data_field is not None
            result = (received >> data_field.offset) & \
                ((1 << data_field.bits) - 1)
            logged_data = result
        transaction = Transaction(
            start_time=start_time, end_time=self.sim.now,
            channel=channel.name, direction=channel.direction,
            address=address, data=logged_data or 0, initiator=initiator,
            retries=retries,
        )
        self.transactions.append(transaction)
        if self.metrics is not None:
            self.metrics.on_transaction(transaction, words=len(words),
                                        busy_clocks=message_clocks)
        if flight is not None:
            recorder.on_commit(flight, self.sim.now, retries)
        return result

    def _check_extra_words(self, layout) -> int:
        """Whole bus words the CHECK field appends to the message --
        the protection bucket's unit of account."""
        check = layout.field(FieldKind.CHECK)
        if check is None:
            return 0
        bare_bits = layout.total_bits - check.bits
        bare_words = max(1, -(-bare_bits // self.width))
        return layout.word_count(self.width) - bare_words

    def _accessor_handshake(self, code: int, words: List[WordSpec],
                            message: int, flight=None) -> Generator:
        """Full handshake: 2 clocks per word (Figure 4's SendCHx body)."""
        start = self.controls["START"]
        done = self.controls["DONE"]
        injector = self.injector
        recorder = self.recorder
        received = 0
        for word in words:
            if injector is not None:
                injector.begin_word(self.name, word.index)
            value, mask = _word_parts(word, Role.ACCESSOR, message)
            self._clear_word()
            self.id_lines.set(code)
            self.data.drive("accessor", value, mask)
            start.set(1)
            if flight is not None:
                recorder.on_word_start(flight, self.sim.now, word.index)
            yield Wait(1)
            if done.value != 1:
                raise SimulationError(
                    f"bus {self.structure.name}: DONE not asserted one "
                    f"clock after START (word {word.index}, ID {code}); "
                    "is the variable process running?"
                )
            received |= _gather(word, Role.SERVER, self.data.value)
            if flight is not None:
                recorder.on_data_phase(flight, self.sim.now, word.index)
            start.set(0)
            yield Wait(1)
            if done.value != 0:
                raise SimulationError(
                    f"bus {self.structure.name}: DONE stuck high after "
                    f"START fell (word {word.index}, ID {code})"
                )
            if flight is not None:
                recorder.on_handshake_phase(flight, self.sim.now,
                                            word.index)
        return received

    def _accessor_burst(self, code: int, words: List[WordSpec],
                        message: int, flight=None) -> Generator:
        """Burst: one START/DONE handshake per message (2 clocks), then
        words stream at one per clock on the strobe."""
        start = self.controls["START"]
        done = self.controls["DONE"]
        recorder = self.recorder
        # Grant phase: announce the burst.
        self._clear_word()
        self.id_lines.set(code)
        start.set(1)
        yield Wait(1)
        if done.value != 1:
            raise SimulationError(
                f"bus {self.structure.name}: burst grant not acknowledged "
                f"(ID {code}); is the variable process running?"
            )
        if flight is not None:
            recorder.on_setup(flight, self.sim.now)
        # Stream phase: one word per clock.
        injector = self.injector
        received = 0
        for word in words:
            if injector is not None:
                injector.begin_word(self.name, word.index)
            value, mask = _word_parts(word, Role.ACCESSOR, message)
            self._clear_word()
            self.data.drive("accessor", value, mask)
            self._strobe.set(self._strobe.value + 1)
            if flight is not None:
                recorder.on_word_start(flight, self.sim.now, word.index)
            yield Delta()
            received |= _gather(word, Role.SERVER, self.data.value)
            yield Wait(1)
            if flight is not None:
                recorder.on_data_phase(flight, self.sim.now, word.index)
        # Release phase.
        start.set(0)
        yield Wait(1)
        if done.value != 0:
            raise SimulationError(
                f"bus {self.structure.name}: DONE stuck high after burst "
                f"release (ID {code})"
            )
        if flight is not None:
            recorder.on_release(flight, self.sim.now)
        return received

    def _accessor_strobed(self, code: int, words: List[WordSpec],
                          message: int, flight=None) -> Generator:
        """Two-phase strobe: 1 clock per word (half handshake /
        fixed delay / hardwired)."""
        injector = self.injector
        recorder = self.recorder
        received = 0
        for word in words:
            if injector is not None:
                injector.begin_word(self.name, word.index)
            value, mask = _word_parts(word, Role.ACCESSOR, message)
            self._clear_word()
            self.id_lines.set(code)
            self.data.drive("accessor", value, mask)
            self._strobe.set(self._strobe.value + 1)
            if flight is not None:
                recorder.on_word_start(flight, self.sim.now, word.index)
            yield Delta()
            # The server answered within this clock's passes.
            received |= _gather(word, Role.SERVER, self.data.value)
            yield Wait(1)
            if flight is not None:
                recorder.on_data_phase(flight, self.sim.now, word.index)
        return received

    def _accessor_protected(self, procs: ChannelProcedures, code: int,
                            words: List[WordSpec],
                            message: int, flight=None) -> Generator:
        """Protected full handshake: timeout-bounded waits, a NACK
        sample on writes, check-field verification on reads, and
        bounded whole-message retransmission.

        Returns ``(received, retries)``.  Raises
        :class:`SimulationError` when the retry budget runs dry -- a
        fault is *never* absorbed silently.
        """
        plan = self.protection
        layout = procs.layout
        is_write = procs.channel.is_write
        start = self.controls["START"]
        done = self.controls["DONE"]
        nack = self.controls[plan.nack_line]
        injector = self.injector
        recorder = self.recorder
        timeout = plan.timeout_clocks
        if plan.retry_step < 1:
            raise SimulationError(
                f"bus {self.structure.name}: protection retry_step must "
                f"be >= 1, got {plan.retry_step} (the retry budget "
                "would never shrink)"
            )
        budget = plan.max_retries
        retries = 0
        while True:
            if retries and injector is not None:
                injector.begin_attempt(self.name)
            if flight is not None:
                recorder.on_attempt_begin(flight, self.sim.now)
            failure: Optional[str] = None
            received = 0
            nacked = False
            for word in words:
                if injector is not None:
                    injector.begin_word(self.name, word.index)
                value, mask = _word_parts(word, Role.ACCESSOR, message)
                self._clear_word()
                self.id_lines.set(code)
                self.data.drive("accessor", value, mask)
                start.set(1)
                if flight is not None:
                    recorder.on_word_start(flight, self.sim.now,
                                           word.index)
                yield Wait(1)
                if done.value != 1:
                    yield WaitOn((done,), lambda: done.value == 1,
                                 timeout=timeout)
                if done.value != 1:
                    failure = (f"DONE never rose (word {word.index}, "
                               f"ID {code})")
                    break
                received |= _gather(word, Role.SERVER, self.data.value)
                if flight is not None:
                    recorder.on_data_phase(flight, self.sim.now,
                                           word.index)
                if nack.value == 1:
                    nacked = True
                start.set(0)
                yield Wait(1)
                if done.value != 0:
                    yield WaitOn((done,), lambda: done.value == 0,
                                 timeout=timeout)
                if done.value != 0:
                    failure = (f"DONE never fell (word {word.index}, "
                               f"ID {code})")
                    break
                if flight is not None:
                    recorder.on_handshake_phase(flight, self.sim.now,
                                                word.index)
            if failure is None:
                if is_write and nacked:
                    failure = "server NACKed the message (check mismatch)"
                    if flight is not None:
                        recorder.on_nack(flight, self.sim.now, failure)
                elif not is_write \
                        and not layout.check_ok(message | received):
                    failure = "response check mismatch"
                    if flight is not None:
                        recorder.on_check_fail(flight, self.sim.now,
                                               failure)
                else:
                    return received, retries
            # Abort the attempt and resynchronize: the server's timed
            # mid-message wait (timeout + 1) expires inside our idle
            # window (timeout + 2), so it discards any partial transfer
            # before the retransmission begins.
            start.set(0)
            self._clear_word()
            budget -= plan.retry_step
            retries += 1
            if budget < 0:
                if flight is not None:
                    recorder.on_giveup(flight, self.sim.now, failure,
                                       retries)
                raise SimulationError(
                    f"bus {self.structure.name}: channel "
                    f"{procs.channel.name} gave up after {retries} "
                    f"failed attempt(s): {failure} (retry budget "
                    f"{plan.max_retries} exhausted)"
                )
            if flight is not None:
                recorder.on_attempt_failed(flight, self.sim.now,
                                           failure, retries)
            yield Wait(timeout + 2)

    # ------------------------------------------------------------------
    # Server side (variable processes)
    # ------------------------------------------------------------------

    def variable_server(self, process: VariableProcess,
                        storage: StorageAdapter) -> Generator:
        """Daemon coroutine: the executable form of a generated variable
        process (Figure 5's ``Xproc``/``MEMproc``)."""
        services: Dict[int, ChannelProcedures] = {
            self.structure.ids.code(s.channel.name): s
            for s in process.services
        }
        if self.protection is not None:
            yield from self._server_protected(process.name, services,
                                              storage)
        elif self.uses_burst:
            yield from self._server_burst(process.name, services, storage)
        elif self.uses_handshake:
            yield from self._server_handshake(process.name, services,
                                              storage)
        else:
            yield from self._server_strobed(process.name, services, storage)

    def _server_handshake(self, name: str,
                          services: Dict[int, ChannelProcedures],
                          storage: StorageAdapter) -> Generator:
        start = self.controls["START"]
        done = self.controls["DONE"]
        id_lines = self.id_lines
        in_progress: Dict[int, _ServerTransfer] = {}
        while True:
            yield WaitOn(
                (start, id_lines),
                lambda: start.value == 1 and id_lines.value in services,
            )
            code = id_lines.value
            transfer = in_progress.get(code)
            if transfer is None:
                transfer = _ServerTransfer(services[code], self.width,
                                           storage)
                in_progress[code] = transfer
            transfer.handle_word(self.data)
            done.set(1)
            yield WaitOn((start,), lambda: start.value == 0)
            done.set(0)
            if transfer.complete:
                transfer.commit()
                del in_progress[code]

    def _server_protected(self, name: str,
                          services: Dict[int, ChannelProcedures],
                          storage: StorageAdapter) -> Generator:
        """Protected full-handshake server: verifies the check field on
        writes (raising NACK before DONE so both land in one delta),
        commits only clean messages, and recovers from stuck or
        abandoned handshakes via timeout-bounded mid-message waits.

        Between messages the wait is untimed, so an idle protected bus
        schedules no timers -- protection is zero-cost when nothing is
        in flight.
        """
        plan = self.protection
        start = self.controls["START"]
        done = self.controls["DONE"]
        nack = self.controls[plan.nack_line]
        id_lines = self.id_lines
        timeout = plan.timeout_clocks
        in_progress: Dict[int, _ServerTransfer] = {}

        def ready() -> bool:
            return start.value == 1 and id_lines.value in services

        while True:
            if in_progress:
                yield WaitOn((start, id_lines), ready, timeout=timeout + 1)
                if not ready():
                    # The accessor abandoned the message (its own
                    # timeout fired); drop the partial transfer.
                    in_progress.clear()
                    nack.set(0)
                    continue
            else:
                yield WaitOn((start, id_lines), ready)
            code = id_lines.value
            transfer = in_progress.get(code)
            if transfer is None:
                transfer = _ServerTransfer(services[code], self.width,
                                           storage)
                in_progress[code] = transfer
            # A dropped or delayed fall can leave DONE wedged high;
            # clear it so the acknowledge below is a real edge.  This
            # is a no-op on a clean handshake.
            done.set(0)
            transfer.handle_word(self.data)
            if transfer.complete and not transfer.check_ok():
                nack.set(1)
            done.set(1)
            yield WaitOn((start,), lambda: start.value == 0,
                         timeout=timeout + 1)
            if start.value != 0:
                # START wedged high (stuck-at fault or lost fall):
                # abort the message and wait out the accessor's abort
                # window before accepting a retransmission.
                done.set(0)
                nack.set(0)
                in_progress.pop(code, None)
                yield WaitOn((start,), lambda: start.value == 0,
                             timeout=timeout + 1)
                continue
            done.set(0)
            if transfer.complete:
                if transfer.check_ok():
                    transfer.commit()
                nack.set(0)
                del in_progress[code]

    def _server_burst(self, name: str,
                      services: Dict[int, ChannelProcedures],
                      storage: StorageAdapter) -> Generator:
        start = self.controls["START"]
        done = self.controls["DONE"]
        id_lines = self.id_lines
        strobe = self._strobe
        while True:
            yield WaitOn(
                (start, id_lines),
                lambda: start.value == 1 and id_lines.value in services,
            )
            code = id_lines.value
            done.set(1)
            transfer = _ServerTransfer(services[code], self.width, storage)
            last_strobe = strobe.value
            while not transfer.complete:
                yield WaitOn((strobe,),
                             lambda: strobe.value != last_strobe)
                last_strobe = strobe.value
                transfer.handle_word(self.data)
            transfer.commit()
            yield WaitOn((start,), lambda: start.value == 0)
            done.set(0)

    def _server_strobed(self, name: str,
                        services: Dict[int, ChannelProcedures],
                        storage: StorageAdapter) -> Generator:
        strobe = self._strobe
        last_strobe = strobe.value
        in_progress: Dict[int, _ServerTransfer] = {}
        while True:
            yield WaitOn((strobe,), lambda: strobe.value != last_strobe)
            last_strobe = strobe.value
            code = self.id_lines.value
            if code not in services:
                continue
            transfer = in_progress.get(code)
            if transfer is None:
                transfer = _ServerTransfer(services[code], self.width,
                                           storage)
                in_progress[code] = transfer
            transfer.handle_word(self.data)
            if transfer.complete:
                transfer.commit()
                del in_progress[code]


class _ServerTransfer:
    """Word-by-word server-side state of one message transfer."""

    def __init__(self, procs: ChannelProcedures, width: int,
                 storage: StorageAdapter):
        self.procs = procs
        self.storage = storage
        self.words = procs.layout.words(width)
        self.next_word = 0
        self.accessor_message = 0
        self._data_value: Optional[int] = None

    @property
    def complete(self) -> bool:
        return self.next_word >= len(self.words)

    def handle_word(self, data_lines: DataLines) -> None:
        """Latch the accessor's slices of the current word and, for
        reads, drive the server's slices."""
        if self.complete:
            raise SimulationError(
                f"channel {self.procs.channel.name}: extra bus word after "
                "message completed"
            )
        word = self.words[self.next_word]
        self.accessor_message |= _gather(word, Role.ACCESSOR,
                                         data_lines.value)
        server_slices = word.slices_driven_by(Role.SERVER)
        if server_slices:
            value, mask = _word_parts(word, Role.SERVER,
                                      self._server_message())
            data_lines.drive("server", value, mask)
        self.next_word += 1

    def check_ok(self) -> bool:
        """True when the gathered message's check field matches (or no
        verification applies: unprotected layout, or a read -- the
        accessor verifies the response end-to-end on its side)."""
        layout = self.procs.layout
        if layout.protection is None or not self.procs.channel.is_write:
            return True
        return layout.check_ok(self.accessor_message)

    def _server_message(self) -> int:
        """Message value of server-driven fields (read data), fetched
        once the address is complete."""
        if self._data_value is None:
            layout = self.procs.layout
            address: Optional[int] = None
            if layout.has_address:
                address, _ = layout.unpack(self.accessor_message)
            raw = self.storage.read(address)
            data_field = layout.field(FieldKind.DATA)
            assert data_field is not None
            value = (raw & ((1 << data_field.bits) - 1)) \
                << data_field.offset
            check_field = layout.field(FieldKind.CHECK)
            if check_field is not None and check_field.driver is Role.SERVER:
                # The response check covers the address the server
                # *latched* plus the data it returns, so an address
                # corrupted in flight surfaces as a check mismatch on
                # the accessor side.
                payload = value
                addr_field = layout.field(FieldKind.ADDRESS)
                if addr_field is not None:
                    addr_mask = ((1 << addr_field.bits) - 1) \
                        << addr_field.offset
                    payload |= self.accessor_message & addr_mask
                value |= layout.compute_check(payload) << check_field.offset
            self._data_value = value
        return self._data_value

    def commit(self) -> None:
        """Apply a completed write to storage (reads need nothing)."""
        if not self.procs.channel.is_write:
            return
        layout = self.procs.layout
        address, data = layout.unpack(self.accessor_message)
        self.storage.write(address, data)
