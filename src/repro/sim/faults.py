"""Deterministic fault injection for simulated buses.

The paper's protocols assume perfectly reliable wires.  This module
models the ways a physical channel actually misbehaves, so the
fault-tolerant protocol variants (:mod:`repro.protocols`
``ProtectionPlan``) can be exercised and the unprotected ones shown to
*detect* (never silently absorb) corruption:

* **BIT_FLIP** -- XOR a mask onto one DATA-line drive;
* **DROP** -- swallow one control-line transition (a lost START/DONE
  edge);
* **DELAY** -- postpone one control-line transition by N clocks;
* **STUCK** -- hold a control line at a fixed value over a clock
  window.

Faults are *data*, collected in a :class:`FaultPlan` that is seedable
(:meth:`FaultPlan.random`) and JSON round-trippable (``--faults
plan.json`` on the CLI), so every faulty run is reproducible down to
the golden transaction log.  A fault targets one bus and is scheduled
by clock window (``start_clock``/``end_clock``) and/or by transaction
attempt and word index; retries count as fresh attempts, so a
single-shot fault is not re-injected into the retransmission.

The :class:`FaultInjector` wires a plan into a running simulation by
attaching per-signal hooks (``Signal.faults`` / ``DataLines.faults``)
only to the targeted wires -- an unfaulted run pays a single ``None``
test per signal update.  Every fault that actually perturbed a wire is
recorded as a :class:`FaultRecord` and surfaced through
``SimResult.fault_records``, the live metrics and the Chrome trace
exporter.
"""

from __future__ import annotations

import json
import random as _random
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError

#: The reserved line name addressing a bus's data wires.
DATA_LINES = "DATA"


class FaultKind(Enum):
    """What the injected fault does to its target wire(s)."""

    BIT_FLIP = "bit_flip"
    DROP = "drop"
    DELAY = "delay"
    STUCK = "stuck"

    def __str__(self) -> str:
        return self.value


@dataclass
class Fault:
    """One injectable fault.

    Targeting: ``bus`` names the bus; ``line`` is ``"DATA"`` for
    BIT_FLIP or a control-line name (``START``, ``DONE``, ``NACK``,
    ``REQ``) for the transition faults.  ``start_clock``/``end_clock``
    bound the active clock window (inclusive; ``None`` = open), and
    ``transaction``/``word`` restrict to one message attempt and word
    index on the bus (``None`` = any).  ``once`` (default) retires the
    fault after its first injection -- the single-fault model the
    protected protocols are proven against.
    """

    kind: FaultKind
    bus: str
    line: str = DATA_LINES
    #: BIT_FLIP: XOR mask applied to the driven word.
    flip_mask: int = 1
    #: STUCK: value the line is held at.
    stuck_value: int = 0
    #: DELAY: clocks the transition is postponed.
    delay_clocks: int = 1
    start_clock: Optional[int] = None
    end_clock: Optional[int] = None
    transaction: Optional[int] = None
    word: Optional[int] = None
    once: bool = True
    #: Runtime flag: True once a ``once`` fault has fired.
    consumed: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if isinstance(self.kind, str):
            self.kind = FaultKind(self.kind)
        if self.kind is FaultKind.BIT_FLIP:
            if self.line != DATA_LINES:
                raise SimulationError(
                    f"fault on bus {self.bus}: BIT_FLIP targets the "
                    f"DATA lines, not {self.line!r}"
                )
            if self.flip_mask < 1:
                raise SimulationError(
                    f"fault on bus {self.bus}: BIT_FLIP needs a "
                    f"non-zero flip_mask"
                )
        else:
            if self.line == DATA_LINES:
                raise SimulationError(
                    f"fault on bus {self.bus}: {self.kind} targets a "
                    "control line; DATA lines only take BIT_FLIP"
                )
        if self.kind is FaultKind.DELAY and self.delay_clocks < 1:
            raise SimulationError(
                f"fault on bus {self.bus}: DELAY needs delay_clocks "
                ">= 1"
            )
        if self.kind is FaultKind.STUCK:
            if self.start_clock is None or self.start_clock < 1:
                raise SimulationError(
                    f"fault on bus {self.bus}: STUCK needs a "
                    "start_clock >= 1 (the window is forced at its "
                    "first clock)"
                )
            if self.stuck_value not in (0, 1):
                raise SimulationError(
                    f"fault on bus {self.bus}: STUCK holds a control "
                    "line, stuck_value must be 0 or 1"
                )
        if (self.start_clock is not None and self.end_clock is not None
                and self.end_clock < self.start_clock):
            raise SimulationError(
                f"fault on bus {self.bus}: end_clock "
                f"{self.end_clock} precedes start_clock "
                f"{self.start_clock}"
            )

    # ------------------------------------------------------------------

    def in_window(self, clock: int) -> bool:
        if self.start_clock is not None and clock < self.start_clock:
            return False
        if self.end_clock is not None and clock > self.end_clock:
            return False
        return True

    def matches(self, clock: int, attempt: Optional[int],
                word: Optional[int]) -> bool:
        """Does the fault fire at this (clock, attempt, word) point?"""
        if self.consumed and self.once:
            return False
        if not self.in_window(clock):
            return False
        if self.transaction is not None and attempt != self.transaction:
            return False
        if self.word is not None and word != self.word:
            return False
        return True

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "kind": self.kind.value, "bus": self.bus, "line": self.line,
        }
        if self.kind is FaultKind.BIT_FLIP:
            payload["flip_mask"] = self.flip_mask
        if self.kind is FaultKind.STUCK:
            payload["stuck_value"] = self.stuck_value
        if self.kind is FaultKind.DELAY:
            payload["delay_clocks"] = self.delay_clocks
        for key in ("start_clock", "end_clock", "transaction", "word"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if not self.once:
            payload["once"] = False
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Fault":
        known = {"kind", "bus", "line", "flip_mask", "stuck_value",
                 "delay_clocks", "start_clock", "end_clock",
                 "transaction", "word", "once"}
        unknown = set(payload) - known
        if unknown:
            raise SimulationError(
                f"fault plan: unknown fault keys {sorted(unknown)}"
            )
        return cls(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually perturbed a wire."""

    kind: FaultKind
    bus: str
    line: str
    clock: int
    transaction: Optional[int]
    word: Optional[int]
    detail: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind.value, "bus": self.bus, "line": self.line,
            "clock": self.clock, "transaction": self.transaction,
            "word": self.word, "detail": self.detail,
        }


class FaultPlan:
    """An ordered collection of faults for one simulation run."""

    def __init__(self, faults: Sequence[Fault] = (),
                 seed: Optional[int] = None):
        self.faults: List[Fault] = list(faults)
        self.seed = seed

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def buses(self) -> List[str]:
        seen: List[str] = []
        for fault in self.faults:
            if fault.bus not in seen:
                seen.append(fault.bus)
        return seen

    def reset(self) -> None:
        """Clear consumption state so the plan can drive a fresh run."""
        for fault in self.faults:
            fault.consumed = False

    # -- construction --------------------------------------------------

    @classmethod
    def random(cls, seed: int, bus: str, width: int,
               count: int = 1,
               kinds: Sequence[FaultKind] = (FaultKind.BIT_FLIP,
                                             FaultKind.DROP,
                                             FaultKind.DELAY),
               control_lines: Sequence[str] = ("START", "DONE"),
               max_transaction: int = 16,
               max_word: int = 1) -> "FaultPlan":
        """A deterministic plan of ``count`` single-shot faults.

        The same ``seed`` always yields the same plan; faults target
        random (transaction, word) points so repeated seeds sweep the
        fault space.
        """
        rng = _random.Random(seed)
        faults: List[Fault] = []
        for _ in range(count):
            kind = rng.choice(list(kinds))
            transaction = rng.randrange(max_transaction)
            if kind is FaultKind.BIT_FLIP:
                faults.append(Fault(
                    kind=kind, bus=bus,
                    flip_mask=1 << rng.randrange(width),
                    transaction=transaction,
                    word=rng.randrange(max_word + 1),
                ))
            elif kind is FaultKind.STUCK:
                start = rng.randrange(1, 200)
                faults.append(Fault(
                    kind=kind, bus=bus,
                    line=rng.choice(list(control_lines)),
                    stuck_value=rng.randrange(2),
                    start_clock=start,
                    end_clock=start + rng.randrange(1, 20),
                ))
            else:
                faults.append(Fault(
                    kind=kind, bus=bus,
                    line=rng.choice(list(control_lines)),
                    delay_clocks=rng.randrange(1, 4),
                    transaction=transaction,
                ))
        return cls(faults, seed=seed)

    # -- JSON round trip ----------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "faults": [fault.to_dict() for fault in self.faults],
        }
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        if "faults" not in payload:
            raise SimulationError(
                "fault plan: missing the 'faults' list"
            )
        faults = [Fault.from_dict(dict(entry))
                  for entry in payload["faults"]]  # type: ignore[union-attr]
        return cls(faults, seed=payload.get("seed"))  # type: ignore[arg-type]

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as error:
                raise SimulationError(
                    f"fault plan {path}: invalid JSON ({error})"
                ) from None
        return cls.from_dict(payload)

    def describe(self) -> str:
        if not self.faults:
            return "fault plan: empty"
        lines = [f"fault plan: {len(self.faults)} fault(s)"]
        for fault in self.faults:
            where = []
            if fault.transaction is not None:
                where.append(f"txn {fault.transaction}")
            if fault.word is not None:
                where.append(f"word {fault.word}")
            if fault.start_clock is not None or fault.end_clock is not None:
                where.append(f"clocks [{fault.start_clock}, "
                             f"{fault.end_clock}]")
            lines.append(f"  - {fault.kind} on {fault.bus}.{fault.line}"
                         + (f" at {', '.join(where)}" if where else ""))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Injection machinery
# ---------------------------------------------------------------------------

class _DataHook:
    """``DataLines.faults`` hook: applies BIT_FLIP faults to drives."""

    __slots__ = ("injector", "bus", "faults")

    def __init__(self, injector: "FaultInjector", bus: str,
                 faults: List[Fault]):
        self.injector = injector
        self.bus = bus
        self.faults = faults

    def filter_drive(self, lines, role: str, value: int,
                     mask: int) -> int:
        injector = self.injector
        clock = injector.sim.now
        attempt, word = injector.context(self.bus)
        for fault in self.faults:
            if not fault.matches(clock, attempt, word):
                continue
            flip = fault.flip_mask & mask
            if not flip:
                continue        # fault targets wires this role not drive
            fault.consumed = True
            value ^= flip
            injector.record(fault, clock, attempt, word,
                            f"{role} word flipped by {flip:#x}")
        return value


class _ControlHook:
    """``Signal.faults`` hook: DROP / DELAY / STUCK on a control line."""

    __slots__ = ("injector", "bus", "faults")

    def __init__(self, injector: "FaultInjector", bus: str,
                 faults: List[Fault]):
        self.injector = injector
        self.bus = bus
        self.faults = faults

    def filter_set(self, signal, value: int) -> int:
        injector = self.injector
        clock = injector.sim.now
        attempt, word = injector.context(self.bus)
        for fault in self.faults:
            if fault.kind is FaultKind.STUCK:
                if fault.in_window(clock):
                    # Held: writes inside the window are overridden.
                    return fault.stuck_value
                continue
            if value == signal.value:
                continue        # not a transition; DROP/DELAY idle
            if not fault.matches(clock, attempt, word):
                continue
            fault.consumed = True
            if fault.kind is FaultKind.DROP:
                injector.record(fault, clock, attempt, word,
                                f"transition to {value} dropped")
                return signal.value
            # DELAY: suppress now, re-apply later via the kernel.
            injector.record(
                fault, clock, attempt, word,
                f"transition to {value} delayed "
                f"{fault.delay_clocks} clock(s)")
            injector.sim.call_at(
                clock + fault.delay_clocks,
                lambda sig=signal, val=value: sig.force(val))
            return signal.value
        return value


class FaultInjector:
    """Wires a :class:`FaultPlan` into a simulation.

    Created by :func:`repro.sim.runtime.simulate`; buses register
    themselves via :meth:`attach_bus` and report message-attempt /
    word progress via :meth:`begin_attempt` / :meth:`begin_word`, which
    is how transaction-indexed faults find their target.
    """

    def __init__(self, plan: FaultPlan, sim) -> None:
        self.plan = plan
        self.sim = sim
        self.records: List[FaultRecord] = []
        #: Optional flight recorder; every fired fault is forwarded so
        #: it correlates with the transfer it perturbed.
        self.recorder = None
        #: bus name -> (message attempt counter, current word index).
        self._context: Dict[str, Tuple[int, int]] = {}
        self._attached: List[str] = []
        plan.reset()

    # -- bus registration ---------------------------------------------

    def attach_bus(self, sim_bus) -> None:
        """Attach hooks for every fault targeting ``sim_bus``."""
        name = sim_bus.name
        data_faults = [f for f in self.plan
                       if f.bus == name and f.line == DATA_LINES]
        if data_faults:
            sim_bus.data.faults = _DataHook(self, name, data_faults)
        by_line: Dict[str, List[Fault]] = {}
        for fault in self.plan:
            if fault.bus == name and fault.line != DATA_LINES:
                by_line.setdefault(fault.line, []).append(fault)
        for line, faults in by_line.items():
            signal = sim_bus.controls.get(line)
            if signal is None:
                known = ", ".join(sorted(sim_bus.controls)) or "none"
                raise SimulationError(
                    f"fault plan: bus {name} has no control line "
                    f"{line!r} (known: {known})"
                )
            signal.faults = _ControlHook(self, name, faults)
            for fault in faults:
                if fault.kind is FaultKind.STUCK:
                    self._arm_stuck(fault, signal)
        if data_faults or by_line:
            # Only targeted buses report attempt/word context, so
            # unfaulted buses keep their plain (hook-free) hot path.
            sim_bus.injector = self
        self._context[name] = (-1, 0)
        self._attached.append(name)

    def _arm_stuck(self, fault: Fault, signal) -> None:
        """Force the line at the window start so a quiet wire is held
        too (filter_set only sees explicit writes)."""
        def force() -> None:
            self.record(fault, self.sim.now, None, None,
                        f"line held at {fault.stuck_value}"
                        + (f" until clock {fault.end_clock}"
                           if fault.end_clock is not None else ""))
            signal.force(fault.stuck_value)
        self.sim.call_at(fault.start_clock, force)

    def verify_attached(self) -> None:
        """Every fault's bus must exist in the simulated design."""
        missing = [f.bus for f in self.plan
                   if f.bus not in self._attached]
        if missing:
            known = ", ".join(sorted(self._attached)) or "none"
            raise SimulationError(
                f"fault plan targets unknown bus(es) "
                f"{sorted(set(missing))}; simulated buses: {known}"
            )

    # -- transfer context ---------------------------------------------

    def begin_attempt(self, bus: str) -> None:
        attempt, _ = self._context.get(bus, (-1, 0))
        self._context[bus] = (attempt + 1, 0)

    def begin_word(self, bus: str, word: int) -> None:
        attempt, _ = self._context.get(bus, (-1, 0))
        self._context[bus] = (attempt, word)

    def context(self, bus: str) -> Tuple[Optional[int], Optional[int]]:
        entry = self._context.get(bus)
        if entry is None:
            return None, None
        return entry

    # -- reporting -----------------------------------------------------

    def record(self, fault: Fault, clock: int, attempt: Optional[int],
               word: Optional[int], detail: str) -> None:
        self.records.append(FaultRecord(
            kind=fault.kind, bus=fault.bus, line=fault.line,
            clock=clock, transaction=attempt, word=word, detail=detail,
        ))
        if self.recorder is not None:
            self.recorder.on_fault(self.records[-1])
