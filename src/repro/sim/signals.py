"""Signals: the simulated wires of generated buses.

A :class:`Signal` is a named value holder with an optional value-change
trace (enough to export a VCD-style waveform from
:mod:`repro.sim.trace`).  The kernel's cooperative pass discipline
provides the ordering guarantees a full resolved-signal/delta
implementation would; what remains is bookkeeping.

Both :class:`Signal` and :class:`DataLines` are *watchable*: when a
process sleeps on them with :class:`~repro.sim.kernel.WaitOn`, the
kernel subscribes it via the ``_watchers`` slot and every value change
notifies the kernel's :class:`~repro.sim.kernel.EventBus`.  Unwatched
signals pay a single ``None`` test per change.

``DataLines`` models the one physically interesting wrinkle: during a
*read* transaction, the accessor drives the address portion of a bus
word while the variable process drives the data portion -- two drivers
on disjoint wires of the same DATA field.  It therefore keeps one
contribution (value, mask) per driver role and resolves them with OR,
raising on overlapping masks (a genuine drive conflict, which protocol
generation must never produce).  The resolved word is cached and
invalidated by ``drive``/``release`` -- it is read inside every
receive-side word handler, so recomputing it per read was measurable.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError


class Signal:
    """A named scalar signal with optional value-change recording.

    ``width`` is the *declared* bit width, when known (control lines
    are 1 bit, ID lines ``clog2(channels)`` bits).  Waveform export
    uses it so a wire dumps at its physical width even when the run
    only exercised small values; ``None`` means unknown, and exporters
    fall back to the observed value range.
    """

    __slots__ = ("name", "value", "width", "_clock", "changes",
                 "trace_enabled", "_watchers", "_event_bus", "faults")

    def __init__(self, name: str, init: int = 0,
                 clock: Optional[Callable[[], int]] = None,
                 trace: bool = False, width: Optional[int] = None):
        if width is not None and width < 1:
            raise SimulationError(
                f"signal {name}: declared width must be >= 1, got {width}"
            )
        self.name = name
        self.value = init
        self.width = width
        self._clock = clock
        self.trace_enabled = trace
        #: (time, value) pairs, recorded when tracing is on.
        self.changes: List[Tuple[int, int]] = [(0, init)] if trace else []
        #: Sensitivity list, managed by the kernel's EventBus.
        self._watchers: Optional[list] = None
        self._event_bus = None
        #: Fault-injection hook; attached by the injector only to
        #: targeted signals, so unfaulted runs pay one None test.
        self.faults = None

    def set(self, value: int) -> None:
        if self.faults is not None:
            value = self.faults.filter_set(self, value)
        if value == self.value:
            return
        self.value = value
        if self.trace_enabled and self._clock is not None:
            self.changes.append((self._clock(), value))
        if self._watchers:
            self._event_bus.notify(self)

    def force(self, value: int) -> None:
        """Set the wire bypassing the fault hook (injector internal)."""
        if value == self.value:
            return
        self.value = value
        if self.trace_enabled and self._clock is not None:
            self.changes.append((self._clock(), value))
        if self._watchers:
            self._event_bus.notify(self)

    def __repr__(self) -> str:
        return f"Signal({self.name}={self.value})"


class DataLines:
    """The DATA field of a bus: width-limited, multi-driver by role.

    Each driver role ("accessor", "server") contributes ``(value,
    mask)``; the resolved bus value is the OR of contributions.  Masks
    of simultaneous drivers must be disjoint.
    """

    __slots__ = ("name", "width", "_full_mask", "_contributions",
                 "_clock", "trace_enabled", "changes", "_resolved",
                 "_watchers", "_event_bus", "faults")

    def __init__(self, name: str, width: int,
                 clock: Optional[Callable[[], int]] = None,
                 trace: bool = False):
        if width < 1:
            raise SimulationError(f"data lines need width >= 1, got {width}")
        self.name = name
        self.width = width
        self._full_mask = (1 << width) - 1
        self._contributions: Dict[str, Tuple[int, int]] = {}
        self._clock = clock
        self.trace_enabled = trace
        self.changes: List[Tuple[int, int]] = [(0, 0)] if trace else []
        #: Cached OR-resolution of the contributions; kept current by
        #: drive/release so reads are O(1).
        self._resolved = 0
        #: Sensitivity list, managed by the kernel's EventBus.
        self._watchers: Optional[list] = None
        self._event_bus = None
        #: Fault-injection hook; attached by the injector only to
        #: targeted buses, so unfaulted runs pay one None test.
        self.faults = None

    def drive(self, role: str, value: int, mask: int) -> None:
        """Set one role's contribution; ``mask`` selects the wires it
        drives (0 mask releases them)."""
        if self.faults is not None and mask:
            value = self.faults.filter_drive(self, role, value, mask)
        if mask & ~self._full_mask:
            raise SimulationError(
                f"{self.name}: drive mask {mask:#x} exceeds width "
                f"{self.width}"
            )
        if value & ~mask:
            raise SimulationError(
                f"{self.name}: driver {role} sets bits outside its mask"
            )
        for other_role, (_, other_mask) in self._contributions.items():
            if other_role != role and (mask & other_mask):
                raise SimulationError(
                    f"{self.name}: drive conflict between {role} and "
                    f"{other_role} on wires {mask & other_mask:#x}"
                )
        if mask == 0:
            self._contributions.pop(role, None)
        else:
            self._contributions[role] = (value, mask)
        self._resolve()

    def release(self, role: str) -> None:
        """Stop driving (high-impedance) for one role."""
        self._contributions.pop(role, None)
        self._resolve()

    @property
    def value(self) -> int:
        """The resolved bus word (undriven wires read 0)."""
        return self._resolved

    def _resolve(self) -> None:
        """Recompute the cached resolution after a contribution change;
        record and notify only when the resolved word changed."""
        resolved = 0
        for value, _ in self._contributions.values():
            resolved |= value
        if resolved == self._resolved:
            return
        self._resolved = resolved
        if self.trace_enabled and self._clock is not None:
            self.changes.append((self._clock(), resolved))
        if self._watchers:
            self._event_bus.notify(self)

    def __repr__(self) -> str:
        return f"DataLines({self.name}={self.value:#x}, width={self.width})"
