"""Bus arbiters.

The paper defers arbitration ("further work is needed to examine the
effect of bus arbitration delays on the performance of processes",
Section 6); the bus-generation model simply assumes transfers of
different channels never collide.  To *measure* that effect (benchmark
``abl-arb``) the simulator supports pluggable arbiters:

* :class:`ImmediateArbiter` -- zero-delay, FIFO among waiters; the
  baseline matching the paper's model when processes do not overlap.
* :class:`PriorityArbiter` -- fixed priorities, optional per-grant
  delay.
* :class:`RoundRobinArbiter` -- rotating grant order, optional
  per-grant delay.
* :class:`TdmaArbiter` -- fixed time slots; a requester waits for its
  slot even on an idle bus.

An arbiter serializes whole *messages* (all words of a transaction),
matching the paper's observation that merged channels may delay
individual transfers while preserving total traffic (Figure 2).

Usage inside a process coroutine::

    yield from arbiter.acquire("EVAL_R3")
    ... perform the transaction ...
    arbiter.release("EVAL_R3")
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Sequence

from repro.errors import ArbitrationError
from repro.sim.kernel import Simulator, Wait, WaitOn
from repro.sim.signals import Signal


class Arbiter:
    """Base class: FIFO grant, optional fixed grant delay."""

    def __init__(self, sim: Simulator, grant_delay: int = 0):
        if grant_delay < 0:
            raise ArbitrationError(
                f"grant delay must be >= 0, got {grant_delay}"
            )
        self.sim = sim
        self.grant_delay = grant_delay
        self._owner: Optional[str] = None
        #: Internal event wire: bumped whenever ownership changes, so
        #: waiters sleep on a sensitivity list instead of polling.  It
        #: is not a counted bus wire.
        self._grant_event = Signal("arbiter.grant")
        self._waiting: List[str] = []
        #: (time, requester) grant log for analysis.
        self.grants: List[tuple] = []
        #: Total clocks requesters spent waiting for grants.
        self.wait_clocks = 0
        #: Optional :class:`repro.obs.ArbiterMetrics`-shaped collector
        #: (``on_request``/``on_grant``); attached by the runtime.
        self.metrics: Optional[object] = None
        #: Optional flight recorder + the bus name it should journal
        #: requests/grants under; attached by the runtime.
        self.recorder: Optional[object] = None
        self.recorder_bus: str = ""

    # -- policy hook -------------------------------------------------------

    def _pick_next(self) -> Optional[str]:
        """Choose the next owner among ``self._waiting`` (FIFO here)."""
        return self._waiting[0] if self._waiting else None

    # -- protocol ----------------------------------------------------------

    def acquire(self, requester: str) -> Generator:
        """Coroutine: blocks until ``requester`` owns the bus."""
        if requester in self._waiting or self._owner == requester:
            raise ArbitrationError(
                f"{requester} issued a nested bus acquire"
            )
        request_time = self.sim.now
        self._waiting.append(requester)
        if self.metrics is not None:
            self.metrics.on_request(len(self._waiting))
        if self.recorder is not None:
            self.recorder.on_request(self.recorder_bus, requester,
                                     request_time)
        self._try_grant()
        if self._owner != requester:
            yield WaitOn((self._grant_event,),
                         lambda: self._owner == requester)
        if self.grant_delay:
            yield Wait(self.grant_delay)
        waited = self.sim.now - request_time
        self.wait_clocks += waited
        self.grants.append((self.sim.now, requester))
        if self.metrics is not None:
            self.metrics.on_grant(requester, waited)
        if self.recorder is not None:
            self.recorder.on_grant(self.recorder_bus, requester,
                                   self.sim.now)

    def release(self, requester: str) -> None:
        if self._owner != requester:
            raise ArbitrationError(
                f"{requester} released a bus owned by {self._owner}"
            )
        self._owner = None
        self._grant_event.set(self._grant_event.value + 1)
        self._try_grant()

    def _try_grant(self) -> None:
        if self._owner is not None:
            return
        chosen = self._pick_next()
        if chosen is not None:
            self._waiting.remove(chosen)
            self._owner = chosen
            self._grant_event.set(self._grant_event.value + 1)

    @property
    def owner(self) -> Optional[str]:
        return self._owner


class ImmediateArbiter(Arbiter):
    """Zero-delay FIFO arbiter: the paper's implicit model."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, grant_delay=0)


class PriorityArbiter(Arbiter):
    """Fixed-priority arbiter (lower number = higher priority)."""

    def __init__(self, sim: Simulator, priorities: Dict[str, int],
                 grant_delay: int = 0):
        super().__init__(sim, grant_delay)
        self.priorities = dict(priorities)

    def _pick_next(self) -> Optional[str]:
        if not self._waiting:
            return None
        return min(self._waiting,
                   key=lambda name: (self.priorities.get(name, 1 << 30),
                                     self._waiting.index(name)))


class RoundRobinArbiter(Arbiter):
    """Rotating-grant arbiter over a fixed member order."""

    def __init__(self, sim: Simulator, members: Sequence[str],
                 grant_delay: int = 0):
        super().__init__(sim, grant_delay)
        if not members:
            raise ArbitrationError("round-robin arbiter needs members")
        self.members = list(members)
        self._last_index = len(self.members) - 1

    def _pick_next(self) -> Optional[str]:
        if not self._waiting:
            return None
        count = len(self.members)
        for offset in range(1, count + 1):
            candidate = self.members[(self._last_index + offset) % count]
            if candidate in self._waiting:
                self._last_index = self.members.index(candidate)
                return candidate
        # Waiters not in the member list fall back to FIFO.
        return self._waiting[0]


class TdmaArbiter(Arbiter):
    """Time-division arbiter: requester ``schedule[k]`` owns slot ``k``.

    Each slot is ``slot_clocks`` long; the cycle repeats.  A requester
    polls clock-by-clock until its slot arrives and the bus is free.
    """

    def __init__(self, sim: Simulator, schedule: Sequence[str],
                 slot_clocks: int):
        super().__init__(sim, grant_delay=0)
        if not schedule:
            raise ArbitrationError("TDMA schedule must be non-empty")
        if slot_clocks < 1:
            raise ArbitrationError(
                f"slot length must be >= 1 clock, got {slot_clocks}"
            )
        self.schedule = list(schedule)
        self.slot_clocks = slot_clocks

    def _slot_owner(self) -> str:
        cycle = self.slot_clocks * len(self.schedule)
        slot = (self.sim.now % cycle) // self.slot_clocks
        return self.schedule[slot]

    def acquire(self, requester: str) -> Generator:
        if requester not in self.schedule:
            raise ArbitrationError(
                f"{requester} has no TDMA slot (schedule: {self.schedule})"
            )
        request_time = self.sim.now
        if self.metrics is not None:
            self.metrics.on_request(1)
        if self.recorder is not None:
            self.recorder.on_request(self.recorder_bus, requester,
                                     request_time)
        while not (self._slot_owner() == requester and self._owner is None):
            yield Wait(1)
        self._owner = requester
        waited = self.sim.now - request_time
        self.wait_clocks += waited
        self.grants.append((self.sim.now, requester))
        if self.metrics is not None:
            self.metrics.on_grant(requester, waited)
        if self.recorder is not None:
            self.recorder.on_grant(self.recorder_bus, requester,
                                   self.sim.now)

    def _try_grant(self) -> None:
        # Grants happen only inside acquire's polling loop.
        return
