"""Concrete witness replay through the event kernel.

A refuted temporal property (:mod:`repro.analysis.mc`) carries a
:class:`~repro.analysis.mc.witness.Witness`: the exact schedule of
controller moves into the violation.  The model checker derived it
from the counter-extended product *graph*; this module closes the loop
by running the same schedule through the real simulation kernel
(:class:`~repro.sim.kernel.Simulator`) on real wires
(:class:`~repro.sim.signals.DataLines`), so every counterexample is
grounded in the machinery that executes production designs:

* control lines are per-role driven ``DataLines`` of width 1 -- the
  kernel's own multi-driver resolution raises
  :class:`~repro.errors.SimulationError` on a drive overlap, which is
  precisely the concrete confirmation a ``drive_race`` claim needs;
* every step fires on a clock edge (``Delta`` settle + ``Wait(1)``),
  so the replay's clock count is the schedule's real length;
* guard divergence is checked move by move against the modelled line
  levels -- a witness whose guards do not hold on replay is reported
  as unconfirmed, never papered over;
* lasso witnesses run their cycle twice and must reproduce the exact
  controller/line state at each cycle boundary without touching rest;
* ``deadlock`` claims are re-checked at the final state with the
  product explorer's own move enumeration on the replayed levels.

Control levels are registered outputs (a level persists until the
controller overwrites it), matching both the product semantics and the
VHDL the flow emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.kernel import Delta, Simulator, Wait
from repro.sim.signals import DataLines


@dataclass
class ReplayResult:
    """Outcome of replaying one witness through the kernel."""

    #: True when the replay concretely reproduces the claimed violation.
    confirmed: bool
    #: The claim type that was checked ("deadlock", "drive_race", ...).
    claim: str
    detail: str = ""
    #: Clock edges the schedule consumed.
    clocks: int = 0
    #: Steps executed before the run ended (== schedule length unless a
    #: divergence or drive conflict cut it short).
    steps_run: int = 0
    #: First guard/state mismatch between witness and replay, if any.
    divergence: Optional[str] = None
    #: Chronological replay log, one line per event.
    log: List[str] = field(default_factory=list)
    #: Flight-recorder correlation id linking this replay's journal
    #: chain (None when no recorder was attached).
    correlation_id: Optional[int] = None

    def render_text(self) -> str:
        verdict = "CONFIRMED" if self.confirmed else "NOT CONFIRMED"
        lines = [f"{verdict}: {self.claim} after {self.steps_run} "
                 f"steps / {self.clocks} clocks"]
        if self.detail:
            lines.append(f"  {self.detail}")
        if self.divergence:
            lines.append(f"  divergence: {self.divergence}")
        return "\n".join(lines)


class _Bench:
    """The wire harness one channel pair drives during replay."""

    def __init__(self, accessor, server, width: int):
        from repro.analysis.product import parse_actions, parse_guard

        self.accessor = accessor
        self.server = server
        self.effects = {
            "accessor": {s.name: parse_actions(s.actions)
                         for s in accessor.states},
            "server": {s.name: parse_actions(s.actions)
                       for s in server.states},
        }
        names = set()
        for side in self.effects.values():
            for eff in side.values():
                names.update(line for line, _ in eff.drives)
        for fsm in (accessor, server):
            for t in fsm.transitions:
                names.update(line for line, _
                             in parse_guard(t.guard).levels)
        self.controls: Dict[str, DataLines] = {
            name: DataLines(name, width=1) for name in sorted(names)}
        self.data = DataLines("DATA", width=max(1, width))
        self.state = {"accessor": accessor.initial_state().name,
                      "server": server.initial_state().name}
        #: Modelled (sticky) line levels and ID, mirroring the product
        #: explorer's `_apply` so guard checks match the graph.
        self.lines: Dict[str, int] = {}
        self.id_code: Optional[str] = None

    def apply(self, side: str) -> None:
        """Put the side's current-state outputs on the wires.

        ``DataLines.drive`` replaces the role's previous contribution,
        so levels persist (registered outputs) and any cross-role
        overlap raises :class:`SimulationError` from the kernel layer.
        """
        from repro.analysis.mc.graph import drive_set

        name = self.state[side]
        fsm = self.accessor if side == "accessor" else self.server
        eff = self.effects[side][name]
        for line, level in eff.drives:
            self.controls[line].drive(side, level, 1)
            self.lines[line] = level
        if eff.id_code is not None:
            self.id_code = eff.id_code
        ds = drive_set(fsm.state(name))
        if ds.data_mask:
            self.data.drive(side, 0, ds.data_mask)
        else:
            # DATA is tristate, not registered: the runtime releases a
            # role's word before the next driver takes the bus
            # (`_clear_word` in repro.sim.bus), so a state with no
            # data action holds the bus released.
            self.data.release(side)

    def snapshot(self) -> Tuple:
        """Controller/wire state for lasso-repetition checks."""
        return (self.state["accessor"], self.state["server"],
                tuple(sorted(self.lines.items())), self.id_code,
                tuple(wire.value for wire in self.controls.values()))

    def at_rest(self) -> bool:
        return (self.state["accessor"]
                == self.accessor.initial_state().name
                and self.state["server"]
                == self.server.initial_state().name)


def _check_guard(bench: _Bench, side: str, guard_text: Optional[str],
                 ) -> Optional[str]:
    """None when the guard holds on the modelled levels, else why not."""
    from repro.analysis.product import parse_guard

    guard = parse_guard(guard_text)
    for line, level in guard.levels:
        if bench.lines.get(line, 0) != level:
            return (f"{side} guard wants {line}={level}, wires read "
                    f"{bench.lines.get(line, 0)}")
    if guard.id_code is not None and bench.id_code != guard.id_code:
        return (f"{side} guard wants ID={guard.id_code!r}, bus carries "
                f"{bench.id_code!r}")
    # Strobe and invoke atoms are scheduling events, synchronized by
    # construction of the witness schedule.
    return None


def _confirm_final(witness, bench: _Bench, result: ReplayResult) -> None:
    """Finite-witness claims: judge the state the schedule ended in."""
    claim = witness.claim.get("type", "")
    if claim == "deadlock":
        from repro.analysis.product import _Explorer

        explorer = _Explorer(bench.accessor, bench.server)
        base = (bench.state["accessor"], bench.state["server"],
                frozenset(bench.lines.items()), bench.id_code)
        moves = explorer._moves(base)
        if moves:
            result.detail = (f"{len(moves)} transitions still enabled "
                             "at the final state")
        else:
            result.confirmed = True
            result.detail = ("no transition of either controller is "
                             "enabled on the replayed line levels")
    elif claim == "nack_commit":
        line = witness.claim.get("line", "NACK")
        wire = bench.controls.get(line)
        level = wire.value if wire is not None else 0
        if level == 1:
            result.confirmed = True
            result.detail = (f"{line} reads 1 while the accessor "
                             f"occupies {bench.state['accessor']}")
        else:
            result.detail = f"{line} reads {level}, not asserted"
    elif claim == "no_completion":
        if not bench.at_rest():
            result.confirmed = True
            result.detail = ("schedule executed and left the pair "
                             "in-flight; unreachability of rest is the "
                             "checker's graph argument")
        else:
            result.detail = "replay returned to rest"
    elif claim == "drive_race":
        # Reaching the end without a kernel conflict means the claimed
        # overlap never materialized on real wires.
        result.detail = ("schedule completed without a drive conflict "
                         "on the kernel's multi-driver resolution")
    else:
        result.detail = f"unknown finite claim {claim!r}"


def replay_witness(witness, accessor, server,
                   width: Optional[int] = None,
                   recorder=None) -> ReplayResult:
    """Run a witness schedule through the event kernel.

    ``accessor``/``server`` are the (possibly mutated) controller pair
    the witness was checked against -- re-synthesize them the same way
    before calling.  Returns a :class:`ReplayResult`; ``confirmed``
    means the kernel-level run concretely exhibits the claimed
    violation.

    With a :class:`~repro.obs.flight.FlightRecorder` the replay gets
    its own correlation id (``ReplayResult.correlation_id``) and
    REPLAY_START/REPLAY_END journal entries, so witness replays join
    the same causal namespace as live transactions and faults.
    """
    claim = witness.claim.get("type", "?")
    width = width or int(witness.meta.get("width", 8) or 8)
    bench = _Bench(accessor, server, width)
    result = ReplayResult(confirmed=False, claim=claim)
    if recorder is None:
        return _run_replay(witness, bench, result, claim)
    result.correlation_id = recorder.on_replay_begin(witness)
    try:
        return _run_replay(witness, bench, result, claim)
    finally:
        recorder.on_replay_end(result.correlation_id, result.clocks,
                               result.confirmed, result.claim)


def _run_replay(witness, bench: _Bench, result: ReplayResult,
                claim: str) -> ReplayResult:
    schedule = list(witness.steps)
    boundaries: set = set()
    cycle_start: Optional[int] = None
    if witness.kind == "lasso":
        cycle = witness.cycle
        if not cycle:
            result.detail = "lasso witness carries an empty cycle"
            return result
        # Two full cycle passes: enough to demonstrate exact
        # repetition (pass two starts and ends in the same snapshot).
        cycle_start = len(witness.stem)
        boundaries = {cycle_start, cycle_start + len(cycle)}
        schedule = witness.stem + cycle + cycle

    snapshots: List[Tuple] = []
    cycle_visited_rest = False
    conflict: Optional[SimulationError] = None

    sim = Simulator(max_clocks=len(schedule) + 2)

    def body():
        nonlocal cycle_visited_rest, conflict
        try:
            bench.apply("accessor")
            bench.apply("server")
        except SimulationError as error:
            conflict = error
            return
        yield Delta()
        for index, step in enumerate(schedule):
            if index in boundaries:
                snapshots.append(bench.snapshot())
            for side, ref in (("accessor", step.accessor),
                              ("server", step.server)):
                if ref is None:
                    continue
                source, target, guard_text = ref
                if bench.state[side] != source:
                    result.divergence = (
                        f"step {index}: witness fires {side} from "
                        f"{source}, replay sits in {bench.state[side]}")
                    return
                mismatch = _check_guard(bench, side, guard_text)
                if mismatch is not None:
                    result.divergence = f"step {index}: {mismatch}"
                    return
            try:
                for side, ref in (("accessor", step.accessor),
                                  ("server", step.server)):
                    if ref is None:
                        continue
                    bench.state[side] = ref[1]
                    bench.apply(side)
            except SimulationError as error:
                conflict = error
                result.steps_run = index + 1
                return
            yield Delta()
            yield Wait(1)
            result.steps_run = index + 1
            result.log.append(
                f"t={sim.now} accessor@{bench.state['accessor']} "
                f"server@{bench.state['server']}")
            if cycle_start is not None and index >= cycle_start \
                    and bench.at_rest():
                cycle_visited_rest = True

    sim.add_process("replay", body())
    stats = sim.run()
    result.clocks = stats.end_time

    if result.divergence is not None:
        result.detail = "witness schedule diverged from the kernel run"
        return result

    if conflict is not None:
        if claim == "drive_race":
            result.confirmed = True
            result.detail = f"kernel drive conflict: {conflict}"
        else:
            result.detail = (f"unexpected kernel drive conflict: "
                             f"{conflict}")
        return result

    if witness.kind == "lasso":
        snapshots.append(bench.snapshot())
        repeated = len(set(snapshots[-3:])) == 1 if len(snapshots) >= 3 \
            else False
        if not repeated:
            result.detail = ("cycle does not reproduce the same "
                             "controller/wire state")
        elif cycle_visited_rest:
            result.detail = "cycle passes through rest; not a violation"
        elif claim in ("response_cycle", "unbounded_retry",
                       "starvation"):
            result.confirmed = True
            result.detail = (
                "cycle executed twice with identical controller and "
                "wire state at every boundary, never reaching rest: "
                "the schedule runs forever")
        else:
            result.detail = f"unknown lasso claim {claim!r}"
        return result

    _confirm_final(witness, bench, result)
    return result


def _run_observations(spec, schedule, backend: str, transform,
                      max_clocks: int):
    """One backend-divergence probe run: observable outcome or error.

    Returns ``(observations, error)`` where exactly one is ``None``.
    ``transform`` (a source-text hook for the compiled backend, see
    :func:`repro.sim.compiled.source_transform`) is installed for the
    duration of the run when given.
    """
    from repro.sim.runtime import simulate

    def run():
        return simulate(spec, schedule=schedule, backend=backend,
                        max_clocks=max_clocks,
                        validate_compiled=False)

    try:
        if transform is None:
            result = run()
        else:
            from repro.sim.compiled import source_transform
            with source_transform(transform):
                result = run()
    except SimulationError as error:
        return None, error
    observations = {
        "end_time": result.end_time,
        "final_values": dict(result.final_values),
        "clocks": dict(result.clocks),
        "transactions": {
            bus: [(t.start_time, t.end_time, t.channel,
                   t.direction.name, t.address, t.data, t.initiator)
                  for t in log]
            for bus, log in result.transactions.items()},
    }
    return observations, None


def replay_backend_divergence(spec, schedule=None, transform=None,
                              max_clocks: int = 10_000_000,
                              ) -> ReplayResult:
    """Concretely confirm that a (mutated) compiled program diverges
    from the interpreter.

    This is the counterexample half of translation validation
    (:mod:`repro.analysis.tv`): when the validator refutes a lowered
    process, the refutation is only as credible as a real run that
    observably differs.  The interpreter executes ``spec`` as ground
    truth; the compiled backend executes it with validation disabled
    and, when given, ``transform`` applied to every generated source
    (the defect under study) -- exactly the program the validator
    rejected.  Without a transform the comparison judges the compiled
    backend as-built (e.g. a refuted stock lowering).  The two
    runs are then compared on everything the simulation observes:
    raised-vs-completed parity and error messages, final variable
    values, end time, per-behavior active clocks, and per-bus
    transaction logs (start/end clocks, channel, direction, address,
    raw data, initiator).

    Returns a :class:`ReplayResult` whose ``confirmed`` means the
    backends concretely diverged, with the first difference in
    ``divergence``.  A clean miscompile that happens to be observably
    equivalent on this spec comes back unconfirmed -- the validator's
    refutation would then be conservative, not witnessed.
    """
    result = ReplayResult(confirmed=False, claim="backend_divergence")
    interp, interp_error = _run_observations(
        spec, schedule, "interp", None, max_clocks)
    compiled, compiled_error = _run_observations(
        spec, schedule, "compiled", transform, max_clocks)

    if (interp_error is None) != (compiled_error is None):
        raised, side = ((compiled_error, "compiled")
                        if compiled_error is not None
                        else (interp_error, "interp"))
        result.confirmed = True
        result.divergence = (f"only the {side} backend raised: {raised}")
    elif interp_error is not None:
        if str(interp_error) != str(compiled_error):
            result.confirmed = True
            result.divergence = (
                f"error mismatch: interp raised {interp_error!r}, "
                f"compiled raised {compiled_error!r}")
        else:
            result.detail = (f"both backends raised identically: "
                             f"{interp_error}")
    else:
        assert interp is not None and compiled is not None
        result.clocks = interp["end_time"]
        for what in ("final_values", "end_time", "clocks",
                     "transactions"):
            if interp[what] == compiled[what]:
                continue
            result.confirmed = True
            result.divergence = (
                f"{what} differ: interp {interp[what]!r} vs "
                f"compiled {compiled[what]!r}")
            break
        else:
            result.detail = ("interpreter and compiled runs are "
                             "observably identical")
    if result.confirmed:
        result.detail = ("compiled backend observably diverges from "
                         "the interpreter on this spec")
    return result
