"""The fuzzy logic controller (FLC) of the paper's Section 5 / Figure 6.

"The Fuzzy Logic Controller consists of two inputs which sense the
temperature and the humidity in a room.  Depending on these two inputs,
the FLC has 4 rules which are evaluated to compute the output signal
which determines the operation of the air conditioning system."

The original is a Matsushita design known only through the paper
(ref [9], "private communication"); we rebuild it as a complete,
functional behavioral model whose *structure* matches everything the
paper states:

* the array variables of Figure 6 --
  ``InitMemberFunct : array(1919 downto 0) of integer`` (six 320-point
  membership tables: 2 inputs x 3 linguistic terms),
  ``trru0..trru3 : array(127 downto 0) of integer`` (rule truth arrays
  over the 128-point output universe), and
  ``rule1, rule3 : array(2 downto 0) of integer`` (rule weight tables);
* the processes of Figure 6 -- INITIALIZE, CONVERT_FACTS, EVAL_R0..R3,
  CONV_R0..R3, CENTROID, CONVERT_CTRL -- partitioned so that the
  memories live on CHIP 2 and all processes on CHIP 1;
* the channels of Figure 6 -- ``ch1 : process EVAL_R3 writing variable
  trru0`` and ``ch2 : process CONV_R2 reading variable trru2``, each
  moving 128 messages of 16 data + 7 address = 23 bits, merged into the
  paper's bus B;
* the performance anchor of Figure 7 -- CONV_R2's execution exceeds
  2000 clocks at buswidth 4 and meets 2000 at buswidth 5 under the
  2-clock full handshake (computation 645 clocks, communication
  ``128 * ceil(23/w) * 2``).

Fuzzy semantics (integer, 0..255 membership scale):

* membership tables are triangles ``mu(p) = max(0, 255 - |p - c| * s)``
  over a 0..319 input universe, written by INITIALIZE;
* CONVERT_FACTS looks the sensed temperature and humidity up in all six
  tables (6 reads of InitMemberFunct over a channel);
* rule k fires with strength ``min(deg_temp[a_k], deg_humid[b_k])``;
  EVAL_Rk clips rule k's consequent triangle by that strength into
  ``trru((k+1) mod 4)`` -- the shifted target reproduces the paper's
  "EVAL_R3 writes trru0" pairing;
* CONV_Rk scales ``trru k`` by the rule weight and max-aggregates into
  the output fuzzy set; CENTROID defuzzifies (weighted average);
  CONVERT_CTRL scales the crisp value onto the actuator range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.channels.channel import Channel
from repro.channels.group import ChannelGroup
from repro.errors import SpecError
from repro.partition.channels import extract_channels
from repro.partition.module import ModuleKind
from repro.partition.partitioner import Partition
from repro.spec.access import Direction
from repro.spec.behavior import Behavior
from repro.spec.expr import Index, Ref, UnOp, vmax, vmin
from repro.spec.stmt import Assign, For, If
from repro.spec.system import SystemSpec
from repro.spec.types import ArrayType, IntType
from repro.spec.variable import Variable

#: Input universe size per membership table (6 tables x 320 = 1920).
TABLE_POINTS = 320
NUM_TABLES = 6
#: Output universe size (trru arrays; 7 address bits).
OUTPUT_POINTS = 128
#: Membership scale.
MU_MAX = 255

#: (temperature term, humidity term, consequent center, rule weight)
#: Terms: 0 = low, 1 = medium, 2 = high.
RULES = (
    (0, 0, 16, 64),    # cold & dry     -> low cooling
    (1, 1, 56, 128),   # mild & normal  -> medium cooling
    (2, 1, 96, 192),   # hot & normal   -> high cooling
    (2, 2, 120, 255),  # hot & humid    -> max cooling
)

#: Triangle centers/slopes of the six input membership tables
#: (temperature low/medium/high, then humidity low/medium/high).
TABLE_SHAPES = (
    (40, 2), (160, 2), (280, 2),
    (60, 2), (160, 2), (260, 2),
)

#: Consequent triangle slope over the output universe.
OUT_SLOPE = 4


@dataclass
class FlcModel:
    """The built FLC: spec, partition, channels and the paper's bus B."""

    system: SystemSpec
    partition: Partition
    #: All cross-chip channels, in extraction order.
    channels: List[Channel]
    #: The paper's bus B: ch1 (EVAL_R3 > trru0) + ch2 (CONV_R2 < trru2).
    bus_b: ChannelGroup
    #: Canonical sequential schedule (producer phases before consumers).
    schedule: List[str]
    variables: Dict[str, Variable]

    def channel(self, name: str) -> Channel:
        for channel in self.channels:
            if channel.name == name:
                return channel
        raise SpecError(f"FLC has no channel named {name!r}")


def _int16(name: str, init: Optional[int] = None) -> Variable:
    return Variable(name, IntType(16), init)


def build_flc(temperature: int = 250, humidity: int = 180) -> FlcModel:
    """Build the complete FLC model for given sensor readings.

    ``temperature`` and ``humidity`` are raw sensor values in the
    0..319 input universe.
    """
    if not 0 <= temperature < TABLE_POINTS:
        raise SpecError(f"temperature must be in [0, {TABLE_POINTS}), "
                        f"got {temperature}")
    if not 0 <= humidity < TABLE_POINTS:
        raise SpecError(f"humidity must be in [0, {TABLE_POINTS}), "
                        f"got {humidity}")

    # ------------------------------------------------------------------
    # Shared variables
    # ------------------------------------------------------------------
    init_member_funct = Variable(
        "InitMemberFunct",
        ArrayType(IntType(16), NUM_TABLES * TABLE_POINTS),
    )
    trru = [Variable(f"trru{k}", ArrayType(IntType(16), OUTPUT_POINTS))
            for k in range(4)]
    rule1 = Variable("rule1", ArrayType(IntType(16), 3),
                     init=[RULES[1][3], RULES[1][2], 0])
    rule3 = Variable("rule3", ArrayType(IntType(16), 3),
                     init=[RULES[3][3], RULES[3][2], 0])

    # CHIP 1 shared state (no channels: same module as all processes).
    sens_temp = _int16("sens_temp", temperature)
    sens_humid = _int16("sens_humid", humidity)
    deg_temp = [_int16(f"deg_temp{j}") for j in range(3)]
    deg_humid = [_int16(f"deg_humid{j}") for j in range(3)]
    strength = [_int16(f"strength{k}") for k in range(4)]
    aggregate = Variable("aggregate", ArrayType(IntType(16), OUTPUT_POINTS))
    crisp_out = _int16("crisp_out")
    ctrl_out = _int16("ctrl_out")

    chip1_shared = [sens_temp, sens_humid, *deg_temp, *deg_humid,
                    *strength, aggregate, crisp_out, ctrl_out]
    chip2_shared = [init_member_funct, *trru, rule1, rule3]

    # ------------------------------------------------------------------
    # Behaviors
    # ------------------------------------------------------------------
    behaviors = [
        _initialize(init_member_funct),
        _convert_facts(init_member_funct, sens_temp, sens_humid,
                       deg_temp, deg_humid),
        *[_eval_rule(k, trru[(k + 1) % 4], deg_temp, deg_humid,
                     strength[k]) for k in range(4)],
        *[_conv_rule(k, trru[k], aggregate, rule1, rule3)
          for k in range(4)],
        _centroid(aggregate, crisp_out),
        _convert_ctrl(crisp_out, ctrl_out),
    ]

    system = SystemSpec("fuzzy_logic_controller", behaviors,
                        [*chip1_shared, *chip2_shared])

    # ------------------------------------------------------------------
    # Partition per Figure 6: memories on CHIP 2, processes on CHIP 1.
    # ------------------------------------------------------------------
    partition = Partition(system)
    chip1 = partition.add_module("CHIP1", ModuleKind.CHIP)
    chip2 = partition.add_module("CHIP2", ModuleKind.MEMORY)
    for behavior in behaviors:
        partition.assign(behavior, chip1)
    for variable in chip1_shared:
        partition.assign(variable, chip1)
    for variable in chip2_shared:
        partition.assign(variable, chip2)
    partition.validate()

    # Extraction uses a distinct prefix so that renaming the paper's two
    # bus-B channels to ch1/ch2 (Figure 6) cannot collide.
    channels = extract_channels(partition, prefix="flc_ch")

    # The paper's bus B: EVAL_R3 writing trru0 and CONV_R2 reading
    # trru2, renamed ch1/ch2 to match Figure 6.
    ch1 = _find_channel(channels, "EVAL_R3", "trru0", Direction.WRITE)
    ch2 = _find_channel(channels, "CONV_R2", "trru2", Direction.READ)
    ch1.name, ch2.name = "ch1", "ch2"
    bus_b = ChannelGroup("B", [ch1, ch2])

    schedule = [
        "INITIALIZE", "CONVERT_FACTS",
        "EVAL_R0", "EVAL_R1", "EVAL_R2", "EVAL_R3",
        "CONV_R0", "CONV_R1", "CONV_R2", "CONV_R3",
        "CENTROID", "CONVERT_CTRL",
    ]

    variables = {v.name: v for v in system.variables}
    return FlcModel(system=system, partition=partition, channels=channels,
                    bus_b=bus_b, schedule=schedule, variables=variables)


def _find_channel(channels: Sequence[Channel], behavior_name: str,
                  variable_name: str, direction: Direction) -> Channel:
    for channel in channels:
        if (channel.accessor.name == behavior_name
                and channel.variable.name == variable_name
                and channel.direction is direction):
            return channel
    raise SpecError(
        f"expected channel {behavior_name} {direction} {variable_name} "
        "not found"
    )


# ---------------------------------------------------------------------------
# Behavior constructors
# ---------------------------------------------------------------------------

def _initialize(init_member_funct: Variable) -> Behavior:
    """Fill the six triangular membership tables.

    ``mu(p) = max(0, MU_MAX - |p - center| * slope)`` for each table;
    1920 writes of 27-bit messages over the InitMemberFunct channel.
    """
    body = []
    for table, (center, slope) in enumerate(TABLE_SHAPES):
        point = Variable(f"p{table}", IntType(16))
        base = table * TABLE_POINTS
        distance = UnOp("abs", Ref(point) - center)
        mu = vmax(MU_MAX - distance * slope, 0)
        body.append(For(point, 0, TABLE_POINTS - 1, [
            Assign((init_member_funct, Ref(point) + base), mu),
        ]))
    return Behavior("INITIALIZE", body)


def _convert_facts(init_member_funct: Variable, sens_temp: Variable,
                   sens_humid: Variable, deg_temp: List[Variable],
                   deg_humid: List[Variable]) -> Behavior:
    """Fuzzify the two sensor inputs: six table lookups (channel reads
    of InitMemberFunct), landing in CHIP1-shared degree registers."""
    body = []
    for j in range(3):
        body.append(Assign(
            deg_temp[j],
            Index(init_member_funct, Ref(sens_temp) + j * TABLE_POINTS),
        ))
    for j in range(3):
        body.append(Assign(
            deg_humid[j],
            Index(init_member_funct,
                  Ref(sens_humid) + (3 + j) * TABLE_POINTS),
        ))
    return Behavior("CONVERT_FACTS", body)


def _eval_rule(k: int, target: Variable, deg_temp: List[Variable],
               deg_humid: List[Variable], strength: Variable) -> Behavior:
    """EVAL_Rk: clip rule k's consequent triangle by its firing strength.

    Computation: 1 preamble assign + per output point 5 assigns + loop
    overhead = ``1 + 128 * 6 = 769`` clocks.  Communication: 128 writes
    of 23-bit messages (EVAL_R3's is the paper's ch1).
    """
    temp_term, humid_term, center, _weight = RULES[k]
    i = Variable("i", IntType(16))
    d = Variable("d", IntType(16))
    a = Variable("a", IntType(16))
    m = Variable("m", IntType(16))
    t = Variable("t", IntType(16))
    body = [
        Assign(strength, vmin(Ref(deg_temp[temp_term]),
                              Ref(deg_humid[humid_term]))),
        For(i, 0, OUTPUT_POINTS - 1, [
            Assign(d, Ref(i) - center),
            Assign(a, UnOp("abs", Ref(d)) * OUT_SLOPE),
            Assign(m, MU_MAX - Ref(a)),
            Assign(m, vmax(Ref(m), 0)),
            Assign(t, vmin(Ref(strength), Ref(m))),
            Assign((target, Ref(i)), Ref(t)),
        ]),
    ]
    return Behavior(f"EVAL_R{k}", body, local_variables=[d, a, m, t])


def _conv_rule(k: int, source: Variable, aggregate: Variable,
               rule1: Variable, rule3: Variable) -> Behavior:
    """CONV_Rk: scale ``trru k`` by its rule's weight, max-aggregate.

    ``trru k`` holds rule ``(k-1) mod 4``'s clipped output (EVAL_Rj
    writes ``trru (j+1) mod 4``), so CONV_Rk applies that rule's weight
    -- fetched from the ``rule1``/``rule3`` memory arrays when the rule
    is 1 or 3, reproducing Figure 6's rule-table variables on CHIP 2.

    Computation: 1 preamble assign + per point 4 assigns + loop
    overhead = ``1 + 128 * 5 = 641`` clocks, placing CONV_R2 at the
    paper's Figure 7 anchor: with the 2-clock full handshake it exceeds
    2000 clocks at buswidth 4 (641 + 1536 = 2177) and meets 2000 at
    buswidth 5 (641 + 1280 = 1921).  Communication: 128 reads of 23-bit
    messages (CONV_R2's is the paper's ch2).
    """
    rule_index = (k - 1) % 4
    i = Variable("i", IntType(16))
    t = Variable("t", IntType(32))
    v = Variable("v", IntType(16))
    wt = Variable("wt", IntType(16))
    body = []
    if rule_index == 1:
        body.append(Assign(wt, Index(rule1, 0)))
    elif rule_index == 3:
        body.append(Assign(wt, Index(rule3, 0)))
    else:
        body.append(Assign(wt, RULES[rule_index][3]))
    body.append(For(i, 0, OUTPUT_POINTS - 1, [
        Assign(t, Index(source, Ref(i))),
        Assign(v, (Ref(t) * Ref(wt)) // 256),
        Assign((aggregate, Ref(i)),
               vmax(Index(aggregate, Ref(i)), Ref(v))),
        Assign(t, Ref(t) + Ref(v)),
    ]))
    return Behavior(f"CONV_R{k}", body, local_variables=[t, v, wt])


def _centroid(aggregate: Variable, crisp_out: Variable) -> Behavior:
    """Defuzzify: weighted average over the output universe."""
    i = Variable("i", IntType(16))
    num = Variable("num", IntType(32))
    den = Variable("den", IntType(32))
    body = [
        Assign(num, 0),
        Assign(den, 0),
        For(i, 0, OUTPUT_POINTS - 1, [
            Assign(num, Ref(num) + Index(aggregate, Ref(i)) * Ref(i)),
            Assign(den, Ref(den) + Index(aggregate, Ref(i))),
        ]),
        If(Ref(den) > 0,
           [Assign(crisp_out, Ref(num) // Ref(den))],
           [Assign(crisp_out, 0)]),
    ]
    return Behavior("CENTROID", body, local_variables=[num, den])


def _convert_ctrl(crisp_out: Variable, ctrl_out: Variable) -> Behavior:
    """Scale the crisp output onto the actuator range (0..255 -> 0..510)."""
    return Behavior("CONVERT_CTRL", [
        Assign(ctrl_out, Ref(crisp_out) * 2),
    ])


def reference_ctrl_output(temperature: int, humidity: int) -> int:
    """Pure-Python oracle of the FLC's final control output.

    Mirrors the behavioral model exactly (same integer arithmetic), for
    cross-checking interpreter and simulator results in tests.
    """
    tables = []
    for center, slope in TABLE_SHAPES:
        tables.append([max(0, MU_MAX - abs(p - center) * slope)
                       for p in range(TABLE_POINTS)])
    deg_temp = [tables[j][temperature] for j in range(3)]
    deg_humid = [tables[3 + j][humidity] for j in range(3)]

    aggregate = [0] * OUTPUT_POINTS
    for k, (a, b, center, weight) in enumerate(RULES):
        strength = min(deg_temp[a], deg_humid[b])
        for i in range(OUTPUT_POINTS):
            mu = max(0, MU_MAX - abs(i - center) * OUT_SLOPE)
            clipped = min(strength, mu)
            value = (clipped * weight) // 256
            aggregate[i] = max(aggregate[i], value)

    num = sum(aggregate[i] * i for i in range(OUTPUT_POINTS))
    den = sum(aggregate)
    crisp = num // den if den > 0 else 0
    return crisp * 2
