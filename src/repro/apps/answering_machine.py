"""Telephone answering machine: the paper's second experiment system.

Section 5 reports applying bus generation to "an answering machine"
alongside the Ethernet coprocessor and the FLC.  No structural details
are published, so we model the canonical SpecSyn answering-machine
example: a controller chip with the message memories partitioned onto a
separate memory chip.

* **CHIP1** (processes): RECORD_GREETING (stores the outgoing
  announcement), ANSWER_CALL (plays the greeting, records the incoming
  message, bumps the counter and status), PLAYBACK (replays all
  recorded samples and computes a checksum).
* **CHIP2** (memories): ``GREETING : array(63 downto 0) of byte``,
  ``MESSAGES : array(255 downto 0) of byte``, plus the ``MSG_COUNT``
  and ``STATUS`` registers.

Traffic (messages = address + data bits):

=================  ======================  ==============
channel            transfers               message bits
=================  ======================  ==============
greeting write     64                      6 + 8 = 14
greeting read      64                      14
message write      128                     8 + 8 = 16
message read       128                     16
counter/status     a handful               8
=================  ======================  ==============

All samples are synthetic deterministic waveforms so simulations can be
checked against :func:`reference_state`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.channels.channel import Channel
from repro.channels.group import ChannelGroup
from repro.partition.channels import default_bus_groups, extract_channels
from repro.partition.module import ModuleKind
from repro.partition.partitioner import Partition
from repro.spec.behavior import Behavior
from repro.spec.expr import Index, Ref
from repro.spec.stmt import Assign, For, WaitClocks
from repro.spec.system import SystemSpec
from repro.spec.types import ArrayType, BitType, IntType
from repro.spec.variable import Variable

GREETING_SAMPLES = 64
MESSAGE_SAMPLES = 128
MESSAGE_CAPACITY = 256
#: Clocks between audio samples (ADC/DAC pacing).  Audio channels are
#: rate-limited by the sample clock, not the bus, which is what makes a
#: single shared bus feasible for this system.
SAMPLE_PERIOD = 6


@dataclass
class AnsweringMachineModel:
    """The built answering machine: spec, partition and bus group."""

    system: SystemSpec
    partition: Partition
    channels: List[Channel]
    #: All cross-chip channels as one bus candidate.
    bus: ChannelGroup
    schedule: List[str]
    variables: Dict[str, Variable]


def build_answering_machine() -> AnsweringMachineModel:
    """Build the answering machine model."""
    greeting = Variable("GREETING", ArrayType(BitType(8), GREETING_SAMPLES))
    messages = Variable("MESSAGES", ArrayType(BitType(8), MESSAGE_CAPACITY))
    msg_count = Variable("MSG_COUNT", BitType(8))
    status = Variable("STATUS", BitType(8))

    # CHIP1-shared results (no channels).
    line_in = Variable("line_in", BitType(8), init=0x5A)
    play_checksum = Variable("play_checksum", IntType(32))
    greet_checksum = Variable("greet_checksum", IntType(32))

    behaviors = [
        _record_greeting(greeting),
        _answer_call(greeting, messages, msg_count, status, line_in,
                     greet_checksum),
        _playback(messages, play_checksum),
    ]
    system = SystemSpec(
        "answering_machine", behaviors,
        [greeting, messages, msg_count, status, line_in,
         play_checksum, greet_checksum],
    )

    partition = Partition(system)
    chip1 = partition.add_module("CHIP1", ModuleKind.CHIP)
    chip2 = partition.add_module("CHIP2", ModuleKind.MEMORY)
    for behavior in behaviors:
        partition.assign(behavior, chip1)
    for variable in (line_in, play_checksum, greet_checksum):
        partition.assign(variable, chip1)
    for variable in (greeting, messages, msg_count, status):
        partition.assign(variable, chip2)
    partition.validate()

    channels = extract_channels(partition, prefix="am_ch")
    groups = default_bus_groups(partition, channels=channels)
    assert len(groups) == 1
    bus = ChannelGroup("AM_BUS", groups[0].channels)

    return AnsweringMachineModel(
        system=system, partition=partition, channels=channels, bus=bus,
        schedule=["RECORD_GREETING", "ANSWER_CALL", "PLAYBACK"],
        variables={v.name: v for v in system.variables},
    )


def _record_greeting(greeting: Variable) -> Behavior:
    """Store the synthetic announcement waveform ((i*13 + 7) mod 256)."""
    i = Variable("i", IntType(16))
    s = Variable("s", IntType(16))
    return Behavior("RECORD_GREETING", [
        For(i, 0, GREETING_SAMPLES - 1, [
            WaitClocks(SAMPLE_PERIOD),  # ADC sample pacing
            Assign(s, (Ref(i) * 13 + 7) % 256),
            Assign((greeting, Ref(i)), Ref(s)),
        ]),
    ], local_variables=[s])


def _answer_call(greeting: Variable, messages: Variable,
                 msg_count: Variable, status: Variable, line_in: Variable,
                 greet_checksum: Variable) -> Behavior:
    """Play the greeting (reads), record a message (writes), update
    counter and status."""
    i = Variable("j", IntType(16))
    k = Variable("k", IntType(16))
    sample = Variable("sample", IntType(16))
    return Behavior("ANSWER_CALL", [
        # Play greeting: accumulate a checksum as a stand-in for the DAC.
        Assign(greet_checksum, 0),
        For(i, 0, GREETING_SAMPLES - 1, [
            WaitClocks(SAMPLE_PERIOD),  # DAC sample pacing
            Assign(sample, Index(greeting, Ref(i))),
            Assign(greet_checksum, Ref(greet_checksum) + Ref(sample)),
        ]),
        # Record incoming message: synthetic line waveform.
        For(k, 0, MESSAGE_SAMPLES - 1, [
            WaitClocks(SAMPLE_PERIOD),  # ADC sample pacing
            Assign(sample, (Ref(line_in) + Ref(k) * 7) % 256),
            Assign((messages, Ref(k)), Ref(sample)),
        ]),
        Assign(msg_count, 1),
        Assign(status, 0x01),
    ], local_variables=[sample])


def _playback(messages: Variable, play_checksum: Variable) -> Behavior:
    """Replay every recorded sample, checksumming on CHIP1."""
    i = Variable("m", IntType(16))
    sample = Variable("psample", IntType(16))
    return Behavior("PLAYBACK", [
        Assign(play_checksum, 0),
        For(i, 0, MESSAGE_SAMPLES - 1, [
            WaitClocks(SAMPLE_PERIOD),  # DAC sample pacing
            Assign(sample, Index(messages, Ref(i))),
            Assign(play_checksum, Ref(play_checksum) + Ref(sample)),
        ]),
    ], local_variables=[sample])


def reference_state() -> Dict[str, int]:
    """Oracle for the final checksums and registers."""
    greeting = [(i * 13 + 7) % 256 for i in range(GREETING_SAMPLES)]
    line_in = 0x5A
    message = [(line_in + k * 7) % 256 for k in range(MESSAGE_SAMPLES)]
    return {
        "greet_checksum": sum(greeting),
        "play_checksum": sum(message),
        "MSG_COUNT": 1,
        "STATUS": 0x01,
    }
