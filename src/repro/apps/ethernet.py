"""Ethernet network coprocessor: the paper's third experiment system.

Section 5 lists "an Ethernet network coprocessor" among the designs the
bus generation algorithm was applied to.  We model the classic SpecSyn
Ethernet coprocessor structure: protocol units on the coprocessor chip,
frame buffers partitioned onto a memory chip.

* **CHIP1** (processes): HOST_IF (queues an outgoing frame, later
  retrieves the received one), TXU (transmit unit: reads the frame
  bytes, computes the frame check sequence), RXU (receive unit: writes
  an incoming frame and its length/status).
* **CHIP2** (memories): ``TX_BUFFER``/``RX_BUFFER`` (256-byte frame
  stores), ``TX_LEN``/``RX_LEN`` and ``TX_STATUS``/``RX_STATUS``
  registers.

Traffic: frame-byte channels move ``FRAME_LEN`` messages of
8 address + 8 data = 16 bits; the register channels move single 8-bit
messages.  The FCS here is a simple byte-sum-xor so simulations check
against :func:`reference_state` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.channels.channel import Channel
from repro.channels.group import ChannelGroup
from repro.partition.channels import default_bus_groups, extract_channels
from repro.partition.module import ModuleKind
from repro.partition.partitioner import Partition
from repro.spec.behavior import Behavior
from repro.spec.expr import Index, Ref
from repro.spec.stmt import Assign, For, WaitClocks
from repro.spec.system import SystemSpec
from repro.spec.types import ArrayType, BitType, IntType
from repro.spec.variable import Variable

FRAME_LEN = 64
BUFFER_CAPACITY = 256
#: Clocks per byte on the (serialized) network side: the MAC shifts
#: bits out/in at line rate, so TXU/RXU are paced by the medium.
BYTE_PERIOD = 4


@dataclass
class EthernetModel:
    """The built Ethernet coprocessor: spec, partition and bus group."""

    system: SystemSpec
    partition: Partition
    channels: List[Channel]
    bus: ChannelGroup
    schedule: List[str]
    variables: Dict[str, Variable]


def build_ethernet() -> EthernetModel:
    """Build the Ethernet network coprocessor model."""
    tx_buffer = Variable("TX_BUFFER", ArrayType(BitType(8), BUFFER_CAPACITY))
    rx_buffer = Variable("RX_BUFFER", ArrayType(BitType(8), BUFFER_CAPACITY))
    tx_len = Variable("TX_LEN", BitType(8))
    rx_len = Variable("RX_LEN", BitType(8))
    tx_status = Variable("TX_STATUS", BitType(8))
    rx_status = Variable("RX_STATUS", BitType(8))

    # CHIP1-shared results.
    tx_fcs = Variable("tx_fcs", IntType(32))
    host_checksum = Variable("host_checksum", IntType(32))

    behaviors = [
        _host_if(tx_buffer, tx_len, rx_buffer, rx_len, host_checksum),
        _txu(tx_buffer, tx_len, tx_status, tx_fcs),
        _rxu(rx_buffer, rx_len, rx_status),
    ]
    system = SystemSpec(
        "ethernet_coprocessor", behaviors,
        [tx_buffer, rx_buffer, tx_len, rx_len, tx_status, rx_status,
         tx_fcs, host_checksum],
    )

    partition = Partition(system)
    chip1 = partition.add_module("CHIP1", ModuleKind.CHIP)
    chip2 = partition.add_module("CHIP2", ModuleKind.MEMORY)
    for behavior in behaviors:
        partition.assign(behavior, chip1)
    for variable in (tx_fcs, host_checksum):
        partition.assign(variable, chip1)
    for variable in (tx_buffer, rx_buffer, tx_len, rx_len, tx_status,
                     rx_status):
        partition.assign(variable, chip2)
    partition.validate()

    channels = extract_channels(partition, prefix="eth_ch")
    groups = default_bus_groups(partition, channels=channels)
    assert len(groups) == 1
    bus = ChannelGroup("ETH_BUS", groups[0].channels)

    # HOST_IF queues the frame, RXU receives, TXU transmits, then
    # HOST_IF's read phase is part of its own body, so HOST_IF runs in
    # two stages via the schedule below (queue before TXU, read after
    # RXU).  To keep behaviors single-shot, HOST_IF's body does both
    # and the canonical order runs RXU first.
    return EthernetModel(
        system=system, partition=partition, channels=channels, bus=bus,
        schedule=["RXU", "HOST_IF", "TXU"],
        variables={v.name: v for v in system.variables},
    )


def _host_if(tx_buffer: Variable, tx_len: Variable, rx_buffer: Variable,
             rx_len: Variable, host_checksum: Variable) -> Behavior:
    """Queue an outgoing frame, then retrieve the received frame."""
    i = Variable("hi", IntType(16))
    j = Variable("hj", IntType(16))
    byte = Variable("hbyte", IntType(16))
    return Behavior("HOST_IF", [
        # Queue the outgoing frame: a deterministic payload pattern.
        For(i, 0, FRAME_LEN - 1, [
            Assign(byte, (Ref(i) * 5 + 11) % 256),
            Assign((tx_buffer, Ref(i)), Ref(byte)),
        ]),
        Assign(tx_len, FRAME_LEN),
        # Retrieve the received frame and checksum it.
        Assign(host_checksum, 0),
        For(j, 0, FRAME_LEN - 1, [
            Assign(byte, Index(rx_buffer, Ref(j))),
            Assign(host_checksum, Ref(host_checksum) + Ref(byte)),
        ]),
    ], local_variables=[byte])


def _txu(tx_buffer: Variable, tx_len: Variable, tx_status: Variable,
         tx_fcs: Variable) -> Behavior:
    """Transmit unit: stream the frame out, computing the FCS."""
    i = Variable("ti", IntType(16))
    byte = Variable("tbyte", IntType(16))
    length = Variable("tlength", IntType(16))
    return Behavior("TXU", [
        Assign(length, Ref(tx_len)),
        Assign(tx_fcs, 0),
        For(i, 0, FRAME_LEN - 1, [
            WaitClocks(BYTE_PERIOD),  # line-rate byte serialization
            Assign(byte, Index(tx_buffer, Ref(i))),
            Assign(tx_fcs, (Ref(tx_fcs) + Ref(byte)) % 65536),
        ]),
        Assign(tx_fcs, Ref(tx_fcs) + Ref(length)),
        Assign(tx_status, 0x80),
    ], local_variables=[byte, length])


def _rxu(rx_buffer: Variable, rx_len: Variable,
         rx_status: Variable) -> Behavior:
    """Receive unit: store an incoming frame, set length and status."""
    i = Variable("ri", IntType(16))
    byte = Variable("rbyte", IntType(16))
    return Behavior("RXU", [
        For(i, 0, FRAME_LEN - 1, [
            WaitClocks(BYTE_PERIOD),  # line-rate byte deserialization
            Assign(byte, (Ref(i) * 3 + 17) % 256),
            Assign((rx_buffer, Ref(i)), Ref(byte)),
        ]),
        Assign(rx_len, FRAME_LEN),
        Assign(rx_status, 0x40),
    ], local_variables=[byte])


def reference_state() -> Dict[str, int]:
    """Oracle for the final registers and checksums."""
    tx_frame = [(i * 5 + 11) % 256 for i in range(FRAME_LEN)]
    rx_frame = [(i * 3 + 17) % 256 for i in range(FRAME_LEN)]
    return {
        "tx_fcs": (sum(tx_frame) % 65536) + FRAME_LEN,
        "host_checksum": sum(rx_frame),
        "TX_LEN": FRAME_LEN,
        "RX_LEN": FRAME_LEN,
        "TX_STATUS": 0x80,
        "RX_STATUS": 0x40,
    }
