"""Example systems from the paper's experiments (Section 5): the fuzzy
logic controller, the answering machine and the Ethernet network
coprocessor.  See DESIGN.md section 3."""

from repro.apps.answering_machine import (
    AnsweringMachineModel,
    build_answering_machine,
)
from repro.apps.convolution import ConvolutionModel, build_convolution
from repro.apps.ethernet import EthernetModel, build_ethernet
from repro.apps.flc import FlcModel, build_flc, reference_ctrl_output

__all__ = [
    "AnsweringMachineModel",
    "ConvolutionModel",
    "build_convolution",
    "EthernetModel",
    "FlcModel",
    "build_answering_machine",
    "build_ethernet",
    "build_flc",
    "reference_ctrl_output",
]
