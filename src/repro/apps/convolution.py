"""Image convolution accelerator: an extension example system.

Not one of the paper's three evaluation systems -- included to
exercise the library on the image/signal-processing workloads that
motivated much early-90s interface work (data format converters,
frame-buffer interfaces).  A filter engine reads a frame from a frame
buffer on a memory chip, applies a 3x3 box blur, and writes the result
frame back; a host loads the input image and later checksums the
output.

* **CHIP1**: HOST_LOAD, FILTER, HOST_READBACK.
* **CHIP2** (memory): ``FRAME_IN`` and ``FRAME_OUT``
  (``SIZE x SIZE`` pixels, flattened; 8-bit pixels, so element
  accesses carry ``clog2(SIZE*SIZE)`` address bits).

Traffic is intentionally read-heavy and bursty: the filter performs 9
reads per interior output pixel, the textbook case where buswidth and
protocol choice dominate run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.channels.channel import Channel
from repro.channels.group import ChannelGroup
from repro.partition.channels import default_bus_groups, extract_channels
from repro.partition.module import ModuleKind
from repro.partition.partitioner import Partition
from repro.spec.behavior import Behavior
from repro.spec.expr import Index, Ref
from repro.spec.stmt import Assign, For
from repro.spec.system import SystemSpec
from repro.spec.types import ArrayType, BitType, IntType
from repro.spec.variable import Variable

#: Frame edge length in pixels (frames are SIZE x SIZE, flattened).
SIZE = 12
PIXELS = SIZE * SIZE


def _input_pixel(x: int, y: int) -> int:
    """The synthetic test pattern loaded by HOST_LOAD."""
    return (x * 7 + y * 13 + 5) % 256


@dataclass
class ConvolutionModel:
    """The built convolution system."""

    system: SystemSpec
    partition: Partition
    channels: List[Channel]
    bus: ChannelGroup
    schedule: List[str]
    variables: Dict[str, Variable]


def build_convolution() -> ConvolutionModel:
    """Build the convolution accelerator model."""
    frame_in = Variable("FRAME_IN", ArrayType(BitType(8), PIXELS))
    frame_out = Variable("FRAME_OUT", ArrayType(BitType(8), PIXELS))
    checksum = Variable("out_checksum", IntType(32))

    behaviors = [
        _host_load(frame_in),
        _filter(frame_in, frame_out),
        _host_readback(frame_out, checksum),
    ]
    system = SystemSpec("convolution", behaviors,
                        [frame_in, frame_out, checksum])

    partition = Partition(system)
    chip1 = partition.add_module("CHIP1", ModuleKind.CHIP)
    chip2 = partition.add_module("CHIP2", ModuleKind.MEMORY)
    for behavior in behaviors:
        partition.assign(behavior, chip1)
    partition.assign(checksum, chip1)
    partition.assign(frame_in, chip2)
    partition.assign(frame_out, chip2)
    partition.validate()

    channels = extract_channels(partition, prefix="conv_ch")
    groups = default_bus_groups(partition, channels=channels)
    assert len(groups) == 1
    bus = ChannelGroup("CONV_BUS", groups[0].channels)

    return ConvolutionModel(
        system=system, partition=partition, channels=channels, bus=bus,
        schedule=["HOST_LOAD", "FILTER", "HOST_READBACK"],
        variables={v.name: v for v in system.variables},
    )


def _host_load(frame_in: Variable) -> Behavior:
    """Load the synthetic test pattern into the frame buffer."""
    x = Variable("lx", IntType(16))
    y = Variable("ly", IntType(16))
    pixel = Variable("lpix", IntType(16))
    return Behavior("HOST_LOAD", [
        For(y, 0, SIZE - 1, [
            For(x, 0, SIZE - 1, [
                Assign(pixel, (Ref(x) * 7 + Ref(y) * 13 + 5) % 256),
                Assign((frame_in, Ref(y) * SIZE + Ref(x)), Ref(pixel)),
            ]),
        ]),
    ], local_variables=[pixel])


def _filter(frame_in: Variable, frame_out: Variable) -> Behavior:
    """3x3 box blur over the interior; borders copy through."""
    x = Variable("fx", IntType(16))
    y = Variable("fy", IntType(16))
    dx = Variable("fdx", IntType(16))
    dy = Variable("fdy", IntType(16))
    acc = Variable("facc", IntType(32))
    bx = Variable("bx", IntType(16))
    by = Variable("by", IntType(16))
    body = [
        # Interior: 9 reads + 1 write per output pixel.
        For(y, 1, SIZE - 2, [
            For(x, 1, SIZE - 2, [
                Assign(acc, 0),
                For(dy, -1, 1, [
                    For(dx, -1, 1, [
                        Assign(acc, Ref(acc) + Index(
                            frame_in,
                            (Ref(y) + Ref(dy)) * SIZE
                            + (Ref(x) + Ref(dx)))),
                    ]),
                ]),
                Assign((frame_out, Ref(y) * SIZE + Ref(x)),
                       Ref(acc) // 9),
            ]),
        ]),
        # Border copy-through: top and bottom rows...
        For(bx, 0, SIZE - 1, [
            Assign((frame_out, Ref(bx)), Index(frame_in, Ref(bx))),
            Assign((frame_out, (SIZE - 1) * SIZE + Ref(bx)),
                   Index(frame_in, (SIZE - 1) * SIZE + Ref(bx))),
        ]),
        # ...then the side columns.
        For(by, 1, SIZE - 2, [
            Assign((frame_out, Ref(by) * SIZE),
                   Index(frame_in, Ref(by) * SIZE)),
            Assign((frame_out, Ref(by) * SIZE + (SIZE - 1)),
                   Index(frame_in, Ref(by) * SIZE + (SIZE - 1))),
        ]),
    ]
    return Behavior("FILTER", body, local_variables=[acc])


def _host_readback(frame_out: Variable, checksum: Variable) -> Behavior:
    """Checksum the output frame on CHIP1."""
    i = Variable("ri", IntType(16))
    pixel = Variable("rpix", IntType(16))
    return Behavior("HOST_READBACK", [
        Assign(checksum, 0),
        For(i, 0, PIXELS - 1, [
            Assign(pixel, Index(frame_out, Ref(i))),
            Assign(checksum, Ref(checksum) + Ref(pixel)),
        ]),
    ], local_variables=[pixel])


def reference_output_frame() -> List[int]:
    """Oracle: the expected FRAME_OUT contents."""
    frame_in = [_input_pixel(i % SIZE, i // SIZE) for i in range(PIXELS)]
    frame_out = [0] * PIXELS
    for y in range(1, SIZE - 1):
        for x in range(1, SIZE - 1):
            total = sum(
                frame_in[(y + dy) * SIZE + (x + dx)]
                for dy in (-1, 0, 1) for dx in (-1, 0, 1)
            )
            frame_out[y * SIZE + x] = total // 9
    for x in range(SIZE):
        frame_out[x] = frame_in[x]
        frame_out[(SIZE - 1) * SIZE + x] = frame_in[(SIZE - 1) * SIZE + x]
    for y in range(1, SIZE - 1):
        frame_out[y * SIZE] = frame_in[y * SIZE]
        frame_out[y * SIZE + SIZE - 1] = frame_in[y * SIZE + SIZE - 1]
    return frame_out


def reference_checksum() -> int:
    """Oracle: the host's final checksum."""
    return sum(reference_output_frame())
