"""VHDL emission of refined specifications (Figures 4 and 5).

Protocol generation's tangible output in the paper is VHDL: the bus
record type, the per-channel send/receive procedures, the rewritten
behaviors whose remote accesses became procedure calls, and the
generated variable processes.  This module renders a
:class:`~repro.protogen.refine.RefinedSpec` in that form:

* ``emit_bus_declaration`` -- the ``type HandShakeBus is record ...``
  block and the global bus signal (top of Figure 4);
* ``emit_procedure`` -- one generated procedure; uniform single-field
  messages whose width divides evenly use Figure 4's
  ``for J in 1 to N loop`` shape, everything else (address+data
  messages, ragged last words) is unrolled word by word;
* ``emit_variable_process`` -- Figure 5's ``Xproc``/``MEMproc`` servers;
* ``emit_behavior`` -- a rewritten behavior as a VHDL process;
* ``emit_refined_spec`` -- a complete self-contained design unit.

Values travel as ``bit_vector`` slices; the emitted support package
declares ``int2bv``/``bv2int`` conversions and ``imin``/``imax`` so the
output stays VHDL'87-flavoured like the paper's listings.  There is no
VHDL toolchain in this environment, so fidelity is enforced by the
structural validator in :mod:`repro.hdl.validate` plus golden-text
tests against the paper's Figure 4 landmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import HdlError
from repro.hdl.writer import SourceWriter
from repro.obs.tracer import span as obs_span
from repro.protogen.procedures import CommProcedure, FieldKind, Role
from repro.protogen.refine import RefinedSpec
from repro.protogen.structure import BusStructure
from repro.protogen.varproc import VariableProcess
from repro.spec.behavior import Behavior
from repro.spec.expr import BinOp, Const, Expr, Index, Ref, UnOp
from repro.spec.stmt import (
    Assign,
    Call,
    ElementTarget,
    For,
    If,
    Nop,
    Stmt,
    WaitClocks,
    While,
)
from repro.spec.types import ArrayType, BitType, DataType, IntType
from repro.spec.variable import Variable


# ---------------------------------------------------------------------------
# Types and expressions
# ---------------------------------------------------------------------------

def vhdl_type(dtype: DataType, type_names: Optional[Dict[int, str]] = None) -> str:
    """VHDL type denotation of a specification type."""
    if isinstance(dtype, BitType):
        if dtype.width == 1:
            return "bit"
        return f"bit_vector({dtype.width - 1} downto 0)"
    if isinstance(dtype, IntType):
        return f"integer range {dtype.min_value} to {dtype.max_value}"
    if isinstance(dtype, ArrayType):
        if type_names and id(dtype) in type_names:
            return type_names[id(dtype)]
        element = vhdl_type(dtype.element)
        return f"array (0 to {dtype.length - 1}) of {element}"
    raise HdlError(f"cannot emit VHDL type for {dtype!r}")


_VHDL_BINOPS = {
    "+": "+", "-": "-", "*": "*", "/": "/", "mod": "mod",
    "=": "=", "/=": "/=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "and": "and", "or": "or",
}


def vhdl_expr(expr: Expr) -> str:
    """Render an expression in VHDL syntax."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Ref):
        return expr.variable.name
    if isinstance(expr, Index):
        return f"{expr.variable.name}({vhdl_expr(expr.index)})"
    if isinstance(expr, BinOp):
        if expr.op == "min":
            return f"imin({vhdl_expr(expr.lhs)}, {vhdl_expr(expr.rhs)})"
        if expr.op == "max":
            return f"imax({vhdl_expr(expr.lhs)}, {vhdl_expr(expr.rhs)})"
        op = _VHDL_BINOPS.get(expr.op)
        if op is None:
            raise HdlError(f"no VHDL rendering for operator {expr.op!r}")
        return f"({vhdl_expr(expr.lhs)} {op} {vhdl_expr(expr.rhs)})"
    if isinstance(expr, UnOp):
        if expr.op == "abs":
            return f"abs({vhdl_expr(expr.operand)})"
        if expr.op == "not":
            return f"(not {vhdl_expr(expr.operand)})"
        return f"(-{vhdl_expr(expr.operand)})"
    raise HdlError(f"cannot emit VHDL for expression {expr!r}")


def _var_type_txt(variable: Variable) -> str:
    """Type denotation for a variable declaration: arrays use the named
    type ``<name>_type`` declared by :func:`emit_refined_spec`."""
    if isinstance(variable.dtype, ArrayType):
        return f"{variable.name}_type"
    return vhdl_type(variable.dtype)


# ---------------------------------------------------------------------------
# Bus declaration (Figure 4 top)
# ---------------------------------------------------------------------------

def emit_bus_declaration(structure: BusStructure,
                         writer: Optional[SourceWriter] = None) -> str:
    """The record type and global signal of one generated bus."""
    w = writer or SourceWriter()
    w.line(f"type {structure.record_type_name} is record")
    with w.indented():
        if structure.control_lines:
            w.line(", ".join(structure.control_lines) + " : bit ;")
        if structure.id_lines:
            w.line(f"ID : bit_vector({structure.id_lines - 1} downto 0) ;")
        w.line(f"DATA : bit_vector({structure.width - 1} downto 0) ;")
    w.line("end record ;")
    w.blank()
    w.line(f"signal {structure.name} : {structure.record_type_name} ;")
    return w.text()


# ---------------------------------------------------------------------------
# Procedures (Figure 4 body)
# ---------------------------------------------------------------------------

def _id_literal(structure: BusStructure, channel_name: str) -> Optional[str]:
    bits = structure.ids.code_bits(channel_name)
    return f'"{bits}"' if bits else None


def _is_uniform_loop(proc: CommProcedure, width: int) -> bool:
    """Figure 4's loop shape applies when the procedure's side drives
    (or receives) a single field that fills whole words."""
    layout = proc.layout
    if len(layout.fields) != 1:
        return False
    field = layout.fields[0]
    return field.bits % width == 0 and field.bits // width > 1


def _slice_txt(name: str, hi: int, lo: int) -> str:
    return f"{name}({hi} downto {lo})"


def emit_procedure(proc: CommProcedure, structure: BusStructure,
                   writer: Optional[SourceWriter] = None) -> str:
    """Emit one generated send/receive procedure."""
    w = writer or SourceWriter()
    protocol = structure.protocol.name
    if protocol == "full_handshake":
        _emit_handshake_procedure(proc, structure, w)
    elif protocol == "burst_handshake":
        _emit_burst_procedure(proc, structure, w)
    elif protocol in ("half_handshake", "fixed_delay", "hardwired"):
        _emit_strobed_procedure(proc, structure, w)
    else:
        raise HdlError(f"no VHDL emitter for protocol {protocol!r}")
    return w.text()


def _storage_type(proc: CommProcedure) -> str:
    """VHDL type of the server's storage parameter."""
    variable = proc.channel.variable
    if proc.layout.has_address:
        return f"{variable.name}_type"
    data_bits = proc.layout.field(FieldKind.DATA).bits
    return f"bit_vector({data_bits - 1} downto 0)"


def _formal_params(proc: CommProcedure) -> str:
    params: List[str] = []
    if proc.takes_address:
        bits = proc.layout.field(FieldKind.ADDRESS).bits
        params.append(f"addr : in bit_vector({bits - 1} downto 0)")
    data_bits = proc.layout.field(FieldKind.DATA).bits
    if proc.role is Role.ACCESSOR:
        direction = "in" if proc.sends_data else "out"
        name = "txdata" if proc.sends_data else "rxdata"
        params.append(f"{name} : {direction} bit_vector({data_bits - 1} downto 0)")
    else:
        params.append(f"storage : inout {_storage_type(proc)}")
    return "; ".join(params)


def _field_param_name(proc: CommProcedure, field_kind: FieldKind) -> str:
    if field_kind is FieldKind.ADDRESS:
        return "addr"
    if proc.role is Role.SERVER:
        # Array-channel servers stage the message in locals and commit
        # against storage afterwards; scalar-channel servers move
        # directly to/from the storage parameter (Figure 4 shape).
        return "data" if proc.layout.has_address else "storage"
    return "txdata" if proc.sends_data else "rxdata"


def _server_locals(proc: CommProcedure, w: SourceWriter) -> None:
    """Declare the staging locals of an array-channel server."""
    if not proc.layout.has_address:
        return
    addr_bits = proc.layout.field(FieldKind.ADDRESS).bits
    data_bits = proc.layout.field(FieldKind.DATA).bits
    with w.indented():
        w.line(f"variable addr : bit_vector({addr_bits - 1} downto 0) ;")
        w.line(f"variable data : bit_vector({data_bits - 1} downto 0) ;")


def _server_load_line(proc: CommProcedure) -> str:
    """Fetch the read data from storage once the address is complete."""
    data_bits = proc.layout.field(FieldKind.DATA).bits
    if proc.layout.has_address:
        return (f"data := int2bv(storage(bv2int(addr)), {data_bits}) ;")
    return ""


def _server_commit_line(proc: CommProcedure) -> str:
    """Store a completed write into the served variable."""
    if not proc.layout.has_address:
        return ""
    variable = proc.channel.variable
    dtype = variable.dtype
    assert isinstance(dtype, ArrayType)
    if isinstance(dtype.element, IntType):
        return "storage(bv2int(addr)) := bv2int(data) ;"
    return "storage(bv2int(addr)) := data ;"


def _emit_word_moves(proc: CommProcedure, structure: BusStructure,
                     w: SourceWriter, word, drive: bool) -> None:
    """Assignments moving one word's slices between DATA and params.

    ``drive=True`` emits ``B.DATA(..) <= param(..)`` for slices this
    side drives; ``drive=False`` emits the latching direction for
    slices the other side drives (or, for the accessor of a read, the
    server-driven data it must capture).
    """
    bus = structure.name
    role = proc.role
    # Array-channel servers latch into procedure locals (VHDL variable
    # assignment); everything else moves between signals/params.
    latch_op = ":=" if (role is Role.SERVER and proc.layout.has_address) \
        else "<="
    for word_slice in word.slices:
        param = _field_param_name(proc, word_slice.field.kind)
        mine = word_slice.field.driver is role
        data_hi = word_slice.word_offset + word_slice.bits - 1
        data_lo = word_slice.word_offset
        bus_slice = _slice_txt(f"{bus}.DATA", data_hi, data_lo)
        param_slice = _slice_txt(param, word_slice.field_hi,
                                 word_slice.field_lo)
        if drive and mine:
            w.line(f"{bus_slice} <= {param_slice} ;")
        elif not drive and not mine:
            w.line(f"{param_slice} {latch_op} {bus_slice} ;")


def _emit_handshake_procedure(proc: CommProcedure,
                              structure: BusStructure,
                              w: SourceWriter) -> None:
    bus = structure.name
    id_literal = _id_literal(structure, proc.channel.name)
    w.line(f"procedure {proc.name}( {_formal_params(proc)} ) is")
    if proc.role is Role.SERVER:
        _server_locals(proc, w)
    w.line("begin")
    w.indent()

    width = structure.width
    words = proc.layout.words(width)
    if proc.role is Role.ACCESSOR:
        if id_literal:
            w.line(f"{bus}.ID <= {id_literal} ;")
        if _is_uniform_loop(proc, width):
            param = _field_param_name(proc, proc.layout.fields[0].kind)
            count = len(words)
            w.line(f"for J in 1 to {count} loop")
            with w.indented():
                moved = _slice_txt(param, f"{width}*J-1", f"{width}*(J-1)")
                if proc.sends_data:
                    w.line(f"{bus}.DATA <= {moved} ;")
                w.line(f"{bus}.START <= '1' ;")
                w.line(f"wait until ({bus}.DONE = '1') ;")
                if not proc.sends_data:
                    w.line(f"{moved} <= {bus}.DATA ;")
                w.line(f"{bus}.START <= '0' ;")
                w.line(f"wait until ({bus}.DONE = '0') ;")
            w.line("end loop ;")
        else:
            for word in words:
                w.line(f"-- word {word.index}: message bits "
                       f"{word.msg_hi} downto {word.msg_lo}")
                _emit_word_moves(proc, structure, w, word, drive=True)
                w.line(f"{bus}.START <= '1' ;")
                w.line(f"wait until ({bus}.DONE = '1') ;")
                _emit_word_moves(proc, structure, w, word, drive=False)
                w.line(f"{bus}.START <= '0' ;")
                w.line(f"wait until ({bus}.DONE = '0') ;")
    else:
        guard = f"({bus}.START = '1')"
        if id_literal:
            guard += f" and ({bus}.ID = {id_literal})"
        if _is_uniform_loop(proc, width):
            param = _field_param_name(proc, proc.layout.fields[0].kind)
            count = len(words)
            w.line(f"for J in 1 to {count} loop")
            with w.indented():
                w.line(f"wait until {guard} ;")
                moved = _slice_txt(param, f"{width}*J-1", f"{width}*(J-1)")
                if proc.sends_data:
                    w.line(f"{bus}.DATA <= {moved} ;")
                else:
                    w.line(f"{moved} <= {bus}.DATA ;")
                w.line(f"{bus}.DONE <= '1' ;")
                w.line(f"wait until ({bus}.START = '0') ;")
                w.line(f"{bus}.DONE <= '0' ;")
            w.line("end loop ;")
        else:
            loaded = False
            for word in words:
                w.line(f"-- word {word.index}: message bits "
                       f"{word.msg_hi} downto {word.msg_lo}")
                w.line(f"wait until {guard} ;")
                _emit_word_moves(proc, structure, w, word, drive=False)
                if proc.sends_data and not loaded and \
                        word.slices_driven_by(Role.SERVER):
                    line = _server_load_line(proc)
                    if line:
                        w.line(line)
                    loaded = True
                _emit_word_moves(proc, structure, w, word, drive=True)
                w.line(f"{bus}.DONE <= '1' ;")
                w.line(f"wait until ({bus}.START = '0') ;")
                w.line(f"{bus}.DONE <= '0' ;")
            if not proc.sends_data:
                line = _server_commit_line(proc)
                if line:
                    w.line(line)

    w.dedent()
    w.line(f"end {proc.name} ;")


def _emit_burst_procedure(proc: CommProcedure, structure: BusStructure,
                          w: SourceWriter) -> None:
    """Burst transfer: one START/DONE handshake per message, then one
    word per BUS_WORD_DELAY."""
    bus = structure.name
    id_literal = _id_literal(structure, proc.channel.name)
    w.line(f"procedure {proc.name}( {_formal_params(proc)} ) is")
    if proc.role is Role.SERVER:
        _server_locals(proc, w)
    w.line("begin")
    w.indent()
    words = proc.layout.words(structure.width)
    if proc.role is Role.ACCESSOR:
        if id_literal:
            w.line(f"{bus}.ID <= {id_literal} ;")
        w.line(f"{bus}.START <= '1' ;")
        w.line(f"wait until ({bus}.DONE = '1') ;  -- burst granted")
        for word in words:
            w.line(f"-- word {word.index}: message bits "
                   f"{word.msg_hi} downto {word.msg_lo}")
            _emit_word_moves(proc, structure, w, word, drive=True)
            w.line("wait for BUS_WORD_DELAY ;")
            _emit_word_moves(proc, structure, w, word, drive=False)
        w.line(f"{bus}.START <= '0' ;")
        w.line(f"wait until ({bus}.DONE = '0') ;")
    else:
        guard = f"({bus}.START = '1')"
        if id_literal:
            guard += f" and ({bus}.ID = {id_literal})"
        w.line(f"wait until {guard} ;")
        w.line(f"{bus}.DONE <= '1' ;  -- burst granted")
        loaded = False
        for word in words:
            w.line(f"-- word {word.index}: message bits "
                   f"{word.msg_hi} downto {word.msg_lo}")
            w.line("wait for BUS_WORD_DELAY ;")
            _emit_word_moves(proc, structure, w, word, drive=False)
            if proc.sends_data and not loaded and \
                    word.slices_driven_by(Role.SERVER):
                line = _server_load_line(proc)
                if line:
                    w.line(line)
                loaded = True
            _emit_word_moves(proc, structure, w, word, drive=True)
        if not proc.sends_data:
            line = _server_commit_line(proc)
            if line:
                w.line(line)
        w.line(f"wait until ({bus}.START = '0') ;")
        w.line(f"{bus}.DONE <= '0' ;")
    w.dedent()
    w.line(f"end {proc.name} ;")


def _emit_strobed_procedure(proc: CommProcedure, structure: BusStructure,
                            w: SourceWriter) -> None:
    """One-clock-per-word protocols: half handshake (REQ), fixed delay
    and hardwired (pure timing)."""
    bus = structure.name
    id_literal = _id_literal(structure, proc.channel.name)
    has_req = "REQ" in structure.protocol.control_lines
    w.line(f"procedure {proc.name}( {_formal_params(proc)} ) is")
    if proc.role is Role.SERVER:
        _server_locals(proc, w)
    w.line("begin")
    w.indent()
    words = proc.layout.words(structure.width)
    if proc.role is Role.ACCESSOR and id_literal:
        w.line(f"{bus}.ID <= {id_literal} ;")
    loaded = False
    for word in words:
        w.line(f"-- word {word.index}: message bits "
               f"{word.msg_hi} downto {word.msg_lo}")
        if proc.role is Role.ACCESSOR:
            _emit_word_moves(proc, structure, w, word, drive=True)
            if has_req:
                w.line(f"{bus}.REQ <= not {bus}.REQ ;")
            w.line("wait for BUS_WORD_DELAY ;")
            _emit_word_moves(proc, structure, w, word, drive=False)
        else:
            if has_req:
                w.line(f"wait on {bus}.REQ ;")
            else:
                w.line("wait for BUS_WORD_DELAY ;")
            _emit_word_moves(proc, structure, w, word, drive=False)
            if proc.sends_data and not loaded and \
                    word.slices_driven_by(Role.SERVER):
                line = _server_load_line(proc)
                if line:
                    w.line(line)
                loaded = True
            _emit_word_moves(proc, structure, w, word, drive=True)
    if proc.role is Role.SERVER and not proc.sends_data:
        line = _server_commit_line(proc)
        if line:
            w.line(line)
    w.dedent()
    w.line(f"end {proc.name} ;")


# ---------------------------------------------------------------------------
# Variable processes (Figure 5 bottom)
# ---------------------------------------------------------------------------

def emit_variable_process(process: VariableProcess,
                          structure: BusStructure,
                          writer: Optional[SourceWriter] = None) -> str:
    """Emit a generated server process (Figure 5's Xproc / MEMproc)."""
    w = writer or SourceWriter()
    bus = structure.name
    variable = process.variable
    w.line(f"{process.name} : process")
    with w.indented():
        w.line(f"variable {variable.name} : {_var_type_txt(variable)} ;")
    w.line("begin")
    with w.indented():
        watch = f"{bus}.ID" if structure.id_lines else f"{bus}.START" \
            if "START" in structure.protocol.control_lines else f"{bus}.DATA"
        w.line(f"wait on {watch} ;")
        first = True
        for service in process.services:
            id_literal = _id_literal(structure, service.channel.name)
            keyword = "if" if first else "elsif"
            first = False
            if id_literal:
                w.line(f"{keyword} ({bus}.ID = {id_literal}) then")
            else:
                w.line(f"{keyword} true then")
            with w.indented():
                args = []
                if service.layout.has_address:
                    # The server receives the address from the bus; the
                    # storage parameter covers data.
                    pass
                args.append(variable.name)
                w.line(f"{service.server.name}({', '.join(args)}) ;")
        w.line("end if ;")
    w.line("end process ;")
    return w.text()


# ---------------------------------------------------------------------------
# Behaviors (Figure 5 top)
# ---------------------------------------------------------------------------

def _emit_stmt(stmt: Stmt, w: SourceWriter) -> None:
    if isinstance(stmt, Assign):
        target = stmt.target
        if isinstance(target, ElementTarget):
            lhs = f"{target.variable.name}({vhdl_expr(target.index)})"
        else:
            lhs = target.variable.name
        w.line(f"{lhs} <= {vhdl_expr(stmt.expr)} ;")
    elif isinstance(stmt, If):
        w.line(f"if {vhdl_expr(stmt.cond)} then")
        with w.indented():
            for child in stmt.then_body:
                _emit_stmt(child, w)
        if stmt.else_body:
            w.line("else")
            with w.indented():
                for child in stmt.else_body:
                    _emit_stmt(child, w)
        w.line("end if ;")
    elif isinstance(stmt, For):
        w.line(f"for {stmt.var.name} in {stmt.lo} to {stmt.hi} loop")
        with w.indented():
            for child in stmt.body:
                _emit_stmt(child, w)
        w.line("end loop ;")
    elif isinstance(stmt, While):
        w.line(f"while {vhdl_expr(stmt.cond)} loop")
        with w.indented():
            for child in stmt.body:
                _emit_stmt(child, w)
        w.line("end loop ;")
    elif isinstance(stmt, WaitClocks):
        w.line(f"wait for {stmt.clocks} * CLOCK_PERIOD ;")
    elif isinstance(stmt, Call):
        name = getattr(stmt.procedure, "name", str(stmt.procedure))
        args = [vhdl_expr(a) for a in stmt.args]
        for result in stmt.results:
            if isinstance(result, ElementTarget):
                args.append(
                    f"{result.variable.name}({vhdl_expr(result.index)})")
            else:
                args.append(result.variable.name)
        w.line(f"{name}({', '.join(args)}) ;")
    elif isinstance(stmt, Nop):
        w.line("null ;")
    else:
        raise HdlError(f"cannot emit VHDL for statement {stmt!r}")


def emit_behavior(behavior: Behavior,
                  writer: Optional[SourceWriter] = None) -> str:
    """Emit one (possibly refined) behavior as a VHDL process."""
    w = writer or SourceWriter()
    w.line(f"{behavior.name} : process")
    with w.indented():
        for local in behavior.local_variables:
            init = ""
            if local.init is not None and not isinstance(local.init, list):
                init = f" := {local.init}"
            w.line(f"variable {local.name} : {vhdl_type(local.dtype)}{init} ;")
    w.line("begin")
    with w.indented():
        for stmt in behavior.body:
            _emit_stmt(stmt, w)
        w.line("wait ;")
    w.line("end process ;")
    return w.text()


# ---------------------------------------------------------------------------
# Whole design
# ---------------------------------------------------------------------------

_SUPPORT_FUNCTIONS = """\
-- Support declarations generated alongside every refined design.
constant CLOCK_PERIOD : time := 10 ns ;
constant BUS_WORD_DELAY : time := 10 ns ;

function imin(a, b : integer) return integer is
begin
  if a < b then
    return a ;
  else
    return b ;
  end if ;
end imin ;

function imax(a, b : integer) return integer is
begin
  if a > b then
    return a ;
  else
    return b ;
  end if ;
end imax ;

-- Two's-complement conversions between integers and bit vectors.
function int2bv(value : integer ; width : integer) return bit_vector is
  variable result : bit_vector(width - 1 downto 0) ;
  variable remainder : integer ;
begin
  remainder := value ;
  for bitpos in 0 to width - 1 loop
    if (remainder mod 2) /= 0 then
      result(bitpos) := '1' ;
    else
      result(bitpos) := '0' ;
    end if ;
    remainder := remainder / 2 ;
  end loop ;
  return result ;
end int2bv ;

function bv2int(value : bit_vector) return integer is
  variable result : integer := 0 ;
begin
  for bitpos in value'reverse_range loop
    result := result * 2 ;
    if value(bitpos) = '1' then
      result := result + 1 ;
    end if ;
  end loop ;
  return result ;
end bv2int ;"""


def emit_refined_spec(spec: RefinedSpec,
                      entity_name: Optional[str] = None) -> str:
    """Emit a complete refined design: entity, buses, procedures,
    behaviors and variable processes."""
    with obs_span("hdl.emit_vhdl", system=spec.name) as sp:
        text = _emit_refined_spec(spec, entity_name)
        sp.set(lines=text.count("\n") + 1)
    return text


def _emit_refined_spec(spec: RefinedSpec,
                       entity_name: Optional[str] = None) -> str:
    for bus in spec.buses:
        if getattr(bus.structure, "protection", None) is not None:
            raise HdlError(
                f"bus {bus.structure.name}: protected protocols "
                f"({bus.structure.protection.protection.name} check field "
                "+ NACK/retry) have no VHDL emitter yet; re-run without "
                "--protection to emit HDL"
            )
    w = SourceWriter()
    name = entity_name or spec.name
    w.line(f"-- Generated by repro.hdl.vhdl from refined spec {spec.name}")
    w.line(f"entity {name} is")
    w.line(f"end {name} ;")
    w.blank()
    w.line(f"architecture refined of {name} is")
    w.indent()
    for line in _SUPPORT_FUNCTIONS.splitlines():
        w.line(line)
    w.blank()
    # Named array types for every served array variable (the server
    # procedures and variable processes reference them).
    for variable in spec.served_variables():
        if isinstance(variable.dtype, ArrayType):
            w.line(f"type {variable.name}_type is "
                   f"{vhdl_type(variable.dtype)} ;")
    w.blank()
    for bus in spec.buses:
        emit_bus_declaration(bus.structure, w)
        w.blank()
        for pair in bus.procedures.values():
            emit_procedure(pair.accessor, bus.structure, w)
            w.blank()
            emit_procedure(pair.server, bus.structure, w)
            w.blank()
    w.dedent()
    w.line("begin")
    w.indent()
    for behavior in spec.behaviors:
        emit_behavior(behavior, w)
        w.blank()
    for bus in spec.buses:
        for vproc in bus.variable_processes:
            emit_variable_process(vproc, bus.structure, w)
            w.blank()
    w.dedent()
    w.line("end refined ;")
    return w.text()
