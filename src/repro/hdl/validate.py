"""Lightweight structural validation of emitted VHDL.

No VHDL toolchain exists in this offline environment, so generated code
is checked lexically/structurally instead:

* balanced construct pairs (``process``/``end process``,
  ``loop``/``end loop``, ``if``/``end if``, ``record``/``end record``),
* every referenced bus field exists in a declared record,
* every called ``SendCHx``/``ReceiveCHx`` procedure is declared,
* identifier sanity (no empty names, no unterminated statements),
* when the generating :class:`~repro.protogen.structure.BusStructure`
  objects are passed in, each bus signal's declared ``ID`` and ``DATA``
  record-field widths must match the structure's ID lines and buswidth.

The validator is intentionally conservative: it accepts only the shapes
the emitter produces, and the test suite asserts both that emitted code
passes and that broken mutations fail.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import HdlError
from repro.obs.tracer import span as obs_span

if TYPE_CHECKING:
    from repro.protogen.structure import BusStructure


@dataclass
class ValidationReport:
    """Outcome of validating one VHDL text."""

    errors: List[str] = field(default_factory=list)
    #: Declared procedure names.
    procedures: Set[str] = field(default_factory=set)
    #: Declared record type names.
    records: Set[str] = field(default_factory=set)
    #: Declared process labels.
    processes: Set[str] = field(default_factory=set)
    #: Declared signals: name -> record type.
    signals: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_failed(self) -> None:
        if self.errors:
            summary = "; ".join(self.errors[:10])
            raise HdlError(f"VHDL validation failed: {summary}")


_COMMENT = re.compile(r"--.*$")
_PROCEDURE_DECL = re.compile(r"^\s*procedure\s+(\w+)\s*\(", re.IGNORECASE)
_PROCEDURE_END = re.compile(r"^\s*end\s+(\w+)\s*;", re.IGNORECASE)
_RECORD_DECL = re.compile(r"^\s*type\s+(\w+)\s+is\s+record\b", re.IGNORECASE)
_SIGNAL_DECL = re.compile(r"^\s*signal\s+(\w+)\s*:\s*(\w+)\s*;", re.IGNORECASE)
_PROCESS_DECL = re.compile(r"^\s*(\w+)\s*:\s*process\b", re.IGNORECASE)
_CALL = re.compile(r"^\s*(\w+)\s*\(.*\)\s*;\s*$")
_FIELD_REF = re.compile(r"\b(\w+)\.(\w+)\b")

_CONTROL_KEYWORDS = ("if", "for", "while", "wait", "elsif", "function",
                     "procedure", "null", "abs")


def _strip(line: str) -> str:
    return _COMMENT.sub("", line).rstrip()


def validate_vhdl(text: str,
                  structures: Optional[Sequence["BusStructure"]] = None,
                  ) -> ValidationReport:
    """Validate emitted VHDL; returns a report (see module docstring).

    ``structures`` enables the width cross-check: each structure's bus
    signal must declare ``ID``/``DATA`` record fields whose bit widths
    match the structure's ID lines and buswidth.
    """
    with obs_span("hdl.validate", lines=text.count("\n") + 1):
        report = ValidationReport()
        lines = [_strip(line) for line in text.splitlines()]

        _check_balance(lines, report)
        _collect_declarations(lines, report)
        _check_references(lines, report)
        if structures:
            _check_widths(lines, report, structures)
    return report


_FIELD_WIDTH = re.compile(
    r"^\s*([\w,\s]+?)\s*:\s*"
    r"(?:bit_vector\s*\(\s*(\d+)\s+downto\s+(\d+)\s*\)|bit\b)",
    re.IGNORECASE)


def _record_field_widths(lines: List[str]) -> Dict[str, Dict[str, int]]:
    """Record type -> field name -> declared bit width (``bit`` = 1)."""
    widths: Dict[str, Dict[str, int]] = {}
    current = None
    for line in lines:
        match = _RECORD_DECL.match(line)
        if match:
            current = match.group(1)
            widths[current] = {}
            continue
        if current is None:
            continue
        if re.match(r"^\s*end\s+record\b", line, re.IGNORECASE):
            current = None
            continue
        match = _FIELD_WIDTH.match(line)
        if match:
            names, hi, lo = match.groups()
            bits = int(hi) - int(lo) + 1 if hi is not None else 1
            for name in names.split(","):
                widths[current][name.strip()] = bits
    return widths


def _check_widths(lines: List[str], report: ValidationReport,
                  structures: Sequence["BusStructure"]) -> None:
    record_widths = _record_field_widths(lines)
    for structure in structures:
        record = report.signals.get(structure.name)
        if record is None:
            report.errors.append(
                f"no signal declared for bus {structure.name}")
            continue
        fields = record_widths.get(record, {})
        expected = {"DATA": structure.width}
        if structure.id_lines:
            expected["ID"] = structure.id_lines
        for name, want in expected.items():
            have = fields.get(name)
            if have is None:
                report.errors.append(
                    f"bus {structure.name}: record {record} declares no "
                    f"{name} field")
            elif have != want:
                report.errors.append(
                    f"bus {structure.name}: {name} declared as {have} "
                    f"bit(s) but the bus structure has {want}")


def _check_balance(lines: List[str], report: ValidationReport) -> None:
    counters = {
        "process": 0,
        "loop": 0,
        "if": 0,
        "record": 0,
        "case": 0,
    }
    for number, line in enumerate(lines, start=1):
        lowered = line.strip().lower()
        if not lowered:
            continue
        if re.match(r"^end\s+process\b", lowered):
            counters["process"] -= 1
        elif re.search(r":\s*process\b", lowered) or lowered == "process":
            counters["process"] += 1
        if re.match(r"^end\s+loop\b", lowered):
            counters["loop"] -= 1
        elif re.search(r"\bloop\s*$", lowered) and \
                not lowered.startswith("end"):
            counters["loop"] += 1
        if re.match(r"^end\s+if\b", lowered):
            counters["if"] -= 1
        elif re.match(r"^if\b", lowered) or re.search(r"\bthen\s*$", lowered) \
                and re.match(r"^(if|elsif)\b", lowered):
            if re.match(r"^if\b", lowered):
                counters["if"] += 1
        if re.match(r"^end\s+record\b", lowered):
            counters["record"] -= 1
        elif re.search(r"\bis\s+record\b", lowered):
            counters["record"] += 1
        for kind, count in counters.items():
            if count < 0:
                report.errors.append(
                    f"line {number}: unmatched 'end {kind}'"
                )
                counters[kind] = 0
    for kind, count in counters.items():
        if count > 0:
            report.errors.append(f"{count} unterminated '{kind}' block(s)")


def _collect_declarations(lines: List[str],
                          report: ValidationReport) -> None:
    for number, line in enumerate(lines, start=1):
        match = _PROCEDURE_DECL.match(line)
        if match:
            name = match.group(1)
            if name in report.procedures:
                report.errors.append(
                    f"line {number}: duplicate procedure {name}"
                )
            report.procedures.add(name)
            continue
        match = _RECORD_DECL.match(line)
        if match:
            report.records.add(match.group(1))
            continue
        match = _SIGNAL_DECL.match(line)
        if match:
            report.signals[match.group(1)] = match.group(2)
            continue
        match = _PROCESS_DECL.match(line)
        if match:
            name = match.group(1)
            if name in report.processes:
                report.errors.append(
                    f"line {number}: duplicate process label {name}"
                )
            report.processes.add(name)


def _check_references(lines: List[str], report: ValidationReport) -> None:
    known_fields: Set[Tuple[str, str]] = set()
    # Parse record bodies to learn their fields.
    current_record = None
    record_fields: Dict[str, Set[str]] = {}
    for line in lines:
        match = _RECORD_DECL.match(line)
        if match:
            current_record = match.group(1)
            record_fields[current_record] = set()
            continue
        if current_record is not None:
            if re.match(r"^\s*end\s+record\b", line, re.IGNORECASE):
                current_record = None
                continue
            declared = re.match(r"^\s*([\w,\s]+)\s*:\s*", line)
            if declared:
                for field_name in declared.group(1).split(","):
                    record_fields[current_record].add(field_name.strip())

    for signal, record in report.signals.items():
        for field_name in record_fields.get(record, ()):
            known_fields.add((signal, field_name))

    for number, line in enumerate(lines, start=1):
        for match in _FIELD_REF.finditer(line):
            prefix, suffix = match.group(1), match.group(2)
            if prefix in report.signals:
                if (prefix, suffix) not in known_fields:
                    report.errors.append(
                        f"line {number}: signal {prefix} has no field "
                        f"{suffix}"
                    )
        call = _CALL.match(line)
        if call:
            name = call.group(1).lower()
            if name in _CONTROL_KEYWORDS:
                continue
            called = call.group(1)
            if re.match(r"^(Send|Receive)", called) and \
                    called not in report.procedures:
                report.errors.append(
                    f"line {number}: call to undeclared procedure {called}"
                )


def count_procedures_per_channel(report: ValidationReport,
                                 channel_names: List[str]) -> Dict[str, int]:
    """How many generated procedures each channel has (expected: 2)."""
    counts: Dict[str, int] = {name: 0 for name in channel_names}
    for procedure in report.procedures:
        for name in channel_names:
            if procedure.lower().endswith(name.lower()):
                counts[name] += 1
    return counts
