"""Indentation-aware source writer for code generation."""

from __future__ import annotations

from typing import List


class SourceWriter:
    """Accumulates lines with managed indentation.

    Usage::

        w = SourceWriter()
        w.line("process")
        with w.indented():
            w.line("X <= 32;")
        w.line("end process;")
    """

    def __init__(self, indent_str: str = "  "):
        self._lines: List[str] = []
        self._indent = 0
        self._indent_str = indent_str

    def line(self, text: str = "") -> None:
        if text:
            self._lines.append(self._indent_str * self._indent + text)
        else:
            self._lines.append("")

    def lines(self, texts) -> None:
        for text in texts:
            self.line(text)

    def blank(self) -> None:
        if self._lines and self._lines[-1] != "":
            self._lines.append("")

    def indent(self) -> None:
        self._indent += 1

    def dedent(self) -> None:
        if self._indent == 0:
            raise ValueError("dedent below zero")
        self._indent -= 1

    def indented(self) -> "_IndentContext":
        return _IndentContext(self)

    def text(self) -> str:
        return "\n".join(self._lines) + "\n"

    def __str__(self) -> str:
        return self.text()


class _IndentContext:
    def __init__(self, writer: SourceWriter):
        self._writer = writer

    def __enter__(self) -> SourceWriter:
        self._writer.indent()
        return self._writer

    def __exit__(self, *exc_info) -> None:
        self._writer.dedent()
