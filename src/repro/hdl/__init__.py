"""VHDL emission of refined specifications (Figures 4-5 of the paper)
plus a structural validator.  See DESIGN.md section 3."""

from repro.hdl.validate import (
    ValidationReport,
    count_procedures_per_channel,
    validate_vhdl,
)
from repro.hdl.vhdl import (
    emit_behavior,
    emit_bus_declaration,
    emit_procedure,
    emit_refined_spec,
    emit_variable_process,
    vhdl_expr,
    vhdl_type,
)
from repro.hdl.writer import SourceWriter

__all__ = [
    "SourceWriter",
    "ValidationReport",
    "count_procedures_per_channel",
    "emit_behavior",
    "emit_bus_declaration",
    "emit_procedure",
    "emit_refined_spec",
    "emit_variable_process",
    "validate_vhdl",
    "vhdl_expr",
    "vhdl_type",
]
