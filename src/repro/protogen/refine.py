"""Specification refinement: protocol generation steps 1-5.

:func:`generate_protocol` runs the paper's five steps for one channel
group and returns a :class:`RefinedSpec`:

1. *Protocol selection* -- caller chooses (default: full handshake, the
   paper's running example).
2. *ID assignment* -- :mod:`repro.protogen.idassign`.
3. *Bus structure and procedure definition* --
   :mod:`repro.protogen.structure` / :mod:`repro.protogen.procedures`.
4. *Update variable-references* -- every direct access to a remote
   variable is rewritten into a call of the generated procedure:
   ``X <= 32`` becomes ``SendCH0(32)``; ``MEM(60) := COUNT`` becomes
   ``SendCH3(60, COUNT)``; a *read* such as ``IR <= MEM(PC)`` becomes
   ``ReceiveCH1(PC, IRtemp)`` followed by use of the temporary
   (Figure 5's ``Xtemp``).
5. *Generate variable processes* -- :mod:`repro.protogen.varproc`.

The refined specification is simulatable (:mod:`repro.sim.runtime`) and
emittable as VHDL (:mod:`repro.hdl.vhdl`).  Rewriting is pure: original
:class:`~repro.spec.behavior.Behavior` objects are never mutated.

Multi-bus systems call :func:`refine_system`, which applies
``generate_protocol`` per bus and threads the rewritten behaviors
through, so a behavior talking over two buses ends up with both sets of
procedure calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.busgen.algorithm import BusDesign
from repro.channels.group import ChannelGroup
from repro.errors import RefinementError
from repro.obs.tracer import span as obs_span
from repro.protocols import (
    FULL_HANDSHAKE,
    Protocol,
    ProtectionLike,
    ProtectionPlan,
    as_protection_plan,
)
from repro.protogen.idassign import assign_ids
from repro.protogen.procedures import ChannelProcedures, make_procedures
from repro.protogen.structure import BusStructure, make_structure
from repro.protogen.varproc import VariableProcess, make_variable_processes
from repro.spec.access import Direction
from repro.spec.behavior import Behavior
from repro.spec.expr import BinOp, Const, Expr, Index, Ref, UnOp
from repro.spec.stmt import (
    Assign,
    Call,
    ElementTarget,
    For,
    If,
    Nop,
    Stmt,
    Target,
    WaitClocks,
    While,
)
from repro.spec.system import SystemSpec
from repro.spec.types import ArrayType, DataType
from repro.spec.variable import Variable


@dataclass
class RefinedBus:
    """One generated bus: structure, procedures and variable processes."""

    structure: BusStructure
    #: Channel name -> generated accessor/server procedure pair.
    procedures: Dict[str, ChannelProcedures]
    variable_processes: List[VariableProcess]
    #: The bus-generation result that chose the width, when available.
    design: Optional[BusDesign] = None

    @property
    def name(self) -> str:
        return self.structure.name

    @property
    def group(self) -> ChannelGroup:
        return self.structure.group

    def describe(self) -> str:
        lines = [self.structure.describe()]
        for channel_name, pair in self.procedures.items():
            lines.append(
                f"  {channel_name} (ID {self.structure.ids.code_bits(channel_name) or '-'}):"
                f" accessor {pair.accessor.name}, server {pair.server.name}"
            )
        lines.extend(f"  {vp.describe()}" for vp in self.variable_processes)
        return "\n".join(lines)


@dataclass
class RefinedSpec:
    """A refined, simulatable system specification."""

    name: str
    original: SystemSpec
    #: All system behaviors; those touching a bus are rewritten copies.
    behaviors: List[Behavior]
    buses: List[RefinedBus]
    #: Names of behaviors that were rewritten (touch at least one bus).
    #: Metadata for the static analyzer; simulation never reads it.
    rewritten: List[str] = field(default_factory=list)

    def behavior(self, name: str) -> Behavior:
        for behavior in self.behaviors:
            if behavior.name == name:
                return behavior
        raise RefinementError(f"refined spec has no behavior {name!r}")

    def bus(self, name: str) -> RefinedBus:
        for bus in self.buses:
            if bus.name == name:
                return bus
        raise RefinementError(f"refined spec has no bus {name!r}")

    def served_variables(self) -> List[Variable]:
        """Variables now owned by generated variable processes."""
        out: List[Variable] = []
        for bus in self.buses:
            for vp in bus.variable_processes:
                if vp.variable not in out:
                    out.append(vp.variable)
        return out

    def all_variable_processes(self) -> List[VariableProcess]:
        return [vp for bus in self.buses for vp in bus.variable_processes]

    def describe(self) -> str:
        lines = [f"refined spec {self.name}:"]
        lines.extend(f"  behavior {b.name} ({len(b.body)} statements)"
                     for b in self.behaviors)
        for bus in self.buses:
            lines.append(bus.describe())
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Step 4: variable-reference rewriting
# ---------------------------------------------------------------------------

class _BehaviorRewriter:
    """Rewrites one behavior's remote accesses into procedure calls."""

    def __init__(self, behavior: Behavior,
                 remote: Dict[Variable, Dict[Direction, ChannelProcedures]]):
        self.source = behavior
        self.remote = remote
        self.result = Behavior(
            behavior.name,
            body=(),
            local_variables=list(behavior.local_variables),
        )

    def rewrite(self) -> Behavior:
        self.result.body = self._rewrite_body(self.source.body)
        return self.result

    # -- helpers -----------------------------------------------------------

    def _procedures_for(self, variable: Variable,
                        direction: Direction) -> ChannelProcedures:
        try:
            return self.remote[variable][direction]
        except KeyError:
            raise RefinementError(
                f"behavior {self.source.name} performs a {direction} of "
                f"remote variable {variable.name}, but the bus has no "
                "channel for it; re-extract channels from the partition"
            ) from None

    def _is_remote(self, variable: Variable) -> bool:
        return variable in self.remote

    def _make_temp(self, variable: Variable) -> Variable:
        dtype: DataType = variable.dtype
        if isinstance(dtype, ArrayType):
            dtype = dtype.element
        name = self.result.fresh_local_name(f"{variable.name}temp")
        temp = Variable(name, dtype)
        self.result.add_local(temp)
        return temp

    # -- expressions --------------------------------------------------------

    def _rewrite_expr(self, expr: Expr, prelude: List[Stmt]) -> Expr:
        """Replace remote reads with temporaries, appending the Receive
        calls that populate them to ``prelude``."""
        if isinstance(expr, Const):
            return expr
        if isinstance(expr, Ref):
            if self._is_remote(expr.variable):
                procs = self._procedures_for(expr.variable, Direction.READ)
                temp = self._make_temp(expr.variable)
                prelude.append(Call(procs.accessor, args=(), results=[temp]))
                return Ref(temp)
            return expr
        if isinstance(expr, Index):
            new_index = self._rewrite_expr(expr.index, prelude)
            if self._is_remote(expr.variable):
                procs = self._procedures_for(expr.variable, Direction.READ)
                temp = self._make_temp(expr.variable)
                prelude.append(Call(procs.accessor, args=[new_index],
                                    results=[temp]))
                return Ref(temp)
            if new_index is expr.index:
                return expr
            return Index(expr.variable, new_index)
        if isinstance(expr, BinOp):
            lhs = self._rewrite_expr(expr.lhs, prelude)
            rhs = self._rewrite_expr(expr.rhs, prelude)
            if lhs is expr.lhs and rhs is expr.rhs:
                return expr
            return BinOp(expr.op, lhs, rhs)
        if isinstance(expr, UnOp):
            operand = self._rewrite_expr(expr.operand, prelude)
            if operand is expr.operand:
                return expr
            return UnOp(expr.op, operand)
        raise RefinementError(f"cannot rewrite expression {expr!r}")

    # -- statements ----------------------------------------------------------

    def _rewrite_body(self, body: Sequence[Stmt]) -> List[Stmt]:
        out: List[Stmt] = []
        for stmt in body:
            out.extend(self._rewrite_stmt(stmt))
        return out

    def _rewrite_stmt(self, stmt: Stmt) -> List[Stmt]:
        if isinstance(stmt, Assign):
            return self._rewrite_assign(stmt)
        if isinstance(stmt, If):
            prelude: List[Stmt] = []
            cond = self._rewrite_expr(stmt.cond, prelude)
            return [*prelude, If(cond, self._rewrite_body(stmt.then_body),
                                 self._rewrite_body(stmt.else_body))]
        if isinstance(stmt, For):
            return [For(stmt.var, stmt.lo, stmt.hi,
                        self._rewrite_body(stmt.body))]
        if isinstance(stmt, While):
            prelude = []
            cond = self._rewrite_expr(stmt.cond, prelude)
            body = self._rewrite_body(stmt.body)
            if prelude:
                # The condition reads remote data: it must be re-fetched
                # before every test, so the receive calls run once before
                # the loop and again at the end of each iteration.
                return [*prelude,
                        While(cond, [*body, *prelude], stmt.trip_count)]
            return [While(cond, body, stmt.trip_count)]
        if isinstance(stmt, Call):
            # Already-refined call (from a previous bus's pass): its
            # argument expressions may still read variables remote over
            # *this* bus.
            prelude = []
            args = [self._rewrite_expr(a, prelude) for a in stmt.args]
            for result in stmt.results:
                if self._is_remote(result.variable):
                    raise RefinementError(
                        f"behavior {self.source.name}: procedure "
                        "result lands in a remote variable; unsupported"
                    )
            return [*prelude, Call(stmt.procedure, args, stmt.results)]
        if isinstance(stmt, (WaitClocks, Nop)):
            return [stmt]
        raise RefinementError(f"cannot rewrite statement {stmt!r}")

    def _rewrite_assign(self, stmt: Assign) -> List[Stmt]:
        prelude: List[Stmt] = []
        expr = self._rewrite_expr(stmt.expr, prelude)
        target = stmt.target
        if self._is_remote(target.variable):
            procs = self._procedures_for(target.variable, Direction.WRITE)
            args: List[Expr] = []
            if isinstance(target, ElementTarget):
                args.append(self._rewrite_expr(target.index, prelude))
            args.append(expr)
            return [*prelude, Call(procs.accessor, args=args)]
        new_target: Target = target
        if isinstance(target, ElementTarget):
            new_index = self._rewrite_expr(target.index, prelude)
            if new_index is not target.index:
                new_target = ElementTarget(target.variable, new_index)
        return [*prelude, Assign(new_target, expr)]


def _remote_map(behavior: Behavior, group: ChannelGroup,
                procedures: Dict[str, ChannelProcedures],
                ) -> Dict[Variable, Dict[Direction, ChannelProcedures]]:
    """Procedure lookup for one behavior's channels on one bus.

    Channels are matched by accessor *name* so that refinement passes
    can chain (the channel still references the original behavior while
    the body being rewritten may already be a refined copy).
    """
    remote: Dict[Variable, Dict[Direction, ChannelProcedures]] = {}
    for channel in group:
        if channel.accessor.name != behavior.name:
            continue
        per_direction = remote.setdefault(channel.variable, {})
        if channel.direction in per_direction:
            raise RefinementError(
                f"bus {group.name}: duplicate channel for "
                f"({behavior.name}, {channel.variable.name}, "
                f"{channel.direction})"
            )
        per_direction[channel.direction] = procedures[channel.name]
    return remote


# ---------------------------------------------------------------------------
# Top-level entry points
# ---------------------------------------------------------------------------

def generate_protocol(system: SystemSpec, group: ChannelGroup, width: int,
                      protocol: Protocol = FULL_HANDSHAKE,
                      bus_name: Optional[str] = None,
                      design: Optional[BusDesign] = None,
                      behaviors: Optional[Sequence[Behavior]] = None,
                      value_ranges: Optional[Dict[str, Tuple[int, int]]]
                      = None,
                      protection: ProtectionLike = None,
                      ) -> RefinedSpec:
    """Run protocol generation (steps 1-5) for one channel group.

    Parameters
    ----------
    system:
        The specification being refined.
    group:
        Channels to implement on this bus.
    width:
        Bus data-line count, usually ``BusDesign.width`` from bus
        generation, or a designer-specified width (Figure 3 fixes 8).
    protocol:
        Step 1's selection; defaults to the full handshake.
    bus_name:
        Name of the generated bus; defaults to the group name.
    design:
        Optional bus-generation result to attach for reporting.
    behaviors:
        Current behavior bodies (used when chaining multi-bus
        refinement); defaults to the system's behaviors.
    value_ranges:
        Optional statically proven data-value ranges per channel name
        (from :func:`repro.analysis.absint.analyze_refined_values`);
        proven ranges tighten the message data fields.
    protection:
        Fault-tolerance policy for the bus: ``None`` (the paper's plain
        protocol), a mode name (``"parity"``/``"crc8"``), a
        :class:`~repro.protocols.Protection`, or a full
        :class:`~repro.protocols.ProtectionPlan`.  Adds a check field
        to every message and a NACK/timeout/retry discipline to the
        generated procedures.
    """
    base_behaviors = list(behaviors) if behaviors is not None \
        else list(system.behaviors)
    bus_label = bus_name or group.name
    plan = as_protection_plan(protection)

    # Step 1: protocol selection.  The choice is the caller's (or the
    # full-handshake default); the span records which discipline this
    # bus will speak.
    with obs_span("protogen.step1_protocol_selection", bus=bus_label,
                  protocol=protocol.name, channels=len(group)):
        pass

    # Step 2: ID assignment.
    with obs_span("protogen.step2_id_assignment", bus=bus_label) as sp:
        ids = assign_ids(group)
        sp.set(id_bits=ids.width)

    # Step 3: bus structure plus procedures for every channel.
    with obs_span("protogen.step3_structure_and_procedures",
                  bus=bus_label, width=width) as sp:
        structure = make_structure(bus_label, group, width, protocol,
                                   ids=ids, protection=plan)
        procedures = {
            channel.name: make_procedures(
                channel, protocol,
                value_range=(value_ranges or {}).get(channel.name),
                protection=plan)
            for channel in group
        }
        sp.set(pins=structure.total_pins,
               tightened=sum(
                   1 for pair in procedures.values()
                   if pair.layout.proven_range is not None))

    # Step 4: rewrite every accessor behavior.
    with obs_span("protogen.step4_update_variable_references",
                  bus=bus_label) as sp:
        rewritten: List[Behavior] = []
        rewritten_names: List[str] = []
        for behavior in base_behaviors:
            remote = _remote_map(behavior, group, procedures)
            if remote:
                rewritten.append(
                    _BehaviorRewriter(behavior, remote).rewrite())
                rewritten_names.append(behavior.name)
            else:
                rewritten.append(behavior)
        sp.set(rewritten=len(rewritten_names))

    # Step 5: variable processes.
    with obs_span("protogen.step5_variable_processes",
                  bus=bus_label) as sp:
        variable_processes = make_variable_processes(procedures)
        sp.set(processes=len(variable_processes))

    bus = RefinedBus(structure=structure, procedures=procedures,
                     variable_processes=variable_processes, design=design)
    return RefinedSpec(
        name=f"{system.name}_refined",
        original=system,
        behaviors=rewritten,
        buses=[bus],
        rewritten=rewritten_names,
    )


BusPlan = Union[BusDesign, Tuple[ChannelGroup, int], Tuple[ChannelGroup, int, Protocol]]


def refine_system(system: SystemSpec, plans: Sequence[BusPlan],
                  protocol: Protocol = FULL_HANDSHAKE,
                  value_ranges: Optional[Dict[str, Tuple[int, int]]] = None,
                  protection: ProtectionLike = None,
                  ) -> RefinedSpec:
    """Refine a system with one or more buses.

    Each plan is a :class:`BusDesign` (group, width and protocol come
    from bus generation) or a ``(group, width[, protocol])`` tuple.
    ``value_ranges`` optionally maps channel names to proven data-value
    ranges, tightening message fields (see :func:`generate_protocol`).
    ``protection`` applies one fault-tolerance policy to every bus.
    """
    if not plans:
        raise RefinementError("refine_system needs at least one bus plan")
    behaviors: List[Behavior] = list(system.behaviors)
    buses: List[RefinedBus] = []
    rewritten_names: List[str] = []
    with obs_span("protogen.refine_system", system=system.name,
                  buses=len(plans)):
        return _refine_system_buses(system, plans, protocol, behaviors,
                                    buses, rewritten_names, value_ranges,
                                    as_protection_plan(protection))


def _refine_system_buses(system: SystemSpec, plans: Sequence[BusPlan],
                         protocol: Protocol, behaviors: List[Behavior],
                         buses: List[RefinedBus],
                         rewritten_names: List[str],
                         value_ranges: Optional[Dict[str, Tuple[int, int]]]
                         = None,
                         protection: Optional[ProtectionPlan] = None,
                         ) -> RefinedSpec:
    for plan in plans:
        if isinstance(plan, BusDesign):
            group, width, proto, design = (plan.group, plan.width,
                                           plan.protocol, plan)
        else:
            group, width = plan[0], plan[1]
            proto = plan[2] if len(plan) > 2 else protocol
            design = None
        partial = generate_protocol(
            system, group, width, proto,
            design=design, behaviors=behaviors,
            value_ranges=value_ranges,
            protection=protection,
        )
        behaviors = partial.behaviors
        buses.extend(partial.buses)
        for name in partial.rewritten:
            if name not in rewritten_names:
                rewritten_names.append(name)

    _check_unique_bus_names(buses)
    return RefinedSpec(
        name=f"{system.name}_refined",
        original=system,
        behaviors=behaviors,
        buses=buses,
        rewritten=rewritten_names,
    )


def _check_unique_bus_names(buses: Sequence[RefinedBus]) -> None:
    names = [bus.name for bus in buses]
    if len(set(names)) != len(names):
        raise RefinementError(f"duplicate bus names in refinement: {names}")


def remote_access_remains(spec: RefinedSpec) -> List[str]:
    """Diagnostics: names of behaviors still directly accessing a served
    variable.  Empty on a correct refinement (used by tests)."""
    served = set(spec.served_variables())
    offenders: List[str] = []
    for behavior in spec.behaviors:
        if behavior.global_variables() & served:
            offenders.append(behavior.name)
    return offenders
