"""Send/receive procedure synthesis (protocol generation step 3).

"For each channel mapped to the bus, appropriate send/receive procedures
are generated, encapsulating the sequence of assignments to the bus
control, data and ID lines to execute the data transfer."  Figure 4
shows the generated ``SendCH0``/``ReceiveCH0`` pair pushing a 16-bit
message through an 8-bit bus in two word transfers.

Message layout
--------------
A channel's message is ``address_bits + data_bits`` wide (address only
for array variables).  The address occupies the *low* bits so it crosses
the bus first -- Figure 4 slices messages low-word-first
(``8*J-1 downto 8*(J-1)`` for J = 1, 2) and a read's server must learn
the address before it can furnish data.

Who drives what:

* **write channel** (accessor stores into the variable): the accessor
  drives both address and data; the server latches.
* **read channel** (accessor fetches from the variable): the accessor
  drives the address portion; the *server* drives the data portion.
  Within one bus word the two portions may coexist on disjoint wires
  (an SRAM-style read: the accessor presents the address with START and
  the server answers on the data wires with DONE inside the same
  handshake), which is why a read of a 23-bit message over a 23-bit bus
  still completes in one protocol round -- matching the paper's Figure 7
  plateau at 23 pins for the *read* channel ch2 as well.

The procedures themselves are declarative :class:`CommProcedure`
objects: the VHDL backend renders them as procedures (Figure 4) and the
simulator executes them as coroutines (:mod:`repro.sim.bus`).  Keeping
them declarative is what makes the paper's retargeting claim real:
"if at a later stage another communication protocol is selected ... only
the bus declaration and send and receive procedures need be changed."
"""

from __future__ import annotations

import enum
from functools import cached_property
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.channels.channel import Channel
from repro.errors import ProtocolError
from repro.protocols import Protocol, ProtectionPlan


class Role(enum.Enum):
    """Which side of a channel a procedure runs on."""

    #: The process initiating transactions (sets ID and START).
    ACCESSOR = "accessor"
    #: The variable process responding to transactions.
    SERVER = "server"

    def __str__(self) -> str:
        return self.value


class FieldKind(enum.Enum):
    """Message field kinds."""

    ADDRESS = "addr"
    DATA = "data"
    #: Error-detecting check value (parity / CRC) of a protected bus.
    CHECK = "check"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class MessageField:
    """One field of a channel message."""

    kind: FieldKind
    bits: int
    #: Message bit offset of the field's LSB.
    offset: int
    #: Which side drives this field onto the bus.
    driver: Role

    @property
    def lo(self) -> int:
        return self.offset

    @property
    def hi(self) -> int:
        return self.offset + self.bits - 1


@dataclass(frozen=True)
class WordSlice:
    """The part of one message field carried by one bus word."""

    field: MessageField
    #: Range within the field (LSB-relative), inclusive.
    field_lo: int
    field_hi: int
    #: Bit offset within the bus word where this slice lands.
    word_offset: int

    @property
    def bits(self) -> int:
        return self.field_hi - self.field_lo + 1


@dataclass(frozen=True)
class WordSpec:
    """One bus word of a message transfer."""

    index: int
    #: Message bit range covered, inclusive.
    msg_lo: int
    msg_hi: int
    slices: Tuple[WordSlice, ...]

    @property
    def bits(self) -> int:
        return self.msg_hi - self.msg_lo + 1

    # cached_property writes straight to __dict__, which a frozen
    # dataclass permits; the simulator asks for the same role split on
    # every word of every transfer.
    @cached_property
    def _accessor_slices(self) -> Tuple[WordSlice, ...]:
        return tuple(s for s in self.slices
                     if s.field.driver is Role.ACCESSOR)

    @cached_property
    def _server_slices(self) -> Tuple[WordSlice, ...]:
        return tuple(s for s in self.slices if s.field.driver is Role.SERVER)

    def slices_driven_by(self, role: Role) -> Tuple[WordSlice, ...]:
        if role is Role.ACCESSOR:
            return self._accessor_slices
        if role is Role.SERVER:
            return self._server_slices
        return tuple(s for s in self.slices if s.field.driver is role)


class MessageLayout:
    """Field layout and word slicing of one channel's messages.

    ``data_bits`` overrides the declared data width when static analysis
    proved a tighter value range; ``proven_range`` records the interval
    justifying the override so the width checker can verify the field is
    still wide enough *for the values that actually flow* (proven P301
    instead of declared-size pattern matching)."""

    def __init__(self, channel: Channel, data_bits: Optional[int] = None,
                 proven_range: Optional[Tuple[int, int]] = None,
                 protection: Optional[ProtectionPlan] = None):
        self.channel = channel
        self.proven_range = proven_range
        self.protection = protection
        fields: List[MessageField] = []
        offset = 0
        if channel.address_bits:
            # Address always flows accessor -> server (it identifies the
            # element being read or written).
            fields.append(MessageField(
                kind=FieldKind.ADDRESS,
                bits=channel.address_bits,
                offset=offset,
                driver=Role.ACCESSOR,
            ))
            offset += channel.address_bits
        data_driver = Role.ACCESSOR if channel.is_write else Role.SERVER
        fields.append(MessageField(
            kind=FieldKind.DATA,
            bits=channel.data_bits if data_bits is None else data_bits,
            offset=offset,
            driver=data_driver,
        ))
        offset += fields[-1].bits
        if protection is not None:
            # The check rides above the payload, driven by whichever
            # side drives the data: the data sender is the only side
            # that knows the complete payload before the last word.
            # (On reads the server latched the address during the first
            # words, so it can fold it into the check; the accessor
            # verifies against the address it *sent*, catching address
            # corruption too.)
            fields.append(MessageField(
                kind=FieldKind.CHECK,
                bits=protection.protection.check_bits,
                offset=offset,
                driver=data_driver,
            ))
        self.fields: Tuple[MessageField, ...] = tuple(fields)
        self._words_cache: dict = {}

    @property
    def total_bits(self) -> int:
        return sum(f.bits for f in self.fields)

    def field(self, kind: FieldKind) -> Optional[MessageField]:
        for candidate in self.fields:
            if candidate.kind is kind:
                return candidate
        return None

    @property
    def has_address(self) -> bool:
        return self.field(FieldKind.ADDRESS) is not None

    def word_count(self, width: int) -> int:
        """Transfers needed on a ``width``-bit bus: ``ceil(bits/width)``."""
        if width < 1:
            raise ProtocolError(f"buswidth must be >= 1, got {width}")
        return math.ceil(self.total_bits / width)

    def words(self, width: int) -> List[WordSpec]:
        """Slice the message into bus words, LSB (address) first.

        The result is memoized per width (layouts are immutable and the
        simulator re-slices every transfer); treat it as read-only.
        """
        cached = self._words_cache.get(width)
        if cached is not None:
            return cached
        words: List[WordSpec] = []
        total = self.total_bits
        for index in range(self.word_count(width)):
            msg_lo = index * width
            msg_hi = min(msg_lo + width - 1, total - 1)
            slices: List[WordSlice] = []
            for field in self.fields:
                overlap_lo = max(msg_lo, field.lo)
                overlap_hi = min(msg_hi, field.hi)
                if overlap_lo > overlap_hi:
                    continue
                slices.append(WordSlice(
                    field=field,
                    field_lo=overlap_lo - field.lo,
                    field_hi=overlap_hi - field.lo,
                    word_offset=overlap_lo - msg_lo,
                ))
            words.append(WordSpec(
                index=index, msg_lo=msg_lo, msg_hi=msg_hi,
                slices=tuple(slices),
            ))
        self._words_cache[width] = words
        return words

    # ------------------------------------------------------------------
    # Message value packing (used by the simulator)
    # ------------------------------------------------------------------

    def pack(self, address: Optional[int], data: int) -> int:
        """Pack field values into a message integer.

        On a protected layout the CHECK field is filled in
        automatically from the packed payload."""
        message = 0
        for field in self.fields:
            if field.kind is FieldKind.ADDRESS:
                if address is None:
                    raise ProtocolError(
                        f"channel {self.channel.name}: message needs an "
                        "address"
                    )
                value = address
            elif field.kind is FieldKind.DATA:
                value = data
            else:
                continue        # CHECK: computed below, over the payload
            mask = (1 << field.bits) - 1
            message |= (value & mask) << field.offset
        check_field = self.field(FieldKind.CHECK)
        if check_field is not None and check_field.driver is Role.ACCESSOR:
            # Reads leave CHECK zero here: the field belongs to the
            # server, which computes it over the latched address plus
            # the returned data.
            check = self.compute_check(message)
            message |= check << check_field.offset
        return message

    def unpack(self, message: int) -> Tuple[Optional[int], int]:
        """Inverse of :meth:`pack`: returns ``(address_or_None, data)``.

        The CHECK field, if any, is *not* interpreted here; use
        :meth:`check_ok` to validate it."""
        address: Optional[int] = None
        data = 0
        for field in self.fields:
            mask = (1 << field.bits) - 1
            value = (message >> field.offset) & mask
            if field.kind is FieldKind.ADDRESS:
                address = value
            elif field.kind is FieldKind.DATA:
                data = value
        return address, data

    # ------------------------------------------------------------------
    # Protection checks
    # ------------------------------------------------------------------

    @property
    def payload_bits(self) -> int:
        """Bits of the message below the CHECK field."""
        return sum(f.bits for f in self.fields
                   if f.kind is not FieldKind.CHECK)

    def compute_check(self, message: int) -> int:
        """Check value the payload portion of ``message`` should carry."""
        if self.protection is None:
            raise ProtocolError(
                f"channel {self.channel.name}: layout has no protection"
            )
        payload_bits = self.payload_bits
        payload = message & ((1 << payload_bits) - 1)
        return self.protection.protection.compute(payload, payload_bits)

    def check_ok(self, message: int) -> bool:
        """True when the CHECK field matches the payload."""
        check_field = self.field(FieldKind.CHECK)
        if check_field is None:
            return True
        carried = (message >> check_field.offset) \
            & ((1 << check_field.bits) - 1)
        return carried == self.compute_check(message)


@dataclass(frozen=True)
class CommProcedure:
    """A generated send or receive procedure for one channel side.

    ``name`` follows the paper's convention: the *data direction* names
    the procedure.  A write channel's accessor calls ``SendCHx`` and its
    variable process calls ``ReceiveCHx``; a read channel's accessor
    calls ``ReceiveCHx`` (Figure 1: ``receive_ch1(PC, IR)``) while the
    variable process calls ``SendCHx`` (Figure 5: ``sendCH1(X)``).
    """

    name: str
    channel: Channel
    role: Role
    layout: MessageLayout
    protocol: Protocol

    @property
    def sends_data(self) -> bool:
        """True when this side drives the data field."""
        data_field = self.layout.field(FieldKind.DATA)
        assert data_field is not None
        return data_field.driver is self.role

    @property
    def takes_address(self) -> bool:
        """True when the caller must supply an element address
        (accessor side of an array channel)."""
        return self.layout.has_address and self.role is Role.ACCESSOR

    def parameter_names(self) -> List[str]:
        """Formal parameters in call order (for codegen and docs)."""
        params: List[str] = []
        if self.takes_address:
            params.append("addr")
        if self.role is Role.ACCESSOR:
            params.append("txdata" if self.sends_data else "rxdata")
        else:
            # Server procedures access the variable storage directly.
            params.append("storage")
        return params

    def transfer_clocks(self, width: int) -> int:
        """Clocks one invocation occupies the bus."""
        return self.protocol.message_clocks(self.layout.word_count(width))

    def __repr__(self) -> str:
        return (f"CommProcedure({self.name!r}, {self.role}, "
                f"channel={self.channel.name})")


@dataclass(frozen=True)
class ChannelProcedures:
    """The accessor/server procedure pair generated for one channel."""

    channel: Channel
    layout: MessageLayout
    accessor: CommProcedure
    server: CommProcedure


def _tightened_data_bits(channel: Channel,
                         value_range: Optional[Tuple[int, int]],
                         ) -> Optional[int]:
    """Data-field width justified by a proven value range, or ``None``.

    Only proven *non-negative* ranges tighten the field (negative values
    need the full two's-complement width), and only when they actually
    save bits.  The tightened field still round-trips through the type's
    decode: an unsigned value below ``2**bits`` keeps its sign bit clear.
    """
    if value_range is None:
        return None
    lo, hi = value_range
    if lo < 0 or hi < lo:
        return None
    needed = max(1, int(hi).bit_length())
    if needed >= channel.data_bits:
        return None
    return needed


def make_procedures(channel: Channel, protocol: Protocol,
                    value_range: Optional[Tuple[int, int]] = None,
                    protection: Optional[ProtectionPlan] = None,
                    ) -> ChannelProcedures:
    """Generate the procedure pair for one channel (step 3).

    ``value_range`` is an optional statically proven ``(lo, hi)`` bound
    on the data values crossing the channel; when it allows a narrower
    data field than the declared type, the message layout is tightened
    and carries the proof (``layout.proven_range``).  ``protection``
    appends a CHECK field to the layout (see
    :class:`~repro.protocols.ProtectionPlan`)."""
    tightened = _tightened_data_bits(channel, value_range)
    layout = MessageLayout(channel, data_bits=tightened,
                           proven_range=value_range
                           if tightened is not None else None,
                           protection=protection)
    suffix = channel.name.upper()
    if channel.is_write:
        accessor_name, server_name = f"Send{suffix}", f"Receive{suffix}"
    else:
        accessor_name, server_name = f"Receive{suffix}", f"Send{suffix}"
    accessor = CommProcedure(
        name=accessor_name, channel=channel, role=Role.ACCESSOR,
        layout=layout, protocol=protocol,
    )
    server = CommProcedure(
        name=server_name, channel=channel, role=Role.SERVER,
        layout=layout, protocol=protocol,
    )
    return ChannelProcedures(
        channel=channel, layout=layout, accessor=accessor, server=server,
    )
