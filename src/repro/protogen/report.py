"""Synthesis reports: the human-readable datasheet of a refined design.

Collects everything a designer reviews after interface synthesis --
channels and their IDs, the bus structure, generated procedures and
their controller sizes, per-process performance estimates and the
interface area -- into one plain-text report.  Used by the CLI's
``--report`` flag and handy in notebooks/tests.
"""

from __future__ import annotations

from typing import List, Optional

from repro.estimate.area import estimate_bus_area
from repro.estimate.perf import PerformanceEstimator
from repro.protogen.fsm import synthesize_fsm
from repro.protogen.refine import RefinedBus, RefinedSpec


def _rule(width: int = 72) -> str:
    return "-" * width


def bus_report(bus: RefinedBus,
               estimator: Optional[PerformanceEstimator] = None) -> str:
    """Report one generated bus."""
    estimator = estimator or PerformanceEstimator()
    structure = bus.structure
    group = bus.group
    lines: List[str] = []
    lines.append(_rule())
    lines.append(f"BUS {structure.name}")
    lines.append(_rule())
    lines.append(f"protocol        : {structure.protocol.name} "
                 f"({structure.protocol.delay_clocks} clk/word"
                 + (f", {structure.protocol.setup_clocks} clk setup"
                    if structure.protocol.setup_clocks else "") + ")")
    lines.append(f"wires           : {structure.width} data + "
                 f"{structure.id_lines} id + "
                 f"{len(structure.control_lines)} control "
                 f"({', '.join(structure.control_lines) or 'none'}) "
                 f"= {structure.total_pins} pins")
    if bus.design is not None:
        lines.append(f"bus rate        : {bus.design.bus_rate:g} bits/clock "
                     f"(demand {bus.design.demand:.3f})")
        lines.append(f"interconnect    : "
                     f"{bus.design.interconnect_reduction_percent:.0f}% "
                     f"reduction vs {bus.design.separate_pins} "
                     "separate pins")

    lines.append("")
    lines.append("channels:")
    header = (f"  {'name':<10} {'id':<4} {'direction':<18} "
              f"{'message':>8} {'accesses':>9} {'words':>6} "
              f"{'clk/msg':>8}")
    lines.append(header)
    lines.append("  " + _rule(len(header) - 2))
    for channel in group:
        pair = bus.procedures[channel.name]
        words = pair.layout.word_count(structure.width)
        code = structure.ids.code_bits(channel.name) or "-"
        arrow = (f"{channel.accessor.name} "
                 f"{'>' if channel.is_write else '<'} "
                 f"{channel.variable.name}")
        lines.append(
            f"  {channel.name:<10} {code:<4} {arrow:<18} "
            f"{channel.message_bits:>8} {channel.accesses:>9} "
            f"{words:>6} {pair.accessor.transfer_clocks(structure.width):>8}"
        )

    lines.append("")
    lines.append("generated procedures (controller FSM states):")
    for channel in group:
        pair = bus.procedures[channel.name]
        accessor_fsm = synthesize_fsm(pair.accessor, structure)
        server_fsm = synthesize_fsm(pair.server, structure)
        lines.append(
            f"  {channel.name}: {pair.accessor.name} "
            f"({accessor_fsm.state_count} states) / {pair.server.name} "
            f"({server_fsm.state_count} states)"
        )

    lines.append("")
    lines.append("variable processes:")
    for vproc in bus.variable_processes:
        served = ", ".join(s.channel.name for s in vproc.services)
        lines.append(f"  {vproc.name}: serves [{served}]")

    area = estimate_bus_area(bus)
    lines.append("")
    lines.append(f"interface area  : {area.wires} wires, "
                 f"{area.controller_gates} controller gates + "
                 f"{area.decoder_gates} decoder gates = "
                 f"{area.total_gates} gate-equivalents")
    return "\n".join(lines)


def performance_report(spec: RefinedSpec,
                       estimator: Optional[PerformanceEstimator] = None,
                       ) -> str:
    """Per-process execution estimates across all of the spec's buses."""
    estimator = estimator or PerformanceEstimator()
    lines = [_rule(), "PROCESS PERFORMANCE (estimated)", _rule()]
    all_channels = [c for bus in spec.buses for c in bus.group]
    header = (f"  {'process':<16} {'comp clk':>9} {'comm clk':>9} "
              f"{'total':>9}")
    lines.append(header)
    lines.append("  " + _rule(len(header) - 2))
    for behavior in spec.original.behaviors:
        comp = estimator.comp_clocks(behavior, all_channels)
        comm = 0
        for bus in spec.buses:
            comm += estimator.comm_clocks(
                behavior, bus.group.channels, bus.structure.width,
                bus.structure.protocol)
        if comm == 0 and comp == 0:
            continue
        lines.append(f"  {behavior.name:<16} {comp:>9} {comm:>9} "
                     f"{comp + comm:>9}")
    return "\n".join(lines)


def synthesis_report(spec: RefinedSpec) -> str:
    """The full datasheet of a refined specification."""
    estimator = PerformanceEstimator()
    parts = [
        _rule(),
        f"INTERFACE SYNTHESIS REPORT -- {spec.name}",
        f"system: {spec.original.name} "
        f"({len(spec.original.behaviors)} behaviors, "
        f"{len(spec.original.variables)} shared variables)",
    ]
    for bus in spec.buses:
        parts.append("")
        parts.append(bus_report(bus, estimator))
    parts.append("")
    parts.append(performance_report(spec, estimator))
    parts.append(_rule())
    return "\n".join(parts)
