"""Variable-process generation (protocol generation step 5).

"In order to obtain a simulatable system specification, a separate
behavior is created for each group of variables accessed over a channel.
Appropriate send and receive procedure calls are included in the
behavior to respond to access requests to the variable over the bus."

Figure 5 shows the generated ``Xproc`` and ``MEMproc``: each loops
forever waiting on the bus ID lines, dispatching to the server-side
procedure of whichever of its channels the current ID addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.channels.channel import Channel
from repro.errors import RefinementError
from repro.protogen.procedures import ChannelProcedures
from repro.spec.variable import Variable


@dataclass(frozen=True)
class VariableProcess:
    """A generated server behavior for one shared variable.

    ``services`` lists, in ID order, the channels this process answers
    and the procedure pair of each; the process body is conceptually

    .. code-block:: text

        loop
            wait on B.ID / B.START;
            case B.ID is
                when <id of ch_i> => <server procedure of ch_i>(storage);
            end case;
        end loop;
    """

    name: str
    variable: Variable
    services: Tuple[ChannelProcedures, ...]

    def channels(self) -> List[Channel]:
        return [s.channel for s in self.services]

    def service_for(self, channel_name: str) -> ChannelProcedures:
        for service in self.services:
            if service.channel.name == channel_name:
                return service
        raise RefinementError(
            f"variable process {self.name} does not serve channel "
            f"{channel_name!r}"
        )

    def describe(self) -> str:
        served = ", ".join(
            f"{s.channel.name}:{s.server.name}" for s in self.services
        )
        return f"process {self.name} serves [{served}]"


def make_variable_processes(
        procedures: Dict[str, ChannelProcedures]) -> List[VariableProcess]:
    """Create one variable process per variable appearing in a bus's
    channels, preserving channel order within each process."""
    by_variable: Dict[Variable, List[ChannelProcedures]] = {}
    order: List[Variable] = []
    for channel_procs in procedures.values():
        variable = channel_procs.channel.variable
        if variable not in by_variable:
            by_variable[variable] = []
            order.append(variable)
        by_variable[variable].append(channel_procs)

    processes: List[VariableProcess] = []
    for variable in order:
        processes.append(VariableProcess(
            name=f"{variable.name}proc",
            variable=variable,
            services=tuple(by_variable[variable]),
        ))
    return processes
