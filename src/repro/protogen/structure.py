"""Bus structure definition (protocol generation step 3).

"A bus consists of three sets of wires: (1) Data lines ... (2) Control
lines ... (3) Identification or mode lines" (Section 4).  A
:class:`BusStructure` captures all three for one generated bus: the
Figure 4 record

.. code-block:: vhdl

    type HandShakeBus is record
        START, DONE : bit;
        ID   : bit_vector(1 downto 0);
        DATA : bit_vector(7 downto 0);
    end record;

is an 8-bit full-handshake bus with 2 ID lines -- ``BusStructure`` with
``width=8``, ``protocol=FULL_HANDSHAKE`` and a 4-channel ID assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.channels.group import ChannelGroup
from repro.errors import ProtocolError
from repro.protogen.idassign import IdAssignment, assign_ids
from repro.protocols import Protocol, ProtectionPlan


@dataclass(frozen=True)
class BusStructure:
    """The physical structure of one generated bus."""

    name: str
    group: ChannelGroup
    width: int
    protocol: Protocol
    ids: IdAssignment
    #: Fault-tolerance policy; ``None`` keeps the paper's plain bus.
    protection: Optional[ProtectionPlan] = None

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ProtocolError(
                f"bus {self.name}: width must be >= 1, got {self.width}"
            )
        if not self.protocol.shareable and len(self.group) > 1:
            raise ProtocolError(
                f"bus {self.name}: protocol {self.protocol.name} cannot be "
                f"shared by {len(self.group)} channels"
            )
        if not self.protocol.shareable and self.width < self.group.max_message_bits:
            raise ProtocolError(
                f"bus {self.name}: hardwired ports need the full message "
                f"width ({self.group.max_message_bits} bits), got {self.width}"
            )
        if self.protection is not None:
            if self.protocol.name != "full_handshake":
                raise ProtocolError(
                    f"bus {self.name}: protection "
                    f"({self.protection.protection.name}) requires the "
                    f"full_handshake protocol; {self.protocol.name} has "
                    "no per-word acknowledge to carry a NACK"
                )
            if self.protection.nack_line in self.protocol.control_lines:
                raise ProtocolError(
                    f"bus {self.name}: NACK line "
                    f"{self.protection.nack_line!r} collides with a "
                    "protocol control line"
                )

    # ------------------------------------------------------------------
    # Wire inventory
    # ------------------------------------------------------------------

    @property
    def data_lines(self) -> int:
        return self.width

    @property
    def id_lines(self) -> int:
        """ID lines; dedicated (single-channel, non-shareable) buses have
        none even for N == 1 because ``clog2(1) == 0``."""
        return self.ids.width

    @property
    def control_lines(self) -> List[str]:
        lines = list(self.protocol.control_lines)
        if self.protection is not None:
            lines.append(self.protection.nack_line)
        return lines

    @property
    def total_pins(self) -> int:
        """Every wire crossing the module boundary."""
        return self.data_lines + self.id_lines + len(self.control_lines)

    @property
    def record_type_name(self) -> str:
        """Name of the generated record type (Figure 4 calls the full
        handshake one ``HandShakeBus``)."""
        camel = "".join(part.capitalize()
                        for part in self.protocol.name.split("_"))
        return f"{camel}Bus"

    def describe(self) -> str:
        controls = ", ".join(self.control_lines) or "none"
        text = (f"bus {self.name}: {self.width} data + {self.id_lines} id + "
                f"{len(self.control_lines)} control ({controls}) = "
                f"{self.total_pins} pins, protocol {self.protocol.name}")
        if self.protection is not None:
            text += f", protection {self.protection}"
        return text


def make_structure(name: str, group: ChannelGroup, width: int,
                   protocol: Protocol,
                   ids: Optional[IdAssignment] = None,
                   protection: Optional[ProtectionPlan] = None,
                   ) -> BusStructure:
    """Build the bus structure for a group at a selected width.

    ``ids`` accepts a precomputed assignment (protocol generation runs
    step 2 separately so the step is individually traceable); the
    default recomputes it here.
    """
    return BusStructure(
        name=name, group=group, width=width, protocol=protocol,
        ids=ids if ids is not None else assign_ids(group),
        protection=protection,
    )
