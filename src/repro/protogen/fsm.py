"""Protocol controller FSM synthesis.

The send/receive procedures of Section 4 are, in hardware, little
finite-state machines driving and sampling the bus wires -- the same
view the transducer-synthesis work the paper cites ([5], [6], [7])
takes.  This module makes those controllers explicit: given a generated
:class:`~repro.protogen.procedures.CommProcedure` and the bus structure,
:func:`synthesize_fsm` produces a Moore-style FSM whose

* **states** carry the signal actions (drive a word slice, raise START,
  latch DATA into a message register),
* **transitions** carry wire guards (``DONE = '1'``, a strobe edge) or
  fire unconditionally on the next clock.

Uses:

* the area estimator's state counts come from here (one source of
  truth with the simulator's timing: a full-handshake word is exactly
  two states, matching its two clocks),
* controllers export as Graphviz DOT or a text table for inspection
  and documentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import ProtocolError
from repro.protogen.procedures import CommProcedure, Role, WordSpec
from repro.protogen.structure import BusStructure


@dataclass(frozen=True)
class FsmState:
    """One controller state with its output actions."""

    name: str
    #: Human-readable signal actions performed in this state.
    actions: Tuple[str, ...] = ()
    is_initial: bool = False
    is_final: bool = False


@dataclass(frozen=True)
class FsmTransition:
    """A guarded transition; ``guard`` is None for plain clock ticks."""

    source: str
    target: str
    guard: Optional[str] = None
    #: True on retransmission back-edges (RETRY/VERIFY -> first word
    #: request).  The temporal verifier's finite counter abstraction
    #: budgets exactly these edges with the protection plan's retry
    #: allowance; synthesis never sets it on anything else.
    is_retry: bool = False

    def label(self) -> str:
        return self.guard if self.guard else "tick"


@dataclass
class ProtocolFsm:
    """A synthesized protocol controller.

    ``channel_name``, ``bus_name`` and ``protocol_name`` record where
    the controller came from; the static analyzer
    (:mod:`repro.analysis`) uses them to attach source locations to
    diagnostics.  They are presentation metadata only -- synthesis and
    simulation never read them.
    """

    name: str
    role: Role
    states: List[FsmState] = field(default_factory=list)
    transitions: List[FsmTransition] = field(default_factory=list)
    #: Channel this controller serves (None for hand-built FSMs).
    channel_name: Optional[str] = None
    #: Bus the controller drives (None for hand-built FSMs).
    bus_name: Optional[str] = None
    #: Protocol discipline the controller implements.
    protocol_name: Optional[str] = None

    @property
    def state_count(self) -> int:
        return len(self.states)

    def state(self, name: str) -> FsmState:
        for state in self.states:
            if state.name == name:
                return state
        raise ProtocolError(f"FSM {self.name} has no state {name!r}")

    def initial_state(self) -> FsmState:
        for state in self.states:
            if state.is_initial:
                return state
        raise ProtocolError(f"FSM {self.name} has no initial state")

    def successors(self, name: str) -> List[FsmTransition]:
        return [t for t in self.transitions if t.source == name]

    def final_states(self) -> List[FsmState]:
        return [s for s in self.states if s.is_final]

    def describe_origin(self) -> str:
        """Provenance string for diagnostics (``bus B / channel ch1``)."""
        parts = []
        if self.bus_name:
            parts.append(f"bus {self.bus_name}")
        if self.channel_name:
            parts.append(f"channel {self.channel_name}")
        parts.append(f"fsm {self.name}")
        return " / ".join(parts)

    def validate(self) -> None:
        """Well-formedness: unique names, endpoints exist, every
        non-final state has a way out, all states reachable."""
        names = [s.name for s in self.states]
        if len(set(names)) != len(names):
            raise ProtocolError(f"FSM {self.name}: duplicate state names")
        known = set(names)
        for transition in self.transitions:
            if transition.source not in known:
                raise ProtocolError(
                    f"FSM {self.name}: transition from unknown state "
                    f"{transition.source!r}")
            if transition.target not in known:
                raise ProtocolError(
                    f"FSM {self.name}: transition to unknown state "
                    f"{transition.target!r}")
        for state in self.states:
            if not state.is_final and not self.successors(state.name):
                raise ProtocolError(
                    f"FSM {self.name}: state {state.name} is a dead end")
        # Reachability from the initial state.
        frontier = [self.initial_state().name]
        reached = set(frontier)
        while frontier:
            current = frontier.pop()
            for transition in self.successors(current):
                if transition.target not in reached:
                    reached.add(transition.target)
                    frontier.append(transition.target)
        unreachable = known - reached
        if unreachable:
            raise ProtocolError(
                f"FSM {self.name}: unreachable states {sorted(unreachable)}")

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def to_dot(self) -> str:
        """Graphviz DOT rendering."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for state in self.states:
            shape = "doublecircle" if state.is_final else "circle"
            label = state.name
            if state.actions:
                label += "\\n" + "\\n".join(state.actions)
            peripheries = ' style="bold"' if state.is_initial else ""
            lines.append(
                f'  "{state.name}" [shape={shape} label="{label}"'
                f'{peripheries}];')
        for transition in self.transitions:
            lines.append(
                f'  "{transition.source}" -> "{transition.target}" '
                f'[label="{transition.label()}"];')
        lines.append("}")
        return "\n".join(lines)

    def to_table(self) -> str:
        """Plain-text state table."""
        lines = [f"FSM {self.name} ({self.role}, "
                 f"{self.state_count} states)"]
        for state in self.states:
            marks = ""
            if state.is_initial:
                marks += " <initial>"
            if state.is_final:
                marks += " <final>"
            lines.append(f"  {state.name}{marks}")
            for action in state.actions:
                lines.append(f"      do   {action}")
            for transition in self.successors(state.name):
                lines.append(
                    f"      on   {transition.label()} -> "
                    f"{transition.target}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------

def _slice_actions(procedure: CommProcedure, word: WordSpec,
                   drive: bool) -> List[str]:
    """Signal actions for one word's slices, from this role's side."""
    actions: List[str] = []
    for word_slice in word.slices:
        mine = word_slice.field.driver is procedure.role
        hi = word_slice.word_offset + word_slice.bits - 1
        lo = word_slice.word_offset
        span = f"DATA({hi}:{lo})"
        field_name = str(word_slice.field.kind)
        if drive and mine:
            actions.append(f"drive {span} <= {field_name}")
        elif not drive and not mine:
            actions.append(f"latch {field_name} <= {span}")
    return actions


def synthesize_fsm(procedure: CommProcedure,
                   structure: BusStructure) -> ProtocolFsm:
    """Build the controller FSM of one generated procedure."""
    protocol = structure.protocol
    words = procedure.layout.words(structure.width)
    fsm = ProtocolFsm(name=procedure.name, role=procedure.role,
                      channel_name=procedure.channel.name,
                      bus_name=structure.name,
                      protocol_name=protocol.name)
    id_bits = structure.ids.code_bits(procedure.channel.name)
    id_guard = f'ID = "{id_bits}"' if id_bits else None

    if protocol.name == "full_handshake":
        _synth_handshake(fsm, procedure, words, id_guard,
                         protection=structure.protection)
    elif protocol.name == "burst_handshake":
        _synth_burst(fsm, procedure, words, id_guard)
    elif protocol.name in ("half_handshake", "fixed_delay", "hardwired"):
        _synth_strobed(fsm, procedure, words, id_guard,
                       has_req=("REQ" in protocol.control_lines))
    else:
        raise ProtocolError(
            f"no FSM synthesis for protocol {protocol.name!r}")

    fsm.validate()
    return fsm


def _synth_handshake(fsm: ProtocolFsm, procedure: CommProcedure,
                     words: List[WordSpec],
                     id_guard: Optional[str],
                     protection=None) -> None:
    """Two states per word: assert+wait-ack, then deassert+wait-idle.

    With ``protection`` (a :class:`~repro.protocols.ProtectionPlan`)
    the controller grows the NACK/retry discipline: a write accessor
    samples the NACK line with the final acknowledge and loops back
    through a RETRY state; a read accessor passes through a VERIFY
    state whose check-field comparison nondeterministically accepts or
    retransmits; a write server splits its final serve state into an
    accept and a NACK variant.
    """
    accessor = procedure.role is Role.ACCESSOR
    last = len(words) - 1
    is_write = procedure.channel.is_write
    nack = protection.nack_line if protection is not None else None
    if accessor:
        fsm.states.append(FsmState("IDLE", is_initial=True, is_final=True))
        fsm.transitions.append(FsmTransition("IDLE", "W0_REQ",
                                             guard="invoke"))
        for k, word in enumerate(words):
            request_actions = _slice_actions(procedure, word, drive=True)
            if k == 0 and id_guard:
                request_actions.insert(0, f'drive {id_guard}')
            request_actions.append("START <= '1'")
            fsm.states.append(FsmState(f"W{k}_REQ",
                                       actions=tuple(request_actions)))
            ack_actions = _slice_actions(procedure, word, drive=False)
            ack_actions.append("START <= '0'")
            fsm.states.append(FsmState(f"W{k}_ACK",
                                       actions=tuple(ack_actions)))
            if nack is not None and is_write and k == last:
                fsm.transitions.append(FsmTransition(
                    f"W{k}_REQ", f"W{k}_ACK",
                    guard=f"DONE = '1' and {nack} = '0'"))
                fsm.transitions.append(FsmTransition(
                    f"W{k}_REQ", "RETRY",
                    guard=f"DONE = '1' and {nack} = '1'"))
            else:
                fsm.transitions.append(FsmTransition(
                    f"W{k}_REQ", f"W{k}_ACK", guard="DONE = '1'"))
            if k == last:
                target = "VERIFY" if nack is not None and not is_write \
                    else "IDLE"
            else:
                target = f"W{k + 1}_REQ"
            fsm.transitions.append(FsmTransition(
                f"W{k}_ACK", target, guard="DONE = '0'"))
        if nack is not None and is_write:
            fsm.states.append(FsmState("RETRY", actions=("START <= '0'",)))
            fsm.transitions.append(FsmTransition("RETRY", "W0_REQ",
                                                 guard="DONE = '0'",
                                                 is_retry=True))
        if nack is not None and not is_write:
            # The check-field comparison is internal, so the two exits
            # are nondeterministic ticks at this abstraction level.
            fsm.states.append(FsmState("VERIFY"))
            fsm.transitions.append(FsmTransition("VERIFY", "IDLE"))
            fsm.transitions.append(FsmTransition("VERIFY", "W0_REQ",
                                                 is_retry=True))
    else:
        fsm.states.append(FsmState("WAIT", is_initial=True, is_final=True))
        guard = "START = '1'"
        if id_guard:
            guard += f" and {id_guard}"
        #: Transitions entering the next word's serve state(s).
        entries = [("WAIT", guard)]
        for k, word in enumerate(words):
            serve_actions = _slice_actions(procedure, word, drive=False)
            serve_actions += _slice_actions(procedure, word, drive=True)
            split = nack is not None and is_write and k == last
            if split:
                fsm.states.append(FsmState(
                    f"W{k}_SRV",
                    actions=tuple(serve_actions
                                  + ["DONE <= '1'", f"{nack} <= '0'"])))
                fsm.states.append(FsmState(
                    f"W{k}_NAK",
                    actions=tuple(serve_actions
                                  + ["DONE <= '1'", f"{nack} <= '1'"])))
            else:
                fsm.states.append(FsmState(
                    f"W{k}_SRV",
                    actions=tuple(serve_actions + ["DONE <= '1'"])))
            for source, entry_guard in entries:
                fsm.transitions.append(FsmTransition(
                    source, f"W{k}_SRV", guard=entry_guard))
                if split:
                    # Same guard both ways: accept vs NACK is decided
                    # by the internal check comparison.
                    fsm.transitions.append(FsmTransition(
                        source, f"W{k}_NAK", guard=entry_guard))
            drop_actions = ("DONE <= '0'", f"{nack} <= '0'") if split \
                else ("DONE <= '0'",)
            fsm.states.append(FsmState(f"W{k}_DROP", actions=drop_actions))
            fsm.transitions.append(FsmTransition(
                f"W{k}_SRV", f"W{k}_DROP", guard="START = '0'"))
            if split:
                fsm.transitions.append(FsmTransition(
                    f"W{k}_NAK", f"W{k}_DROP", guard="START = '0'"))
            if k == last:
                fsm.transitions.append(FsmTransition(f"W{k}_DROP", "WAIT"))
            else:
                entries = [(f"W{k}_DROP", guard)]


def _synth_strobed(fsm: ProtocolFsm, procedure: CommProcedure,
                   words: List[WordSpec], id_guard: Optional[str],
                   has_req: bool) -> None:
    """One state per word; the strobe (REQ toggle or schedule tick)
    advances."""
    accessor = procedure.role is Role.ACCESSOR
    strobe = "REQ toggle" if has_req else "schedule tick"
    idle_name = "IDLE" if accessor else "WAIT"
    fsm.states.append(FsmState(idle_name, is_initial=True, is_final=True))
    first_guard = "invoke" if accessor else _strobed_guard(strobe, id_guard)
    fsm.transitions.append(FsmTransition(idle_name, "W0", guard=first_guard))
    last = len(words) - 1
    for k, word in enumerate(words):
        actions = _slice_actions(procedure, word, drive=True) + \
            _slice_actions(procedure, word, drive=False)
        if accessor:
            if k == 0 and id_guard:
                actions.insert(0, f"drive {id_guard}")
            actions.append(strobe)
        fsm.states.append(FsmState(f"W{k}", actions=tuple(actions)))
        target = idle_name if k == last else f"W{k + 1}"
        guard = None if accessor else _strobed_guard(strobe, None)
        if k == last:
            fsm.transitions.append(FsmTransition(f"W{k}", target,
                                                 guard=None))
        else:
            fsm.transitions.append(FsmTransition(f"W{k}", target,
                                                 guard=guard))


def _strobed_guard(strobe: str, id_guard: Optional[str]) -> str:
    guard = strobe
    if id_guard:
        guard += f" and {id_guard}"
    return guard


def _synth_burst(fsm: ProtocolFsm, procedure: CommProcedure,
                 words: List[WordSpec], id_guard: Optional[str]) -> None:
    """Grant handshake, streamed words, release."""
    accessor = procedure.role is Role.ACCESSOR
    last = len(words) - 1
    if accessor:
        fsm.states.append(FsmState("IDLE", is_initial=True, is_final=True))
        grant_actions = ["START <= '1'"]
        if id_guard:
            grant_actions.insert(0, f"drive {id_guard}")
        fsm.states.append(FsmState("GRANT", actions=tuple(grant_actions)))
        fsm.transitions.append(FsmTransition("IDLE", "GRANT",
                                             guard="invoke"))
        fsm.transitions.append(FsmTransition("GRANT", "W0",
                                             guard="DONE = '1'"))
        for k, word in enumerate(words):
            actions = _slice_actions(procedure, word, drive=True) + \
                _slice_actions(procedure, word, drive=False)
            actions.append("strobe")
            fsm.states.append(FsmState(f"W{k}", actions=tuple(actions)))
            target = "RELEASE" if k == last else f"W{k + 1}"
            fsm.transitions.append(FsmTransition(f"W{k}", target))
        fsm.states.append(FsmState("RELEASE", actions=("START <= '0'",)))
        fsm.transitions.append(FsmTransition("RELEASE", "IDLE",
                                             guard="DONE = '0'"))
    else:
        fsm.states.append(FsmState("WAIT", is_initial=True, is_final=True))
        guard = "START = '1'"
        if id_guard:
            guard += f" and {id_guard}"
        fsm.states.append(FsmState("GRANT", actions=("DONE <= '1'",)))
        fsm.transitions.append(FsmTransition("WAIT", "GRANT", guard=guard))
        fsm.transitions.append(FsmTransition("GRANT", "W0",
                                             guard="strobe"))
        for k, word in enumerate(words):
            actions = _slice_actions(procedure, word, drive=False) + \
                _slice_actions(procedure, word, drive=True)
            fsm.states.append(FsmState(f"W{k}", actions=tuple(actions)))
            target = "RELEASE" if k == last else f"W{k + 1}"
            fsm.transitions.append(FsmTransition(
                f"W{k}", target,
                guard=None if k == last else "strobe"))
        fsm.states.append(FsmState(
            "RELEASE", actions=("DONE <= '0'", "commit/None")))
        fsm.transitions.append(FsmTransition("RELEASE", "WAIT",
                                             guard="START = '0'"))


def fsm_state_count(procedure: CommProcedure,
                    structure: BusStructure) -> int:
    """State count of the synthesized controller (area model input)."""
    return synthesize_fsm(procedure, structure).state_count
