"""Protocol generation (Section 4 of the paper): the five-step
refinement producing a simulatable bus-based specification.
See DESIGN.md section 3."""

from repro.protocols import (
    BURST_HANDSHAKE,
    FIXED_DELAY,
    FULL_HANDSHAKE,
    HALF_HANDSHAKE,
    HARDWIRED,
    PROTOCOLS,
    Protocol,
    get_protocol,
)
from repro.protogen.fsm import (
    FsmState,
    FsmTransition,
    ProtocolFsm,
    synthesize_fsm,
)
from repro.protogen.idassign import IdAssignment, assign_ids
from repro.protogen.procedures import (
    ChannelProcedures,
    CommProcedure,
    FieldKind,
    MessageField,
    MessageLayout,
    Role,
    WordSlice,
    WordSpec,
    make_procedures,
)
from repro.protogen.report import (
    bus_report,
    performance_report,
    synthesis_report,
)
from repro.protogen.refine import (
    RefinedBus,
    RefinedSpec,
    generate_protocol,
    refine_system,
    remote_access_remains,
)
from repro.protogen.structure import BusStructure, make_structure
from repro.protogen.varproc import VariableProcess, make_variable_processes

__all__ = [
    "BURST_HANDSHAKE",
    "BusStructure",
    "ChannelProcedures",
    "CommProcedure",
    "FIXED_DELAY",
    "FULL_HANDSHAKE",
    "FieldKind",
    "FsmState",
    "FsmTransition",
    "HALF_HANDSHAKE",
    "HARDWIRED",
    "IdAssignment",
    "MessageField",
    "MessageLayout",
    "PROTOCOLS",
    "Protocol",
    "ProtocolFsm",
    "RefinedBus",
    "RefinedSpec",
    "Role",
    "VariableProcess",
    "WordSlice",
    "WordSpec",
    "assign_ids",
    "generate_protocol",
    "get_protocol",
    "make_procedures",
    "make_structure",
    "make_variable_processes",
    "bus_report",
    "performance_report",
    "refine_system",
    "remote_access_remains",
    "synthesis_report",
    "synthesize_fsm",
]
