"""Channel ID assignment (protocol generation step 2).

"If there are N channels implemented on the same bus, log2(N) lines will
be required to encode the channel ID.  Unique IDs are assigned to each
channel."  Figure 3's four channels get 2 ID lines with CH0 = "00",
CH1 = "01", CH2 = "10", CH3 = "11".

IDs identify *which channel* owns the bus during a transaction, letting
every behavior recognize when the shared control lines are meant for it.
A single-channel bus needs no ID lines (``clog2(1) == 0``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.channels.group import ChannelGroup
from repro.errors import IdAssignmentError
from repro.spec.types import clog2


@dataclass(frozen=True)
class IdAssignment:
    """Unique binary codes for every channel of a group."""

    #: ID bus width in bits: ``clog2(number of channels)``.
    width: int
    #: Channel name -> integer code.
    codes: Dict[str, int] = field(default_factory=dict)

    def code(self, channel_name: str) -> int:
        try:
            return self.codes[channel_name]
        except KeyError:
            raise IdAssignmentError(
                f"no ID assigned to channel {channel_name!r}"
            ) from None

    def code_bits(self, channel_name: str) -> str:
        """The code as a zero-padded binary string ('00', '01', ...)."""
        if self.width == 0:
            return ""
        return format(self.code(channel_name), f"0{self.width}b")

    def channel_for(self, code: int) -> str:
        """Inverse lookup: which channel owns a code."""
        for name, assigned in self.codes.items():
            if assigned == code:
                return name
        raise IdAssignmentError(f"no channel has ID code {code}")

    def validate(self) -> None:
        values = list(self.codes.values())
        if len(set(values)) != len(values):
            raise IdAssignmentError("duplicate channel ID codes")
        limit = 1 << self.width
        for name, code in self.codes.items():
            if not 0 <= code < limit:
                raise IdAssignmentError(
                    f"channel {name}: code {code} does not fit in "
                    f"{self.width} ID bits"
                )


def assign_ids(group: ChannelGroup) -> IdAssignment:
    """Assign sequential codes in the group's channel order.

    Deterministic: the first channel gets 0, the second 1, and so on,
    exactly as in Figure 3.
    """
    width = clog2(len(group.channels))
    codes = {channel.name: index
             for index, channel in enumerate(group.channels)}
    assignment = IdAssignment(width=width, codes=codes)
    assignment.validate()
    return assignment
