"""Loadable systems for the explorer (and the CLI front end).

One place that turns a system argument -- ``flc``,
``answering-machine``, ``ethernet``, a ``.spec`` file path, or the
test-sized ``_demo`` system -- into the tuple every pipeline stage
needs: the spec, its channel groups, the canonical schedule and the
oracle values (when the system has reference outputs).

Worker processes call :func:`load_system` once per grid point;
:func:`cached_load` memoizes the built models per process so a sweep
of hundreds of points over one system pays the build cost once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.errors import ExploreError


@dataclass
class LoadedSystem:
    """A system ready for the pipeline stages."""

    arg: str
    system: Any
    groups: List[Any]
    schedule: Optional[Sequence[Any]]
    oracle: Optional[Dict[str, Any]]


def build_demo():
    """A deliberately tiny two-behavior system (the paper's Figure 3
    shape) for fast explorer tests and the defect-scenario corpus."""
    from repro.partition.channels import default_bus_groups, extract_channels
    from repro.partition.partitioner import Partition
    from repro.spec.behavior import Behavior
    from repro.spec.expr import Ref
    from repro.spec.stmt import Assign
    from repro.spec.system import SystemSpec
    from repro.spec.types import ArrayType, IntType
    from repro.spec.variable import Variable

    X = Variable("X", IntType(16))
    MEM = Variable("MEM", ArrayType(IntType(16), 64))
    AD = Variable("AD", IntType(16), init=5)
    COUNT = Variable("COUNT", IntType(16), init=42)
    Xt = Variable("Xt", IntType(16))

    P = Behavior("P", [
        Assign(X, 32),
        Assign(Xt, Ref(X)),
        Assign((MEM, Ref(AD)), Ref(Xt) + 7),
    ], local_variables=[AD, Xt])
    Q = Behavior("Q", [
        Assign((MEM, 60), Ref(COUNT)),
    ], local_variables=[COUNT])

    system = SystemSpec("demo", [P, Q], [X, MEM])
    partition = Partition(system)
    module1 = partition.add_module("module1")
    module2 = partition.add_module("module2")
    partition.assign(P, module1)
    partition.assign(Q, module1)
    partition.assign(X, module2)
    partition.assign(MEM, module2)
    partition.validate()
    channels = extract_channels(partition)
    groups = default_bus_groups(partition, channels=channels)
    return system, groups, ["P", "Q"], {"X": 32}


def load_system(name: str,
                on_note: Optional[Callable[[str], None]] = None
                ) -> LoadedSystem:
    """Load a system by name or ``.spec`` path.

    ``on_note`` receives informational messages (e.g. automatic
    clustering of an unpartitioned spec file).
    """
    if os.path.exists(name):
        from repro.frontend.parser import parse_spec_file
        from repro.partition.channels import default_bus_groups
        from repro.partition.partitioner import cluster_partition

        parsed = parse_spec_file(name)
        partition = parsed.partition
        if partition is None:
            if on_note is not None:
                on_note("note: no partition block; clustering into "
                        "2 modules")
            partition = cluster_partition(parsed.system, 2)
        groups = default_bus_groups(partition)
        if not groups:
            raise ExploreError(
                f"{name}: the partition produces no cross-module "
                "channels")
        return LoadedSystem(name, parsed.system, groups,
                            parsed.behavior_order, None)
    if name == "flc":
        from repro.apps.flc import build_flc, reference_ctrl_output
        model = build_flc()
        return LoadedSystem(name, model.system, [model.bus_b],
                            model.schedule,
                            {"ctrl_out": reference_ctrl_output(250, 180)})
    if name == "answering-machine":
        from repro.apps.answering_machine import (
            build_answering_machine,
            reference_state,
        )
        model = build_answering_machine()
        return LoadedSystem(name, model.system, [model.bus],
                            model.schedule, reference_state())
    if name == "ethernet":
        from repro.apps.ethernet import build_ethernet, reference_state
        model = build_ethernet()
        return LoadedSystem(name, model.system, [model.bus],
                            model.schedule, reference_state())
    if name == "_demo":
        system, groups, schedule, oracle = build_demo()
        return LoadedSystem(name, system, groups, schedule, oracle)
    raise ExploreError(
        f"unknown system {name!r}; choose flc, answering-machine, "
        "ethernet, or a path to a .spec file")


@lru_cache(maxsize=8)
def cached_load(name: str) -> LoadedSystem:
    """Per-process memoized :func:`load_system` (pool workers sweep
    many points of one system; the model is read-only input)."""
    return load_system(name)
