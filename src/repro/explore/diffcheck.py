"""Differential cache-correctness checker.

The read gate in :mod:`repro.explore.cache` catches *structurally*
wrong entries (corrupt bytes, stale salt, colliding inputs).  It
cannot catch the last and nastiest cache defect: an entry whose
envelope is perfectly consistent -- right key, right salt, checksum
matching its own payload -- but whose payload is **not what a fresh
compute produces** (a writer that mutated the result before
persisting it, a bitrotted disk with a rewritten checksum).

This checker closes that hole by brute honesty: for every grid point
it recomputes the full stage chain from scratch (no cache), reads the
corresponding cache entries, and demands the cached payload be
**byte-identical** (canonical JSON) to the fresh one.  Any difference
is an ``EX104`` incident naming the stage, the key and the first
divergence.

Entries the read gate already rejected are *skipped*, not reported:
their defect has an owner (EX101/EX102/EX103) and double-reporting
would break the corpus' one-defect-one-check property.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.explore.cache import EX104_DIFF, CacheIncident
from repro.explore.grid import GridPoint
from repro.explore.keys import canonical_bytes
from repro.explore.systems import load_system
from repro.explore.tasks import (
    PointContext,
    build_point_tasks,
    execute_task,
)


def _first_divergence(cached: bytes, fresh: bytes) -> str:
    limit = min(len(cached), len(fresh))
    for offset in range(limit):
        if cached[offset] != fresh[offset]:
            lo = max(0, offset - 12)
            return (f"byte {offset}: cached "
                    f"...{cached[lo:offset + 12]!r} != fresh "
                    f"...{fresh[lo:offset + 12]!r}")
    return (f"length {len(cached)} != {len(fresh)} "
            "(shorter is a prefix)")


def differential_check(system: str, points: Sequence[GridPoint],
                       cache: Any, backend: str = "interp"
                       ) -> Dict[str, Any]:
    """Prove every accepted cache entry byte-identical to fresh compute.

    Loads the system *fresh* (no shared memo with the sweep that
    populated the cache) and walks every point's chain.  Returns::

        {"checked": <entries compared>,
         "skipped_gated": <entries the read gate rejected>,
         "incidents": [CacheIncident...]}       # EX104 only

    An empty ``incidents`` list is the differential proof the warm
    cache serves exactly what a cold run would compute.
    """
    ctx = PointContext(load_system(system))
    incidents: List[CacheIncident] = []
    checked = 0
    skipped = 0
    seen: set = set()
    for point in points:
        tasks = build_point_tasks(ctx.fingerprint, point, backend)
        payloads: Dict[str, Dict[str, Any]] = {}
        keys: Dict[str, str] = {}
        for task in tasks:
            key = cache.keyer.key(task)
            keys[task.stage] = key
            cached_payload, hit = cache.get(task)
            fresh = execute_task(ctx, task, payloads, keys)
            payloads[task.stage] = fresh
            if (task.stage, key) not in seen:
                seen.add((task.stage, key))
                if hit:
                    checked += 1
                    cached_bytes = canonical_bytes(cached_payload)
                    fresh_bytes = canonical_bytes(fresh)
                    if cached_bytes != fresh_bytes:
                        incidents.append(CacheIncident(
                            EX104_DIFF, task.stage, key,
                            _first_divergence(cached_bytes,
                                              fresh_bytes)))
                else:
                    skipped += 1
            if isinstance(fresh, dict) and "error" in fresh:
                break
    return {"checked": checked, "skipped_gated": skipped,
            "incidents": incidents}
