"""Grid sweep execution: memoized task chains, optionally in parallel.

:func:`execute_point` walks one grid point's task chain through a
cache (``get`` -> miss? compute + ``put``), stopping at the first
stage that reports a pipeline error.  :func:`explore` fans a whole
grid across workers:

* ``jobs=1`` runs inline in this process -- deterministic, no pool,
  and the mode that accepts an injected cache/keyer (the defect
  corpus and most tests use it);
* ``jobs>1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`;
  workers share nothing but the on-disk cache, and results are
  re-ordered by point index so the report is byte-identical to an
  inline run (modulo wall-clock and hit/miss counters -- two workers
  may race to compute a shared prefix, which is benign: both publish
  identical bytes).

Every point is traced with :mod:`repro.obs` spans (one
``explore.point`` span wrapping one span per stage, attributes
recording the cache key and hit/miss); the per-point span trees are
rolled up into the run report.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence

from repro import obs
from repro.errors import ExploreError
from repro.explore.cache import ExploreCache, NullCache
from repro.explore.grid import GridPoint
from repro.explore.keys import payload_checksum
from repro.explore.pareto import pareto_rank
from repro.explore.systems import cached_load
from repro.explore.tasks import (
    PointContext,
    build_point_tasks,
    execute_task,
)

REPORT_SCHEMA = "repro.explore/report/v1"

#: Per-process context memo: pool workers sweep many points of one
#: system; the loaded model and the refined-spec memo are reusable.
_CONTEXTS: Dict[str, PointContext] = {}


def _context_for(system: str) -> PointContext:
    ctx = _CONTEXTS.get(system)
    if ctx is None:
        ctx = PointContext(cached_load(system))
        _CONTEXTS[system] = ctx
    return ctx


def execute_point(ctx: PointContext, cache: Any, point: GridPoint,
                  backend: str, index: int = 0) -> Dict[str, Any]:
    """Run one grid point's task chain through ``cache``.

    Returns the point result dict used by reports and the Pareto
    ranking.  ``metrics`` is ``None`` when any stage failed; the
    ``error`` field then carries the failing stage's structured error.
    """
    started = time.perf_counter()
    with obs.tracing() as tracer:
        with obs.span("explore.point", category="explore",
                      point=point.label):
            tasks = build_point_tasks(ctx.fingerprint, point, backend)
            payloads: Dict[str, Dict[str, Any]] = {}
            keys: Dict[str, str] = {}
            stages: List[Dict[str, Any]] = []
            error: Optional[Dict[str, Any]] = None
            for task in tasks:
                key = cache.keyer.key(task)
                keys[task.stage] = key
                with obs.span(f"explore.{task.stage}",
                              category="explore", key=key) as handle:
                    payload, hit = cache.get(task)
                    if not hit:
                        payload = execute_task(ctx, task, payloads, keys)
                        cache.put(task, payload)
                    handle.set(cached=hit)
                payloads[task.stage] = payload
                stages.append({"stage": task.stage, "key": key,
                               "cached": hit})
                if isinstance(payload, dict) and "error" in payload:
                    error = payload["error"]
                    break

    metrics: Optional[Dict[str, int]] = None
    sim = payloads.get("sim")
    refine = payloads.get("refine")
    if error is None and sim is not None and refine is not None:
        metrics = {
            "clocks": sim["end_clock"],
            "pins": refine["pins"],
            "area_gates": refine["area_gates"],
        }
    return {
        "index": index,
        "label": point.label,
        "params": point.params(),
        "status": "ok" if error is None else "error",
        "error": error,
        "stages": stages,
        "metrics": metrics,
        "refine": refine if error is None else None,
        "sim": sim if error is None else None,
        "spans": tracer.to_dict(),
        "wall_ms": (time.perf_counter() - started) * 1e3,
    }


def run_point_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Top-level worker entry (must be picklable for the pool).

    Workers build their own cache handle over the shared directory;
    the per-worker hit/miss counters and incidents ride back on the
    result for the parent to aggregate.
    """
    ctx = _context_for(job["system"])
    cache: Any = (ExploreCache(job["cache_root"])
                  if job["cache_root"] else NullCache())
    result = execute_point(ctx, cache, GridPoint(**job["point"]),
                           job["backend"], job["index"])
    result["cache_stats"] = cache.stats.to_dict()
    result["cache_incidents"] = [i.to_dict() for i in cache.incidents]
    return result


def explore(system: str, points: Sequence[GridPoint], *,
            jobs: int = 1, cache_dir: Optional[str] = None,
            backend: str = "interp",
            cache: Optional[Any] = None) -> Dict[str, Any]:
    """Sweep ``points`` over ``system`` and assemble the run report.

    ``cache`` overrides the cache object for inline (``jobs=1``) runs
    -- the hook the defect corpus and the tests use; with ``jobs>1``
    workers always build a stock :class:`ExploreCache` over
    ``cache_dir``.
    """
    if jobs < 1:
        raise ExploreError(f"--jobs must be >= 1, got {jobs}")
    if cache is not None and jobs != 1:
        raise ExploreError(
            "an injected cache object requires jobs=1 (pool workers "
            "build their own)")
    started = time.perf_counter()

    incidents: List[Dict[str, Any]] = []
    if jobs == 1:
        if cache is None:
            cache = (ExploreCache(cache_dir) if cache_dir
                     else NullCache())
        ctx = _context_for(system)
        results = [execute_point(ctx, cache, point, backend, index)
                   for index, point in enumerate(points)]
        stats = cache.stats.to_dict()
        incidents = [i.to_dict() for i in cache.incidents]
    else:
        jobs_spec = [{"system": system, "backend": backend,
                      "cache_root": cache_dir, "index": index,
                      "point": point.params()}
                     for index, point in enumerate(points)]
        try:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(run_point_job, jobs_spec))
        except BrokenProcessPool as error:
            raise ExploreError(
                f"a sweep worker died mid-point: {error}; the cache "
                "write protocol guarantees no partial entry was "
                "published -- rerun to recompute") from None
        results.sort(key=lambda r: r["index"])
        stats = {"hits": 0, "misses": 0, "writes": 0, "incidents": 0}
        for result in results:
            worker_stats = result.pop("cache_stats")
            for name in stats:
                stats[name] += worker_stats[name]
            incidents.extend(result.pop("cache_incidents"))

    for result in results:
        result.pop("cache_stats", None)
        result.pop("cache_incidents", None)

    return {
        "schema": REPORT_SCHEMA,
        "system": system,
        "backend": backend,
        "jobs": jobs,
        "grid_points": len(results),
        "cache": {"root": cache_dir, "stats": stats,
                  "incidents": incidents},
        "results": results,
        "pareto": pareto_rank(results),
        "wall_seconds": time.perf_counter() - started,
    }


def canonical_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic projection of a run report.

    Everything execution-dependent is dropped: wall-clock numbers,
    span trees, and the cache hit/miss counters (a ``--jobs 4`` cold
    run may double-compute a shared prefix that ``--jobs 1`` computes
    once -- same bytes, different counters).  What remains must be
    byte-identical across runs, job counts and cache temperature; the
    golden tests and the FLC golden file pin exactly this projection.
    """
    points = []
    for result in report["results"]:
        points.append({
            "index": result["index"],
            "label": result["label"],
            "params": result["params"],
            "status": result["status"],
            "error": result["error"],
            "stage_keys": {s["stage"]: s["key"]
                           for s in result["stages"]},
            "metrics": result["metrics"],
            "oracle_ok": (result["sim"] or {}).get("oracle_ok"),
            "sim_sha256": (payload_checksum(result["sim"])
                           if result["sim"] is not None else None),
        })
    return {
        "schema": report["schema"],
        "system": report["system"],
        "backend": report["backend"],
        "points": points,
        "pareto": report["pareto"],
    }
