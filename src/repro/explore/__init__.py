"""Design-space exploration: memoized grid sweeps over the pipeline.

The explorer turns the synthesis flow (partition -> busgen -> refine
-> sim/estimate) into a *task graph* whose results are
content-addressed: each stage's cache key is a digest of a
code-version salt, the stage parameters, and its upstream tasks'
keys.  Grid points that share a parameter prefix therefore share
cache entries -- a ``width x protection`` sweep computes each width's
bus generation once, not once per protection value.

Layers:

* :mod:`repro.explore.keys` -- canonical JSON, task keys, the system
  fingerprint;
* :mod:`repro.explore.cache` -- crash-safe on-disk cache with read
  gates (EX101 collision / EX102 stale / EX103 corrupt);
* :mod:`repro.explore.grid` -- ``--grid`` parsing and expansion;
* :mod:`repro.explore.systems` -- named/system-file loading;
* :mod:`repro.explore.tasks` -- the stage compute functions;
* :mod:`repro.explore.runner` -- inline and process-pool sweeps, the
  run report;
* :mod:`repro.explore.pareto` -- ranked front over (clocks, pins,
  area);
* :mod:`repro.explore.diffcheck` -- byte-identity differential
  checker (EX104);
* :mod:`repro.explore.defects` -- seeded cache-defect corpus proving
  each check catches exactly its bug.

CLI: ``repro-synth explore`` (see ``docs/explore.md``).
"""

from repro.explore.cache import (
    CacheIncident,
    CacheStats,
    ExploreCache,
    NullCache,
)
from repro.explore.diffcheck import differential_check
from repro.explore.grid import GridPoint, expand_grid, parse_grid
from repro.explore.keys import Keyer, TaskSpec, code_salt
from repro.explore.pareto import pareto_rank, render_table
from repro.explore.runner import canonical_report, explore
from repro.explore.systems import LoadedSystem, load_system
from repro.explore.tasks import build_point_tasks, execute_task

__all__ = [
    "CacheIncident",
    "CacheStats",
    "ExploreCache",
    "GridPoint",
    "Keyer",
    "LoadedSystem",
    "NullCache",
    "TaskSpec",
    "build_point_tasks",
    "canonical_report",
    "code_salt",
    "differential_check",
    "execute_task",
    "expand_grid",
    "explore",
    "load_system",
    "pareto_rank",
    "parse_grid",
    "render_table",
]
