"""Content-addressed, crash-safe on-disk cache for stage outputs.

Layout: one JSON file per task under ``<root>/<stage>/<key>.json``.
Every entry is a canonical-JSON envelope::

    {"schema": "repro.explore/cache/v1",
     "stage": "sim",
     "salt": "<code-version salt the writer ran under>",
     "inputs": {... structural key inputs, salt-free ...},
     "payload": {... the stage output ...},
     "payload_sha256": "<checksum over canonical payload bytes>"}

Writes are atomic: the envelope is written to a process-unique
``*.tmp.<pid>`` file and published with ``os.replace``, so a worker
killed mid-write can never leave a partial *entry* behind -- only a
temp file every reader ignores.

Reads pass through a **cheap gate** before a hit is trusted; each
check catches exactly one classic cache defect (the seeded corpus in
:mod:`repro.explore.defects` proves the mapping is one-to-one):

========  ==================  =========================================
code      name                defect it refutes
========  ==================  =========================================
EX101     key collision       the key function omitted an input, two
                              distinct points hash to one entry
EX102     stale version       the key ignored the code salt, results
                              from an older lowering survive a change
EX103     corrupt entry       a non-atomic writer crashed mid-write
                              (parse/checksum failure)
EX104     diff mismatch       *(differential checker, not a read gate:
                              see* :mod:`repro.explore.diffcheck` *)* a
                              consistent-looking entry whose payload
                              differs from a fresh compute
========  ==================  =========================================

A failed gate is recorded as a :class:`CacheIncident` and the read is
treated as a miss -- the stage recomputes and the entry is rewritten.
The explorer surfaces every incident in its report; a clean cache
reports none.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.explore.keys import (
    Keyer,
    TaskSpec,
    canonical_bytes,
    payload_checksum,
)

SCHEMA = "repro.explore/cache/v1"

#: Stable incident codes (EX1xx: explorer cache defects).
EX101_COLLISION = "EX101"
EX102_STALE = "EX102"
EX103_CORRUPT = "EX103"
EX104_DIFF = "EX104"

INCIDENT_CODES: Dict[str, str] = {
    EX101_COLLISION: "key collision: cached entry was produced by "
                     "different structural inputs than the request",
    EX102_STALE: "stale version: cached entry was written under a "
                 "different code-version salt",
    EX103_CORRUPT: "corrupt entry: envelope fails to parse or the "
                   "payload checksum does not match",
    EX104_DIFF: "differential mismatch: cached payload is not "
                "byte-identical to a fresh compute",
}

#: Test-only fault-injection hook: when this environment variable
#: names a stage, :meth:`ExploreCache.put` for that stage writes half
#: of its temp file and hard-exits the process -- simulating a worker
#: killed mid-write.  The atomic tmp+rename protocol must guarantee no
#: partial *entry* becomes visible (asserted by the crash-safety test).
CRASH_ENV = "REPRO_EXPLORE_TEST_CRASH"


@dataclass(frozen=True)
class CacheIncident:
    """One tripped cache-correctness check."""

    code: str
    stage: str
    key: str
    detail: str

    def describe(self) -> str:
        return f"[{self.code}] {self.stage}/{self.key[:12]}: {self.detail}"

    def to_dict(self) -> Dict[str, str]:
        return {"code": self.code, "stage": self.stage, "key": self.key,
                "detail": self.detail}


@dataclass
class CacheStats:
    """Hit/miss/write counters for one explorer run."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    incidents: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "writes": self.writes, "incidents": self.incidents}


class NullCache:
    """Cache-less execution: every task recomputes, nothing persists.

    Used when no ``--cache`` directory was given, and by the
    differential checker's fresh-recompute arm.
    """

    root: Optional[str] = None

    def __init__(self) -> None:
        self.keyer = Keyer()
        self.stats = CacheStats()
        self.incidents: List[CacheIncident] = []

    def get(self, task: TaskSpec) -> Tuple[Optional[Any], bool]:
        self.stats.misses += 1
        return None, False

    def put(self, task: TaskSpec, payload: Any) -> None:
        return None


class ExploreCache:
    """The on-disk content-addressed cache (see module docstring)."""

    def __init__(self, root: str, keyer: Optional[Keyer] = None):
        self.root = root
        self.keyer = keyer or Keyer()
        self.stats = CacheStats()
        self.incidents: List[CacheIncident] = []
        os.makedirs(root, exist_ok=True)

    # -- paths -------------------------------------------------------------

    def path_for(self, task: TaskSpec) -> str:
        return self._entry_path(task.stage, self.keyer.key(task))

    def _entry_path(self, stage: str, key: str) -> str:
        return os.path.join(self.root, stage, f"{key}.json")

    # -- read --------------------------------------------------------------

    def get(self, task: TaskSpec) -> Tuple[Optional[Any], bool]:
        """Returns ``(payload, hit)``.

        A missing entry is a plain miss.  An entry that fails a read
        gate records a :class:`CacheIncident`, counts as a miss, and
        will be overwritten by the recompute's :meth:`put`.
        """
        key = self.keyer.key(task)
        path = self._entry_path(task.stage, key)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            self.stats.misses += 1
            return None, False

        incident = self._gate(task, key, raw)
        if incident is not None:
            self._record(incident)
            self.stats.misses += 1
            return None, False
        entry = json.loads(raw)
        self.stats.hits += 1
        return entry["payload"], True

    def _gate(self, task: TaskSpec, key: str,
              raw: bytes) -> Optional[CacheIncident]:
        """The cheap read gate: EX103 then EX102 then EX101."""
        try:
            entry = json.loads(raw)
            if entry.get("schema") != SCHEMA:
                raise ValueError(f"schema {entry.get('schema')!r}")
            payload = entry["payload"]
            recorded = entry["payload_sha256"]
        except (ValueError, KeyError, TypeError) as error:
            return CacheIncident(EX103_CORRUPT, task.stage, key,
                                 f"unreadable envelope: {error}")
        if payload_checksum(payload) != recorded:
            return CacheIncident(EX103_CORRUPT, task.stage, key,
                                 "payload checksum mismatch")
        if entry.get("salt") != self.keyer.salt:
            return CacheIncident(
                EX102_STALE, task.stage, key,
                f"entry salt {entry.get('salt')!r} != current "
                f"{self.keyer.salt!r}")
        inputs = self.keyer.structural_inputs(task)
        if entry.get("inputs") != inputs:
            return CacheIncident(
                EX101_COLLISION, task.stage, key,
                "entry inputs differ from the requesting task's "
                "(key function lost an input?)")
        return None

    def _record(self, incident: CacheIncident) -> None:
        self.incidents.append(incident)
        self.stats.incidents += 1

    # -- write -------------------------------------------------------------

    def put(self, task: TaskSpec, payload: Any) -> None:
        """Atomically publish ``payload`` for ``task``."""
        key = self.keyer.key(task)
        path = self._entry_path(task.stage, key)
        data = self._envelope_bytes(task, payload)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        crash = os.environ.get(CRASH_ENV) == task.stage
        with open(tmp, "wb") as handle:
            if crash:
                # Fault injection: die with half the bytes flushed.
                handle.write(data[:max(1, len(data) // 2)])
                handle.flush()
                os.fsync(handle.fileno())
                os._exit(99)
            handle.write(data)
        os.replace(tmp, path)
        self.stats.writes += 1

    def _envelope_bytes(self, task: TaskSpec, payload: Any) -> bytes:
        entry = {
            "schema": SCHEMA,
            "stage": task.stage,
            "salt": self.keyer.salt,
            "inputs": self.keyer.structural_inputs(task),
            "payload": payload,
            "payload_sha256": payload_checksum(payload),
        }
        return canonical_bytes(entry) + b"\n"

    # -- maintenance -------------------------------------------------------

    def entries(self) -> List[Tuple[str, str]]:
        """All published ``(stage, key)`` pairs, sorted."""
        found: List[Tuple[str, str]] = []
        for stage in sorted(os.listdir(self.root)):
            stage_dir = os.path.join(self.root, stage)
            if not os.path.isdir(stage_dir):
                continue
            for name in sorted(os.listdir(stage_dir)):
                if name.endswith(".json"):
                    found.append((stage, name[:-len(".json")]))
        return found

    def scan(self) -> List[CacheIncident]:
        """Integrity sweep: parse + checksum every published entry.

        Returns EX103 incidents for unreadable/corrupt entries.  Temp
        files from in-flight (or killed) writers are ignored -- they
        are not entries.
        """
        incidents: List[CacheIncident] = []
        for stage, key in self.entries():
            path = self._entry_path(stage, key)
            try:
                with open(path, "rb") as handle:
                    entry = json.loads(handle.read())
                if entry.get("schema") != SCHEMA:
                    raise ValueError(f"schema {entry.get('schema')!r}")
                if payload_checksum(entry["payload"]) != \
                        entry["payload_sha256"]:
                    raise ValueError("payload checksum mismatch")
            except (ValueError, KeyError, TypeError) as error:
                incidents.append(CacheIncident(
                    EX103_CORRUPT, stage, key, str(error)))
        return incidents
