"""Content-addressed task keys for the design-space explorer.

Every pipeline stage the explorer memoizes (partition, busgen, refine,
sim) is represented by a :class:`TaskSpec` -- a node of the task graph
that *declares its inputs*: the stage name, the canonical stage
parameters and the upstream tasks it consumes.  A task's cache key is
a digest over

* a **code-version salt** (:func:`code_salt`): results computed by an
  older lowering must never be served for a newer one;
* the **structural inputs**: the stage parameters in canonical JSON
  form (insertion order is irrelevant -- keys are sorted before
  hashing), plus the *keys* of every dependency.

The dependency chaining is what makes shared grid prefixes free: two
grid points with the same partition + busgen parameters hash to the
same busgen key, so the second point hits the cache no matter how its
downstream protection/arbitration parameters differ.

:class:`Keyer` is the one place keys are computed.  Its two defect
hooks (``omit_params``, ``ignore_salt``) exist *only* for the seeded
cache-defect corpus in :mod:`repro.explore.defects`: they reproduce
the classic cache bugs (a key that forgets a parameter, a cache that
survives code changes) so the checker suite can prove it catches each
one.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro import __version__
from repro.errors import ExploreError

#: Bump when the meaning of any cached stage payload changes (new
#: fields, different lowering, different clock accounting).  Combined
#: with the package version into :func:`code_salt`.
EXPLORE_SALT = "repro.explore/v1"


def code_salt() -> str:
    """The code-version salt mixed into every cache key."""
    return f"{__version__}+{EXPLORE_SALT}"


def canonical_bytes(obj: Any) -> bytes:
    """Canonical JSON encoding: sorted keys, minimal separators, ASCII.

    Two structurally equal payloads -- whatever dict insertion order
    they were built in -- encode to identical bytes, which is what
    both the cache keys and the differential byte-identity checker
    hash and compare.
    """
    try:
        text = json.dumps(obj, sort_keys=True, separators=(",", ":"),
                          ensure_ascii=True, allow_nan=False)
    except (TypeError, ValueError) as error:
        raise ExploreError(
            f"payload is not canonically serializable: {error}"
        ) from None
    return text.encode("ascii")


def digest(obj: Any) -> str:
    """Stable 128-bit hex digest of a canonical JSON value."""
    return hashlib.blake2b(canonical_bytes(obj), digest_size=16).hexdigest()


def payload_checksum(payload: Any) -> str:
    """Integrity checksum stored next to every cache payload."""
    return hashlib.sha256(canonical_bytes(payload)).hexdigest()


class TaskSpec:
    """One node of the memoized task graph.

    ``params`` must be a canonical-JSON-able mapping; ``deps`` are the
    upstream tasks whose outputs this stage consumes.  The key is
    computed by a :class:`Keyer` (not here) so the defect corpus can
    swap the key function without touching the graph.
    """

    __slots__ = ("stage", "params", "deps")

    def __init__(self, stage: str, params: Mapping[str, Any],
                 deps: Tuple["TaskSpec", ...] = ()):
        self.stage = stage
        self.params = dict(params)
        self.deps = tuple(deps)

    def __repr__(self) -> str:
        return (f"TaskSpec({self.stage!r}, {self.params!r}, "
                f"deps={[d.stage for d in self.deps]})")


class Keyer:
    """Computes cache keys and the structural inputs stored in entries.

    The structural inputs (parameters + dependency keys, *without* the
    salt) are recorded verbatim in every cache entry so the read gate
    can verify a hit was produced by the same inputs -- a key collision
    caused by a buggy key function is then caught at read time instead
    of silently serving the wrong point's results.

    ``omit_params`` / ``ignore_salt`` are seeded-defect hooks (see
    module docstring); production code always uses the default
    ``Keyer()``.
    """

    def __init__(self, salt: Optional[str] = None,
                 omit_params: Iterable[str] = (),
                 ignore_salt: bool = False):
        self.salt = code_salt() if salt is None else salt
        self.omit_params = frozenset(omit_params)
        self.ignore_salt = ignore_salt

    def structural_inputs(self, task: TaskSpec) -> Dict[str, Any]:
        """The salt-free inputs recorded in (and checked against)
        cache entries: stage, parameters, dependency keys.

        Recording is always *honest* -- every parameter appears, even
        under an ``omit_params`` defect.  Only :meth:`key` honors the
        defect hooks: that split mirrors the real bug (a key function
        that forgot an input while the entry metadata still tells the
        truth) and is exactly what lets the EX101 read gate catch it.
        """
        return {
            "stage": task.stage,
            "params": dict(task.params),
            "deps": [self.key(dep) for dep in task.deps],
        }

    def key(self, task: TaskSpec) -> str:
        """The content-addressed cache key of ``task``."""
        params = {name: value for name, value in task.params.items()
                  if name not in self.omit_params}
        return digest({
            "salt": None if self.ignore_salt else self.salt,
            "inputs": {
                "stage": task.stage,
                "params": params,
                "deps": [self.key(dep) for dep in task.deps],
            },
        })


def fingerprint_system(name: str, system: Any, groups: Iterable[Any],
                       schedule: Optional[Any]) -> Dict[str, Any]:
    """Structural fingerprint of a loaded system: the partition task's
    key inputs.

    Uses the canonical source rendering of the spec (so two equivalent
    in-memory builds of the same system fingerprint identically) plus
    the channel-group structure and the schedule.  Anything that could
    change a downstream stage's output must appear here.
    """
    from repro.frontend.printer import print_spec, print_type

    stages: List[List[str]] = []
    if schedule is not None:
        for stage in schedule:
            stages.append([stage] if isinstance(stage, str)
                          else list(stage))
    return {
        "arg": name,
        "system": system.name,
        "source": print_spec(system),
        "groups": [
            {
                "name": group.name,
                "clock_period": group.clock_period,
                "channels": [
                    {
                        "name": channel.name,
                        "direction": channel.direction.name,
                        "variable": channel.variable.name,
                        "dtype": print_type(channel.variable.dtype),
                        "accessor": channel.accessor.name,
                        "accesses": channel.accesses,
                        "message_bits": channel.message_bits,
                    }
                    for channel in group.channels
                ],
            }
            for group in groups
        ],
        "schedule": stages,
    }
