"""Stage compute functions: the explorer's view of the pipeline.

The memoized task graph covers four stages per grid point::

    partition ──> busgen ──> refine ──> sim

Each stage is a pure function of its declared inputs: the system
fingerprint, the stage parameters and the *payload* of its upstream
stage.  That purity is what makes the content-addressed cache honest:
a cached busgen payload feeds refine exactly the values a fresh
busgen run would have (the differential checker in
:mod:`repro.explore.diffcheck` re-proves this byte-for-byte).

Payloads are canonical-JSON values (never pickles): deterministic
across processes -- the pool workers and the inline runner must
produce identical bytes -- and safe to inspect in the cache directory.

A stage that cannot build its design point (Equation-1 infeasibility,
protection on a protocol without an acknowledge, a TDMA requester
without a slot) reports a structured ``error`` payload, which is
cached like any other result: a warm sweep skips the failing compute
too.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.busgen.algorithm import generate_bus
from repro.busgen.split import split_group
from repro.channels.group import ChannelGroup
from repro.errors import ExploreError, InfeasibleBusError, ReproError
from repro.estimate.area import estimate_bus_area
from repro.explore.grid import WIDTH_AUTO, GridPoint
from repro.explore.keys import TaskSpec, fingerprint_system
from repro.explore.systems import LoadedSystem
from repro.protocols import get_protocol
from repro.protogen.refine import refine_system
from repro.sim.runtime import simulate

#: Stage names, in pipeline order.
STAGES = ("partition", "busgen", "refine", "sim")

#: Deterministic TDMA slot length for the ``tdma`` arbitration axis.
TDMA_SLOT_CLOCKS = 8


def arbiter_factories(arbitration: str):
    """``arbiter_factories`` argument for :func:`simulate` (``None``
    keeps the runtime's zero-delay FIFO default)."""
    from repro.sim.arbiter import (
        PriorityArbiter,
        RoundRobinArbiter,
        TdmaArbiter,
    )

    if arbitration == "fifo":
        return None
    if arbitration == "priority":
        def priority(sim, members):
            return PriorityArbiter(
                sim, {name: index for index, name in enumerate(members)})
        factory = priority
    elif arbitration == "rr":
        def rr(sim, members):
            return RoundRobinArbiter(sim, members)
        factory = rr
    elif arbitration == "tdma":
        def tdma(sim, members):
            return TdmaArbiter(sim, members,
                               slot_clocks=TDMA_SLOT_CLOCKS)
        factory = tdma
    else:
        raise ExploreError(f"unknown arbitration {arbitration!r}")

    class _All(dict):
        """Factory for every bus of the spec."""

        def get(self, _name, _default=None):
            return factory

    return _All()


def build_point_tasks(fingerprint: Dict[str, Any], point: GridPoint,
                      backend: str) -> List[TaskSpec]:
    """The task chain of one grid point, dependency-linked so shared
    parameter prefixes share keys (and therefore cache entries)."""
    t_partition = TaskSpec("partition", {"system": fingerprint})
    t_busgen = TaskSpec(
        "busgen",
        {"protocol": point.protocol, "width": point.width},
        (t_partition,))
    t_refine = TaskSpec(
        "refine",
        {"protocol": point.protocol, "width": point.width,
         "protection": point.protection},
        (t_busgen,))
    t_sim = TaskSpec(
        "sim",
        {"protocol": point.protocol, "width": point.width,
         "protection": point.protection,
         "arbitration": point.arbitration, "backend": backend},
        (t_refine,))
    return [t_partition, t_busgen, t_refine, t_sim]


def _error_payload(stage: str, error: ReproError) -> Dict[str, Any]:
    return {"error": {"stage": stage, "type": type(error).__name__,
                      "message": str(error)}}


class PointContext:
    """Per-process working state for stage computes.

    Holds the loaded system and memoizes the in-memory artifacts
    (refined specs) that link a computed stage to the next one.  The
    memo keys are the *cache keys* of the producing task, so a refined
    spec is only ever reused for the exact inputs that built it.
    """

    def __init__(self, loaded: LoadedSystem):
        self.loaded = loaded
        self._fingerprint: Optional[Dict[str, Any]] = None
        self._refined: Dict[str, Any] = {}

    @property
    def fingerprint(self) -> Dict[str, Any]:
        if self._fingerprint is None:
            self._fingerprint = fingerprint_system(
                self.loaded.arg, self.loaded.system, self.loaded.groups,
                self.loaded.schedule)
        return self._fingerprint

    def group_named(self, name: str) -> ChannelGroup:
        for group in self.loaded.groups:
            if group.name == name:
                return group
        raise ExploreError(f"no channel group named {name!r}")

    def rebuild_group(self, plan: Dict[str, Any]) -> ChannelGroup:
        """Materialize the channel group a busgen plan names.

        Split plans carry their member channel names; the group is
        rebuilt from the parent group's channel objects, which keeps
        the refine stage a function of the *cached* busgen payload.
        """
        parent = self.group_named(plan["group"])
        if plan["channels"] == [c.name for c in parent.channels]:
            return parent
        members = [parent.channel(name) for name in plan["channels"]]
        return ChannelGroup(plan["bus"], members,
                            clock_period=parent.clock_period)

    # -- stage computes ----------------------------------------------------

    def compute_partition(self, _params: Dict[str, Any]) -> Dict[str, Any]:
        loaded = self.loaded
        return {
            "system": loaded.system.name,
            "groups": [
                {"name": group.name,
                 "channels": [c.name for c in group.channels],
                 "max_message_bits": group.max_message_bits,
                 "separate_pins": group.total_message_pins}
                for group in loaded.groups
            ],
            "schedule": self.fingerprint["schedule"],
        }

    def compute_busgen(self, params: Dict[str, Any],
                       _partition: Dict[str, Any]) -> Dict[str, Any]:
        protocol = get_protocol(params["protocol"])
        width = params["width"]
        plans: List[Dict[str, Any]] = []
        for group in self.loaded.groups:
            if width != WIDTH_AUTO:
                # Designer-specified width: refine at that width even
                # when Equation 1 is infeasible (``synth --force``
                # semantics -- the sweep wants the measured cost).
                plans.append({
                    "group": group.name, "bus": group.name,
                    "channels": [c.name for c in group.channels],
                    "width": int(width), "forced": True,
                })
                continue
            try:
                designs = [generate_bus(group, protocol=protocol)]
            except InfeasibleBusError:
                designs = list(split_group(group,
                                           protocol=protocol).designs)
            for design in designs:
                plans.append({
                    "group": group.name, "bus": design.group.name,
                    "channels": [c.name for c in design.group.channels],
                    "width": design.width, "forced": False,
                    "bus_rate": design.bus_rate,
                    "demand": design.demand,
                    "cost": design.cost,
                })
        return {"protocol": protocol.name, "plans": plans}

    def compute_refine(self, params: Dict[str, Any],
                       busgen: Dict[str, Any],
                       refine_key: str) -> Dict[str, Any]:
        protocol = get_protocol(params["protocol"])
        protection = params["protection"]
        plans = [
            (self.rebuild_group(plan), plan["width"], protocol)
            for plan in busgen["plans"]
        ]
        refined = refine_system(
            self.loaded.system, plans, protocol=protocol,
            protection=None if protection == "none" else protection)
        self._refined[refine_key] = refined

        buses = []
        for bus in refined.buses:
            area = estimate_bus_area(bus)
            buses.append({
                "name": bus.name,
                "width": bus.structure.width,
                "wires": area.wires,
                "gates": area.total_gates,
                "channels": {
                    name: {
                        "message_bits": pair.layout.total_bits,
                        "words": pair.layout.word_count(
                            bus.structure.width),
                    }
                    for name, pair in sorted(bus.procedures.items())
                },
            })
        return {
            "buses": buses,
            "pins": sum(b["wires"] for b in buses),
            "area_gates": sum(b["gates"] for b in buses),
        }

    def refined_for(self, refine_task: TaskSpec, refine_key: str,
                    busgen_payload: Dict[str, Any]) -> Any:
        """The in-memory refined spec for a refine task, rebuilding it
        when the payload came from the cache (cache hits store JSON,
        not objects)."""
        refined = self._refined.get(refine_key)
        if refined is None:
            self.compute_refine(refine_task.params, busgen_payload,
                                refine_key)
            refined = self._refined[refine_key]
        return refined

    def compute_sim(self, params: Dict[str, Any], refined: Any
                    ) -> Dict[str, Any]:
        factories = arbiter_factories(params["arbitration"])
        result = simulate(refined, schedule=self.loaded.schedule,
                          arbiter_factories=factories,
                          backend=params["backend"])
        oracle = self.loaded.oracle
        oracle_ok: Optional[bool] = None
        if oracle:
            oracle_ok = all(result.final_values[k] == v
                            for k, v in oracle.items())
        return {
            "backend": result.backend,
            "end_clock": result.end_time,
            "behavior_clocks": dict(sorted(result.clocks.items())),
            "final_values": {
                name: (list(value) if isinstance(value, list) else value)
                for name, value in sorted(result.final_values.items())
            },
            "transactions": {
                bus: [[t.start_time, t.end_time, t.channel,
                       t.direction.name, t.address, t.data, t.initiator,
                       t.retries] for t in log]
                for bus, log in sorted(result.transactions.items())
            },
            "utilization": dict(sorted(result.utilization.items())),
            "arbitration_wait": dict(sorted(
                result.arbitration_wait.items())),
            "fallbacks": dict(sorted(result.fallbacks.items())),
            "oracle_ok": oracle_ok,
        }


def execute_task(ctx: PointContext, task: TaskSpec,
                 payloads: Dict[str, Dict[str, Any]],
                 keys: Dict[str, str]) -> Dict[str, Any]:
    """Run one stage compute; pipeline failures become ``error``
    payloads (cached like results, so warm sweeps skip them too).

    ``payloads``/``keys`` map the already-resolved upstream stages of
    this point's chain to their payloads and cache keys; the cache key
    indexes the in-memory refined-spec memo, so a spec is only reused
    for the exact inputs that built it.
    """
    try:
        if task.stage == "partition":
            return ctx.compute_partition(task.params)
        if task.stage == "busgen":
            return ctx.compute_busgen(task.params, payloads["partition"])
        if task.stage == "refine":
            return ctx.compute_refine(task.params, payloads["busgen"],
                                      keys["refine"])
        if task.stage == "sim":
            refined = ctx.refined_for(task.deps[0], keys["refine"],
                                      payloads["busgen"])
            return ctx.compute_sim(task.params, refined)
        raise ExploreError(f"unknown stage {task.stage!r}")
    except ReproError as error:
        return _error_payload(task.stage, error)
