"""Pareto ranking of explored design points.

Three minimized objectives, the classic interface-synthesis triangle:

* **clocks** -- simulated end-to-end execution time;
* **pins** -- module-boundary wires (data + ID + control), the
  paper's interconnect cost;
* **area_gates** -- interface controller gate-equivalents.

A point *dominates* another when it is no worse on every objective
and strictly better on at least one.  The front is every undominated
point, ranked by (clocks, pins, area, label) for a stable report; each
dominated point records the first front point (in rank order) that
dominates it, so the table can say *why* a point fell off.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Objective keys, all minimized, in ranking order.
OBJECTIVES = ("clocks", "pins", "area_gates")


def metrics_of(point_result: Dict[str, Any]) -> Optional[Tuple[int, ...]]:
    """The objective vector of a point result, or ``None`` for points
    that failed to build/simulate (excluded from ranking)."""
    metrics = point_result.get("metrics")
    if not metrics:
        return None
    try:
        return tuple(metrics[o] for o in OBJECTIVES)
    except KeyError:
        return None


def dominates(a: Sequence[int], b: Sequence[int]) -> bool:
    return all(x <= y for x, y in zip(a, b)) and \
        any(x < y for x, y in zip(a, b))


def pareto_rank(results: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Rank point results (dicts with ``label`` and ``metrics``).

    Returns a JSON-ready payload::

        {"objectives": [...],
         "front": [label, ...],              # ranked
         "dominated": {label: dominator_label, ...},
         "excluded": [label, ...]}           # failed points
    """
    vectors: List[Tuple[str, Tuple[int, ...]]] = []
    excluded: List[str] = []
    for result in results:
        vector = metrics_of(result)
        if vector is None:
            excluded.append(result["label"])
        else:
            vectors.append((result["label"], vector))

    front: List[Tuple[str, Tuple[int, ...]]] = []
    dominated_points: List[Tuple[str, Tuple[int, ...]]] = []
    for label, vector in vectors:
        if any(dominates(other, vector)
               for other_label, other in vectors if other_label != label):
            dominated_points.append((label, vector))
        else:
            front.append((label, vector))

    front.sort(key=lambda item: (item[1], item[0]))
    dominated: Dict[str, str] = {}
    for label, vector in dominated_points:
        for front_label, front_vector in front:
            if dominates(front_vector, vector):
                dominated[label] = front_label
                break
    return {
        "objectives": list(OBJECTIVES),
        "front": [label for label, _ in front],
        "dominated": dominated,
        "excluded": excluded,
    }


def render_table(results: List[Dict[str, Any]],
                 pareto: Dict[str, Any]) -> List[str]:
    """ASCII table of every point with its Pareto verdict."""
    front = {label: rank + 1
             for rank, label in enumerate(pareto["front"])}
    dominated = pareto["dominated"]
    headers = ("point", "status", "clocks", "pins", "gates", "pareto")
    rows: List[Tuple[str, ...]] = []
    for result in results:
        label = result["label"]
        metrics = result.get("metrics") or {}
        if label in front:
            verdict = f"front #{front[label]}"
        elif label in dominated:
            verdict = f"dominated by {dominated[label]}"
        else:
            verdict = "-"
        rows.append((
            label,
            result["status"],
            str(metrics.get("clocks", "-")),
            str(metrics.get("pins", "-")),
            str(metrics.get("area_gates", "-")),
            verdict,
        ))
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows)) if rows
              else len(headers[i]) for i in range(len(headers))]

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    lines.extend(fmt(row) for row in rows)
    return lines
