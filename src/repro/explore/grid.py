"""Grid parsing and expansion for ``repro-synth explore --grid``.

A grid is a set of axes, each a ``name=v1,v2,...`` token::

    --grid width=4,8,auto protection=none,parity,crc8 arbitration=fifo

Axes not mentioned take their single default value.  Expansion order
is deterministic: the cartesian product iterates axes in canonical
order (width, protocol, protection, arbitration) with values in the
order the user wrote them, so point indices -- and therefore result
ordering and the golden reports -- are stable across runs and
``--jobs`` settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Sequence, Union

from repro.errors import ExploreError
from repro.protocols import PROTOCOLS

#: Width axis accepts positive integers or the bus-generation search.
WIDTH_AUTO = "auto"

PROTECTIONS = ("none", "parity", "crc8")
ARBITRATIONS = ("fifo", "priority", "rr", "tdma")

#: Canonical axis order (also the expansion order).
AXIS_ORDER = ("width", "protocol", "protection", "arbitration")

DEFAULTS: Dict[str, List[Union[int, str]]] = {
    "width": [WIDTH_AUTO],
    "protocol": ["full_handshake"],
    "protection": ["none"],
    "arbitration": ["fifo"],
}


@dataclass(frozen=True)
class GridPoint:
    """One design point of the sweep."""

    width: Union[int, str]
    protocol: str
    protection: str
    arbitration: str

    @property
    def label(self) -> str:
        return (f"width={self.width} {self.protocol} "
                f"prot={self.protection} arb={self.arbitration}")

    def params(self) -> Dict[str, Union[int, str]]:
        return {"width": self.width, "protocol": self.protocol,
                "protection": self.protection,
                "arbitration": self.arbitration}


def _parse_width(text: str) -> Union[int, str]:
    if text == WIDTH_AUTO:
        return WIDTH_AUTO
    try:
        width = int(text)
    except ValueError:
        raise ExploreError(
            f"width axis value {text!r} is neither an integer nor "
            f"'{WIDTH_AUTO}'") from None
    if width < 1:
        raise ExploreError(f"width axis value must be >= 1, got {width}")
    return width


def parse_grid(tokens: Iterable[str]) -> Dict[str, List[Union[int, str]]]:
    """Parse ``name=v1,v2`` tokens into a full axes dict (defaults
    filled in, values validated, duplicates collapsed in order)."""
    axes: Dict[str, List[Union[int, str]]] = {
        name: list(values) for name, values in DEFAULTS.items()
    }
    seen = set()
    for token in tokens:
        name, sep, rest = token.partition("=")
        if not sep or not rest:
            raise ExploreError(
                f"grid token {token!r} is not of the form "
                "axis=value[,value...]")
        if name not in AXIS_ORDER:
            raise ExploreError(
                f"unknown grid axis {name!r}; choose from "
                f"{', '.join(AXIS_ORDER)}")
        if name in seen:
            raise ExploreError(f"grid axis {name!r} given twice")
        seen.add(name)
        values: List[Union[int, str]] = []
        for raw in rest.split(","):
            raw = raw.strip()
            if not raw:
                continue
            if name == "width":
                value: Union[int, str] = _parse_width(raw)
            elif name == "protocol":
                if raw not in PROTOCOLS:
                    raise ExploreError(
                        f"unknown protocol {raw!r}; choose from "
                        f"{', '.join(sorted(PROTOCOLS))}")
                value = raw
            elif name == "protection":
                if raw not in PROTECTIONS:
                    raise ExploreError(
                        f"unknown protection {raw!r}; choose from "
                        f"{', '.join(PROTECTIONS)}")
                value = raw
            else:
                if raw not in ARBITRATIONS:
                    raise ExploreError(
                        f"unknown arbitration {raw!r}; choose from "
                        f"{', '.join(ARBITRATIONS)}")
                value = raw
            if value not in values:
                values.append(value)
        if not values:
            raise ExploreError(f"grid axis {name!r} has no values")
        axes[name] = values
    return axes


def expand_grid(axes: Dict[str, Sequence[Union[int, str]]]
                ) -> List[GridPoint]:
    """Cartesian product in canonical axis order."""
    full = {name: list(axes.get(name, DEFAULTS[name]))
            for name in AXIS_ORDER}
    return [
        GridPoint(width=width, protocol=protocol, protection=protection,
                  arbitration=arbitration)
        for width, protocol, protection, arbitration in product(
            full["width"], full["protocol"], full["protection"],
            full["arbitration"])
    ]
