"""Seeded cache-defect corpus: prove each checker catches its bug.

A cache that silently serves wrong results is worse than no cache, so
the explorer's correctness checks are themselves tested the only
honest way: by *seeding* each classic cache defect and demanding that
exactly the one check designed for it fires -- no misses, no
double-reporting.

Each :class:`Defect` builds a deliberately broken writer and/or
reader over a real cache directory.  :func:`run_scenario` then plays
the standard battery:

1. **seed** -- a cold sweep through the defective writer populates the
   cache the way the buggy code would have;
2. **warm** -- a warm sweep through the (possibly defective) reader,
   read gates armed;
3. **differential** -- the byte-identity checker over whatever the
   gates accepted.

The fired incident-code set must equal ``{defect.code}`` exactly; the
defect-free ``control`` scenario must fire nothing.  The corpus:

==================  ======  ==========================================
defect              code    seeded how
==================  ======  ==========================================
key_omits_param     EX101   keyer hashes without the ``width`` param,
                            so distinct widths collide on one key
salt_ignored        EX102   keyer drops the code-version salt from the
                            hash; entries seeded under an old salt
                            keep matching after the "upgrade"
partial_write       EX103   writer skips the atomic tmp+rename
                            protocol and persists a truncated entry
                            (a crash mid-``write`` made durable)
payload_drift       EX104   writer perturbs the payload but stamps a
                            checksum over the *drifted* bytes -- the
                            envelope is self-consistent, only the
                            differential recompute can tell
==================  ======  ==========================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Set

from repro.explore.cache import (
    EX101_COLLISION,
    EX102_STALE,
    EX103_CORRUPT,
    EX104_DIFF,
    ExploreCache,
)
from repro.explore.diffcheck import differential_check
from repro.explore.grid import GridPoint, expand_grid
from repro.explore.keys import Keyer, TaskSpec, code_salt
from repro.explore.runner import explore


class _TruncatingCache(ExploreCache):
    """Writer with the classic non-atomic bug: the entry file is
    written in place and "the process dies" halfway through, leaving a
    truncated entry at the *published* path."""

    def put(self, task: TaskSpec, payload: Any) -> None:
        key = self.keyer.key(task)
        path = self._entry_path(task.stage, key)
        data = self._envelope_bytes(task, payload)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(data[:max(1, len(data) // 2)])
        self.stats.writes += 1


class _DriftingCache(ExploreCache):
    """Writer that perturbs the sim payload before persisting it, then
    checksums the perturbed bytes -- internally consistent, externally
    wrong.  (A model for any compute-then-corrupt bug.)"""

    def put(self, task: TaskSpec, payload: Any) -> None:
        if task.stage == "sim" and isinstance(payload, dict) \
                and "end_clock" in payload:
            payload = dict(payload)
            payload["end_clock"] = payload["end_clock"] + 1
        super().put(task, payload)


@dataclass(frozen=True)
class Defect:
    """One seeded cache bug and the incident code that must catch it."""

    name: str
    code: str
    description: str
    #: Builds the defective *seeding* cache over a root directory.
    writer: Callable[[str], ExploreCache]
    #: Builds the *reading* cache for the warm sweep + differential.
    reader: Callable[[str], ExploreCache]


CORPUS: List[Defect] = [
    Defect(
        name="key_omits_param",
        code=EX101_COLLISION,
        description="key function forgets the width parameter; "
                    "every width of a point family collides on one "
                    "cache entry",
        writer=lambda root: ExploreCache(
            root, Keyer(omit_params=("width",))),
        reader=lambda root: ExploreCache(
            root, Keyer(omit_params=("width",))),
    ),
    Defect(
        name="salt_ignored",
        code=EX102_STALE,
        description="key function drops the code-version salt; "
                    "entries written by an older lowering keep "
                    "hitting after the code changed",
        writer=lambda root: ExploreCache(
            root, Keyer(salt="repro-0.0-ancient", ignore_salt=True)),
        reader=lambda root: ExploreCache(
            root, Keyer(salt=code_salt(), ignore_salt=True)),
    ),
    Defect(
        name="partial_write",
        code=EX103_CORRUPT,
        description="non-atomic writer dies mid-write and publishes "
                    "a truncated entry",
        writer=_TruncatingCache,
        reader=ExploreCache,
    ),
    Defect(
        name="payload_drift",
        code=EX104_DIFF,
        description="writer perturbs the payload but stamps a "
                    "matching checksum; only a fresh recompute can "
                    "tell",
        writer=_DriftingCache,
        reader=ExploreCache,
    ),
]

CONTROL = Defect(
    name="control",
    code="",
    description="defect-free writer and reader; nothing may fire",
    writer=ExploreCache,
    reader=ExploreCache,
)

#: The corpus' standard sweep: two widths (so omitted-width keys
#: collide) over the test-sized ``_demo`` system.
SCENARIO_SYSTEM = "_demo"
SCENARIO_GRID = {"width": [1, 2]}


def scenario_points() -> List[GridPoint]:
    return expand_grid(SCENARIO_GRID)


def run_scenario(defect: Defect, root: str,
                 backend: str = "interp") -> Dict[str, Any]:
    """Play the seed / warm / differential battery for one defect.

    Returns ``{"fired": set-of-codes, "expected": set, "exact": bool,
    ...}`` where ``exact`` is the corpus' acceptance condition: the
    fired set equals exactly the defect's own code (empty for the
    control).
    """
    points = scenario_points()

    seed_cache = defect.writer(root)
    explore(SCENARIO_SYSTEM, points, jobs=1, cache_dir=root,
            backend=backend, cache=seed_cache)

    warm_cache = defect.reader(root)
    explore(SCENARIO_SYSTEM, points, jobs=1, cache_dir=root,
            backend=backend, cache=warm_cache)
    diff = differential_check(SCENARIO_SYSTEM, points, warm_cache,
                              backend=backend)

    fired: Set[str] = {i.code for i in warm_cache.incidents}
    fired.update(i.code for i in diff["incidents"])
    expected: Set[str] = {defect.code} if defect.code else set()
    return {
        "defect": defect.name,
        "expected": expected,
        "fired": fired,
        "exact": fired == expected,
        "gate_incidents": [i.to_dict() for i in warm_cache.incidents],
        "diff_incidents": [i.to_dict() for i in diff["incidents"]],
        "diff_checked": diff["checked"],
    }


def run_corpus(root: str, backend: str = "interp"
               ) -> List[Dict[str, Any]]:
    """Run every seeded defect plus the control, each in its own
    cache directory; the explorer's self-test surface."""
    outcomes = []
    for defect in CORPUS + [CONTROL]:
        outcomes.append(run_scenario(
            defect, os.path.join(root, defect.name or "control"),
            backend=backend))
    return outcomes
