"""Sender x receiver product automaton over synthesized protocol FSMs.

The deadlock pass needs an execution model of one channel's two
controllers (:class:`~repro.protogen.fsm.ProtocolFsm` accessor/server
pair) *without* running the discrete-event simulator.  This module
builds that model: a finite product automaton whose states are

    (accessor state, server state, START level, DONE level, driven ID)

and whose moves follow the Moore-style reading of the synthesized
FSMs -- a state's actions set the control-line levels while the machine
sits in it, and a transition's guard is a conjunction of line-level
tests (``DONE = '1'``, ``ID = "01"``), the environment event
``invoke``, or a strobe event (``strobe`` / ``REQ toggle`` /
``schedule tick``).

Strobes synchronize: a strobe-guarded server transition can only fire
together with an accessor transition leaving a state that emits the
strobe (and is *forced* to, modelling the lockstep of the
one-clock-per-word protocols).  Everything else interleaves freely.

Exploration is a plain BFS; the product of two message-transfer
controllers is tiny (tens of states), and a hard cap guards against
pathological hand-built inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import AnalysisError
from repro.protogen.fsm import FsmTransition, ProtocolFsm

#: Events that synchronize the two sides instead of testing a level.
STROBE_TOKENS = ("strobe", "REQ toggle", "schedule tick")

#: Safety cap on explored product states.
MAX_PRODUCT_STATES = 20_000


# ---------------------------------------------------------------------------
# Guard / action micro-parsers
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Guard:
    """A parsed transition guard: a conjunction of atomic tests."""

    #: Required control-line levels, e.g. {"START": 1, "DONE": 0}.
    levels: Tuple[Tuple[str, int], ...] = ()
    #: Required ID code (bit string) or None.
    id_code: Optional[str] = None
    #: Strobe events the guard waits on.
    strobes: Tuple[str, ...] = ()
    #: True for the environment's ``invoke`` event.
    invoke: bool = False

    @property
    def is_tick(self) -> bool:
        return not (self.levels or self.id_code or self.strobes
                    or self.invoke)


def parse_guard(guard: Optional[str]) -> Guard:
    """Parse a transition guard string into a :class:`Guard`."""
    if guard is None:
        return Guard()
    levels: List[Tuple[str, int]] = []
    id_code: Optional[str] = None
    strobes: List[str] = []
    invoke = False
    for raw in guard.split(" and "):
        atom = raw.strip()
        if not atom:
            continue
        if atom == "invoke":
            invoke = True
        elif atom in STROBE_TOKENS:
            strobes.append(atom)
        elif atom.startswith("ID = "):
            id_code = atom[len("ID = "):].strip('"')
        elif " = " in atom:
            line, value = atom.split(" = ", 1)
            levels.append((line.strip(), int(value.strip().strip("'"))))
        else:
            raise AnalysisError(f"cannot parse guard atom {atom!r}")
    return Guard(levels=tuple(levels), id_code=id_code,
                 strobes=tuple(strobes), invoke=invoke)


@dataclass(frozen=True)
class StateEffects:
    """Control-line effects of sitting in one FSM state."""

    #: Line assignments, e.g. {"START": 1}.
    drives: Tuple[Tuple[str, int], ...] = ()
    #: ID code driven onto the bus, if any.
    id_code: Optional[str] = None
    #: Strobe events emitted by this state.
    strobes: Tuple[str, ...] = ()


def parse_actions(actions: Tuple[str, ...]) -> StateEffects:
    """Extract the control-line effects from a state's action strings.

    Data moves (``drive DATA(...)``, ``latch ...``, ``commit/...``) are
    irrelevant to the control structure and ignored.
    """
    drives: List[Tuple[str, int]] = []
    id_code: Optional[str] = None
    strobes: List[str] = []
    for action in actions:
        if action in STROBE_TOKENS:
            strobes.append(action)
        elif action.startswith("drive ID = "):
            id_code = action[len("drive ID = "):].strip('"')
        elif " <= '" in action and not action.startswith(("drive ",
                                                          "latch ")):
            line, value = action.split(" <= ", 1)
            drives.append((line.strip(), int(value.strip("'"))))
    return StateEffects(drives=tuple(drives), id_code=id_code,
                        strobes=tuple(strobes))


# ---------------------------------------------------------------------------
# Product automaton
# ---------------------------------------------------------------------------

#: (accessor state, server state, frozen {line: level}, driven ID)
ProductState = Tuple[str, str, FrozenSet[Tuple[str, int]], Optional[str]]

#: A fired move: (accessor transition or None, server transition or None)
Move = Tuple[Optional[FsmTransition], Optional[FsmTransition]]


@dataclass
class ProductResult:
    """Outcome of exploring one channel's product automaton."""

    accessor: ProtocolFsm
    server: ProtocolFsm
    #: Every reachable product state.
    reachable: Set[ProductState] = field(default_factory=set)
    #: Reachable states with no enabled move (excluding the rest state).
    deadlocks: List[ProductState] = field(default_factory=list)
    #: Reachable states from which no rest state is reachable again.
    livelocked: List[ProductState] = field(default_factory=list)
    #: FSM states never visited, per side.
    unreachable_accessor: List[str] = field(default_factory=list)
    unreachable_server: List[str] = field(default_factory=list)
    #: Transitions that never fired although their source was visited.
    never_fired: List[Tuple[str, FsmTransition]] = field(
        default_factory=list)

    @property
    def ok(self) -> bool:
        return not (self.deadlocks or self.livelocked
                    or self.unreachable_accessor or self.unreachable_server
                    or self.never_fired)

    def describe_state(self, state: ProductState) -> str:
        a_state, s_state, lines, id_code = state
        levels = ", ".join(f"{line}={value}"
                           for line, value in sorted(lines))
        text = (f"accessor@{a_state}, server@{s_state}"
                + (f", {levels}" if levels else ""))
        if id_code is not None:
            text += f', ID="{id_code}"'
        return text


class _Explorer:
    """BFS over the product automaton of one FSM pair."""

    def __init__(self, accessor: ProtocolFsm, server: ProtocolFsm):
        self.accessor = accessor
        self.server = server
        self.a_effects = {s.name: parse_actions(s.actions)
                          for s in accessor.states}
        self.s_effects = {s.name: parse_actions(s.actions)
                          for s in server.states}
        self.a_guards = {id(t): parse_guard(t.guard)
                         for t in accessor.transitions}
        self.s_guards = {id(t): parse_guard(t.guard)
                         for t in server.transitions}
        self.fired: Set[int] = set()
        self.edges: Dict[ProductState, List[ProductState]] = {}

    # -- state helpers ------------------------------------------------------

    def _apply(self, lines: Dict[str, int], id_code: Optional[str],
               effects: StateEffects) -> Tuple[Dict[str, int],
                                               Optional[str]]:
        updated = dict(lines)
        for line, value in effects.drives:
            updated[line] = value
        if effects.id_code is not None:
            id_code = effects.id_code
        return updated, id_code

    def _initial(self) -> ProductState:
        a0 = self.accessor.initial_state().name
        s0 = self.server.initial_state().name
        lines: Dict[str, int] = {}
        id_code: Optional[str] = None
        lines, id_code = self._apply(lines, id_code, self.a_effects[a0])
        lines, id_code = self._apply(lines, id_code, self.s_effects[s0])
        return (a0, s0, frozenset(lines.items()), id_code)

    def _satisfied(self, guard: Guard, lines: Dict[str, int],
                   id_code: Optional[str]) -> bool:
        """Level/ID atoms only; strobes are handled by synchronization
        and ``invoke`` by :meth:`_moves` (transaction gating)."""
        for line, value in guard.levels:
            if lines.get(line, 0) != value:
                return False
        if guard.id_code is not None and id_code != guard.id_code:
            return False
        return True

    # -- moves --------------------------------------------------------------

    def _moves(self, state: ProductState) -> List[Move]:
        a_state, s_state, frozen, id_code = state
        lines = dict(frozen)
        moves: List[Move] = []

        emitted = self.a_effects[a_state].strobes
        server_resting = s_state == self.server.initial_state().name
        for t_a in self.accessor.successors(a_state):
            guard_a = self.a_guards[id(t_a)]
            if guard_a.strobes or not self._satisfied(guard_a, lines,
                                                      id_code):
                continue
            if guard_a.invoke and not server_resting:
                # The bus arbiter serializes messages: a new invocation
                # only starts once the peer has returned to rest.
                continue
            # Forced synchronization with strobe-waiting server moves.
            syncs = []
            if emitted:
                for t_s in self.server.successors(s_state):
                    guard_s = self.s_guards[id(t_s)]
                    if not guard_s.strobes:
                        continue
                    if not set(guard_s.strobes) <= set(emitted):
                        continue
                    if self._satisfied(guard_s, lines, id_code):
                        syncs.append(t_s)
            if syncs:
                moves.extend((t_a, t_s) for t_s in syncs)
            else:
                moves.append((t_a, None))

        for t_s in self.server.successors(s_state):
            guard_s = self.s_guards[id(t_s)]
            if guard_s.strobes:
                continue  # only fires through synchronization
            if self._satisfied(guard_s, lines, id_code):
                moves.append((None, t_s))
        return moves

    def _fire(self, state: ProductState, move: Move) -> ProductState:
        a_state, s_state, frozen, id_code = state
        lines = dict(frozen)
        t_a, t_s = move
        if t_a is not None:
            self.fired.add(id(t_a))
            a_state = t_a.target
            lines, id_code = self._apply(lines, id_code,
                                         self.a_effects[a_state])
        if t_s is not None:
            self.fired.add(id(t_s))
            s_state = t_s.target
            lines, id_code = self._apply(lines, id_code,
                                         self.s_effects[s_state])
        return (a_state, s_state, frozenset(lines.items()), id_code)

    # -- exploration --------------------------------------------------------

    def explore(self) -> ProductResult:
        result = ProductResult(self.accessor, self.server)
        initial = self._initial()
        frontier = [initial]
        result.reachable.add(initial)
        a0 = self.accessor.initial_state().name
        s0 = self.server.initial_state().name

        while frontier:
            state = frontier.pop()
            successors: List[ProductState] = []
            for move in self._moves(state):
                target = self._fire(state, move)
                successors.append(target)
                if target not in result.reachable:
                    if len(result.reachable) >= MAX_PRODUCT_STATES:
                        raise AnalysisError(
                            f"product automaton of {self.accessor.name} x "
                            f"{self.server.name} exceeds "
                            f"{MAX_PRODUCT_STATES} states")
                    result.reachable.add(target)
                    frontier.append(target)
            self.edges[state] = successors
            if not successors and not (state[0] == a0 and state[1] == s0):
                result.deadlocks.append(state)

        self._find_livelocks(result, a0, s0)
        self._find_unvisited(result)
        return result

    def _find_livelocks(self, result: ProductResult, a0: str,
                        s0: str) -> None:
        """States that can never again reach a rest (both-idle) state."""
        rests = {state for state in result.reachable
                 if state[0] == a0 and state[1] == s0}
        reverse: Dict[ProductState, List[ProductState]] = {
            state: [] for state in result.reachable}
        for source, targets in self.edges.items():
            for target in targets:
                reverse[target].append(source)
        # Seed with deadlock states too: a path doomed to deadlock is
        # already reported as P101, not a second time as livelock.
        seeds = rests | set(result.deadlocks)
        co_reachable: Set[ProductState] = set(seeds)
        stack = list(seeds)
        while stack:
            for predecessor in reverse[stack.pop()]:
                if predecessor not in co_reachable:
                    co_reachable.add(predecessor)
                    stack.append(predecessor)
        result.livelocked = sorted(
            (state for state in result.reachable
             if state not in co_reachable),
            key=lambda s: (s[0], s[1]))

    def _find_unvisited(self, result: ProductResult) -> None:
        seen_a = {state[0] for state in result.reachable}
        seen_s = {state[1] for state in result.reachable}
        result.unreachable_accessor = sorted(
            s.name for s in self.accessor.states if s.name not in seen_a)
        result.unreachable_server = sorted(
            s.name for s in self.server.states if s.name not in seen_s)
        for side, fsm, seen in (("accessor", self.accessor, seen_a),
                                ("server", self.server, seen_s)):
            for transition in fsm.transitions:
                if id(transition) in self.fired:
                    continue
                if transition.source in seen:
                    result.never_fired.append((side, transition))


def explore_product(accessor: ProtocolFsm,
                    server: ProtocolFsm) -> ProductResult:
    """Build and explore the product automaton of one channel pair."""
    return _Explorer(accessor, server).explore()
