"""Seeded-defect corpus validating the static analyzer.

Each :class:`SeededDefect` builds a *fresh* FLC refinement, injects
exactly one defect, and names the diagnostic code the analyzer must
report for it.  Two injection styles:

* structural mutations edit the refined spec in place (frozen
  dataclasses are copied and patched via ``object.__setattr__`` --
  deliberately bypassing constructor validation, since the point is to
  produce the inconsistent designs the validators would reject);
* controller mutations ride the ``fsm_transform`` hook of the handshake
  pass, rewriting the synthesized FSMs before product exploration.

``tests/test_mutations.py`` asserts every defect is caught and that the
unmutated builds stay diagnostic-free.
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass, replace
from typing import Callable, List, Optional

from repro.analysis.deadlock import FsmTransform
from repro.busgen.algorithm import generate_bus
from repro.protocols import (
    FULL_HANDSHAKE,
    HARDWIRED,
    Protocol,
    ProtectionLike,
    get_protocol,
)
from repro.protogen.fsm import FsmState, FsmTransition, ProtocolFsm
from repro.protogen.idassign import IdAssignment
from repro.protogen.procedures import FieldKind, Role
from repro.protogen.refine import RefinedSpec, refine_system
from repro.protogen.varproc import VariableProcess
from repro.spec.behavior import Behavior
from repro.spec.expr import BinOp, Const, Ref
from repro.spec.stmt import Assign, If, Nop, While
from repro.spec.types import BitType, IntType
from repro.spec.variable import Variable


@dataclass
class MutatedDesign:
    """A refined spec with one seeded defect (plus an optional FSM hook)."""

    spec: RefinedSpec
    fsm_transform: Optional[FsmTransform] = None


@dataclass(frozen=True)
class SeededDefect:
    name: str
    #: Diagnostic code the analyzer must report for this defect.
    code: str
    description: str
    build: Callable[[], MutatedDesign]


def build_target(protocol: Protocol = FULL_HANDSHAKE,
                 protection: ProtectionLike = None) -> RefinedSpec:
    """A fresh, defect-free FLC refinement to mutate."""
    from repro.apps.flc import build_flc

    model = build_flc()
    design = generate_bus(model.bus_b, protocol=protocol)
    return refine_system(model.system, [design], protocol=protocol,
                         protection=protection)


# ----------------------------------------------------------------------
# Structure patching helpers
# ----------------------------------------------------------------------

def _patch(frozen, **fields):
    """Copy a frozen dataclass and overwrite fields, skipping validation."""
    patched = copy.copy(frozen)
    for key, value in fields.items():
        object.__setattr__(patched, key, value)
    return patched


def _first_bus(spec: RefinedSpec):
    return spec.buses[0]


def _swap_behavior(spec: RefinedSpec, replacement: Behavior) -> None:
    spec.behaviors = [replacement if b.name == replacement.name else b
                      for b in spec.behaviors]


# ----------------------------------------------------------------------
# Controller (FSM) mutations, via the fsm_transform hook
# ----------------------------------------------------------------------

def _server_never_done(fsm: ProtocolFsm) -> ProtocolFsm:
    if fsm.role is not Role.SERVER:
        return fsm
    states = [replace(s, actions=tuple(a for a in s.actions
                                       if a != "DONE <= '1'"))
              for s in fsm.states]
    return replace(fsm, states=states)


def _accessor_ack_stuck(fsm: ProtocolFsm) -> ProtocolFsm:
    if fsm.role is not Role.ACCESSOR:
        return fsm
    transitions = [replace(t, guard="DONE = '1'")
                   if t.source.endswith("_ACK") and t.guard == "DONE = '0'"
                   else t
                   for t in fsm.transitions]
    return replace(fsm, transitions=transitions)


def _server_wrong_id(fsm: ProtocolFsm) -> ProtocolFsm:
    if fsm.role is not Role.SERVER:
        return fsm

    def flip(guard: Optional[str]) -> Optional[str]:
        if not guard:
            return guard
        match = re.search(r'ID = "([01]+)"', guard)
        if not match:
            return guard
        bits = match.group(1)
        flipped = "".join("1" if b == "0" else "0" for b in bits)
        return guard.replace(f'ID = "{bits}"', f'ID = "{flipped}"')

    transitions = [replace(t, guard=flip(t.guard)) for t in fsm.transitions]
    return replace(fsm, transitions=transitions)


def _accessor_skips_idle(fsm: ProtocolFsm) -> ProtocolFsm:
    if fsm.role is not Role.ACCESSOR:
        return fsm
    transitions = [replace(t, target="W0_REQ")
                   if t.target == "IDLE" and t.source != "IDLE"
                   else t
                   for t in fsm.transitions]
    return replace(fsm, transitions=transitions)


def _orphan_state(fsm: ProtocolFsm) -> ProtocolFsm:
    if fsm.role is not Role.ACCESSOR:
        return fsm
    states = list(fsm.states) + [FsmState("LIMBO")]
    transitions = list(fsm.transitions) + [FsmTransition("LIMBO", "LIMBO")]
    return replace(fsm, states=states, transitions=transitions)


def _fsm_defect(transform: FsmTransform) -> Callable[[], MutatedDesign]:
    def build() -> MutatedDesign:
        return MutatedDesign(build_target(), fsm_transform=transform)
    return build


def _protected_fsm_defect(transform: FsmTransform,
                          protection: str = "crc8",
                          ) -> Callable[[], MutatedDesign]:
    def build() -> MutatedDesign:
        return MutatedDesign(build_target(protection=protection),
                             fsm_transform=transform)
    return build


# ----------------------------------------------------------------------
# Temporal (P7xx) controller mutations
# ----------------------------------------------------------------------

def _last_word(fsm: ProtocolFsm, suffix: str) -> Optional[int]:
    """Highest word index among ``W{k}{suffix}`` state names."""
    indices = [int(m.group(1)) for s in fsm.states
               if (m := re.match(rf"W(\d+){re.escape(suffix)}$", s.name))]
    return max(indices) if indices else None


def _ack_never_raised(fsm: ProtocolFsm) -> ProtocolFsm:
    # Only the *final* serve state forgets DONE: earlier words complete
    # normally, so the violation is a genuinely temporal "response never
    # arrives" rather than a wholesale dead handshake.
    if fsm.role is not Role.SERVER:
        return fsm
    last = _last_word(fsm, "_SRV")
    if last is None:
        return fsm
    name = f"W{last}_SRV"
    states = [replace(s, actions=tuple(a for a in s.actions
                                       if a != "DONE <= '1'"))
              if s.name == name else s
              for s in fsm.states]
    return replace(fsm, states=states)


def _retry_counter_reset(fsm: ProtocolFsm) -> ProtocolFsm:
    # The retransmission back-edges lose their budget marks, so the
    # counter abstraction can no longer prove the loop exhausts the
    # plan's retry allowance.
    if fsm.role is not Role.ACCESSOR:
        return fsm
    return replace(fsm, transitions=[replace(t, is_retry=False)
                                     for t in fsm.transitions])


def _double_driver_on_nack(fsm: ProtocolFsm) -> ProtocolFsm:
    # The accessor "helpfully" holds the NACK wire low while waiting
    # for the final acknowledge -- the exact state in which the
    # protected write server drives its accept/NACK verdict.
    if fsm.role is not Role.ACCESSOR:
        return fsm
    last = _last_word(fsm, "_REQ")
    if last is None:
        return fsm
    name = f"W{last}_REQ"
    states = [replace(s, actions=s.actions + ("NACK <= '0'",))
              if s.name == name else s
              for s in fsm.states]
    return replace(fsm, states=states)


def _server_stutter_loop(fsm: ProtocolFsm) -> ProtocolFsm:
    # The final serve state oscillates with an echo twin while START
    # stays high.  Every transition remains fireable and rest remains
    # reachable, but a scheduler that keeps picking the server spins
    # forever -- completion now *relies* on fairness.
    if fsm.role is not Role.SERVER:
        return fsm
    last = _last_word(fsm, "_SRV")
    if last is None:
        return fsm
    serve = fsm.state(f"W{last}_SRV")
    echo = FsmState(f"W{last}_SRV2", actions=serve.actions)
    transitions = list(fsm.transitions) + [
        FsmTransition(serve.name, echo.name, guard="START = '1'"),
        FsmTransition(echo.name, serve.name, guard="START = '1'"),
        FsmTransition(echo.name, f"W{last}_DROP", guard="START = '0'"),
    ]
    return replace(fsm, states=list(fsm.states) + [echo],
                   transitions=transitions)


def _retry_without_plan(fsm: ProtocolFsm) -> ProtocolFsm:
    # A hand-added retransmission loop on an *unprotected* bus: the
    # verifier has no plan to budget it, so the counter abstraction
    # cannot bound the loop at all.
    if fsm.role is not Role.ACCESSOR:
        return fsm
    last = _last_word(fsm, "_ACK")
    if last is None:
        return fsm
    transitions = list(fsm.transitions) + [
        FsmTransition(f"W{last}_ACK", "W0_REQ", guard="DONE = '1'"),
    ]
    return replace(fsm, transitions=transitions)


# ----------------------------------------------------------------------
# Structural mutations
# ----------------------------------------------------------------------

def _unarbitrated_bus() -> MutatedDesign:
    # Legitimate fixed-delay design: the analyzer still warns that two
    # accessors share control-line-free wires.
    return MutatedDesign(build_target(get_protocol("fixed_delay")))


def _hardwired_shared() -> MutatedDesign:
    spec = build_target()
    bus = _first_bus(spec)
    bus.structure = _patch(bus.structure, protocol=HARDWIRED)
    return MutatedDesign(spec)


def _bypass_access() -> MutatedDesign:
    spec = build_target()
    original = {b.name: b for b in spec.original.behaviors}
    accessor = _first_bus(spec).group.channels[0].accessor.name
    _swap_behavior(spec, original[accessor])
    return MutatedDesign(spec)


def _double_server() -> MutatedDesign:
    spec = build_target()
    bus = _first_bus(spec)
    first = bus.variable_processes[0]
    duplicate = VariableProcess(name=f"{first.name}_shadow",
                                variable=first.variable,
                                services=first.services)
    bus.variable_processes = list(bus.variable_processes) + [duplicate]
    return MutatedDesign(spec)


def _duplicate_ids() -> MutatedDesign:
    spec = build_target()
    bus = _first_bus(spec)
    ids = bus.structure.ids
    clones = IdAssignment(width=ids.width,
                          codes={name: 0 for name in ids.codes})
    bus.structure = _patch(bus.structure, ids=clones)
    return MutatedDesign(spec)


def _truncated_field() -> MutatedDesign:
    spec = build_target()
    bus = _first_bus(spec)
    layout = bus.procedures[bus.group.channels[0].name].layout
    layout.fields = tuple(
        replace(f, bits=f.bits - 4) if f.kind is FieldKind.DATA else f
        for f in layout.fields)
    return MutatedDesign(spec)


def _overlapping_fields() -> MutatedDesign:
    spec = build_target()
    bus = _first_bus(spec)
    layout = bus.procedures[bus.group.channels[0].name].layout
    layout.fields = tuple(
        replace(f, offset=max(0, f.offset - 4)) if f.kind is FieldKind.DATA
        else f
        for f in layout.fields)
    return MutatedDesign(spec)


def _id_overflow() -> MutatedDesign:
    spec = build_target()
    bus = _first_bus(spec)
    ids = bus.structure.ids
    codes = dict(ids.codes)
    victim = sorted(codes)[-1]
    codes[victim] = 1 << (ids.width + 2)
    bus.structure = _patch(bus.structure,
                           ids=IdAssignment(width=ids.width, codes=codes))
    return MutatedDesign(spec)


def _id_capacity() -> MutatedDesign:
    spec = build_target()
    bus = _first_bus(spec)
    # Declare fewer ID lines than clog2(N) channels require.
    bus.structure = _patch(bus.structure,
                           ids=IdAssignment(width=0, codes={
                               name: 0 for name in bus.structure.ids.codes}))
    return MutatedDesign(spec)


def _narrow_hardwired() -> MutatedDesign:
    spec = build_target()
    bus = _first_bus(spec)
    narrow = min(bus.group.max_message_bits - 1, bus.structure.width)
    bus.structure = _patch(bus.structure, protocol=HARDWIRED, width=narrow)
    return MutatedDesign(spec)


def _dead_channel() -> MutatedDesign:
    spec = build_target()
    _first_bus(spec).group.channels[0].accesses = 0
    return MutatedDesign(spec)


def _unused_variable() -> MutatedDesign:
    spec = build_target()
    spec.original.variables.append(
        Variable("forgotten_scratch", BitType(8)))
    return MutatedDesign(spec)


def _constant_lines() -> MutatedDesign:
    spec = build_target()
    bus = _first_bus(spec)
    # Wider than the largest message, so its single word cannot reach
    # the top lines.
    bus.structure = _patch(bus.structure,
                           width=bus.group.max_message_bits + 4)
    return MutatedDesign(spec)


def _uncalled_procedure() -> MutatedDesign:
    spec = build_target()
    accessor = _first_bus(spec).group.channels[0].accessor.name
    _swap_behavior(spec, Behavior(accessor, [Nop()]))
    return MutatedDesign(spec)


# ----------------------------------------------------------------------
# Protection mutations (P6xx, fault tolerance)
# ----------------------------------------------------------------------

def _protection_plan(spec: RefinedSpec):
    plan = _first_bus(spec).structure.protection
    assert plan is not None
    return plan


def _patch_plan(spec: RefinedSpec, **fields) -> None:
    bus = _first_bus(spec)
    bus.structure = _patch(bus.structure,
                           protection=_patch(_protection_plan(spec),
                                             **fields))


def _check_field_ignored() -> MutatedDesign:
    # The plan promises parity, but the layout carries no check field:
    # the receiver has nothing to verify, so corruption sails through.
    spec = build_target(protection="parity")
    bus = _first_bus(spec)
    for pair in bus.procedures.values():
        layout = pair.layout
        layout.fields = tuple(f for f in layout.fields
                              if f.kind is not FieldKind.CHECK)
    return MutatedDesign(spec)


def _retry_never_decrements() -> MutatedDesign:
    # A zero retry step leaves the budget untouched on every failure.
    spec = build_target(protection="crc8")
    _patch_plan(spec, retry_step=0)
    return MutatedDesign(spec)


def _nack_on_done() -> MutatedDesign:
    # NACK wired onto DONE: the reject signal and the acknowledge are
    # one physical wire.
    spec = build_target(protection="parity")
    _patch_plan(spec, nack_line="DONE")
    return MutatedDesign(spec)


def _zero_timeout() -> MutatedDesign:
    # Every bounded wait expires on the spot.
    spec = build_target(protection="crc8")
    _patch_plan(spec, timeout_clocks=0)
    return MutatedDesign(spec)


# ----------------------------------------------------------------------
# Value-flow mutations (P5xx, abstract interpretation)
# ----------------------------------------------------------------------

def _original_vars(spec: RefinedSpec):
    return {v.name: v for v in spec.original.variables}


def _behavior(spec: RefinedSpec, name: str) -> Behavior:
    return next(b for b in spec.behaviors if b.name == name)


def _const_overflow() -> MutatedDesign:
    # 70000 is disjoint from int16's [-32768, 32767]: a *proven*
    # overflow, not a declared-width mismatch.
    spec = build_target()
    ctrl_out = _original_vars(spec)["ctrl_out"]
    old = _behavior(spec, "CONVERT_CTRL")
    _swap_behavior(spec, Behavior(
        old.name,
        list(old.body) + [Assign(ctrl_out, Const(70000))],
        local_variables=list(old.local_variables)))
    return MutatedDesign(spec)


def _false_guard() -> MutatedDesign:
    # 0 > 1 is constant-false, so the then-arm is provably dead.
    spec = build_target()
    crisp_out = _original_vars(spec)["crisp_out"]
    old = _behavior(spec, "CENTROID")
    _swap_behavior(spec, Behavior(
        old.name,
        [If(BinOp(">", Const(0), Const(1)),
            [Assign(crisp_out, Const(1))], [])] + list(old.body),
        local_variables=list(old.local_variables)))
    return MutatedDesign(spec)


def _while_never_runs() -> MutatedDesign:
    # flag is 0 and never written, so the loop guard is constant-false.
    spec = build_target()
    ctrl_out = _original_vars(spec)["ctrl_out"]
    flag = Variable("flag", IntType(16), init=0)
    old = _behavior(spec, "CONVERT_CTRL")
    _swap_behavior(spec, Behavior(
        old.name,
        list(old.body) + [While(BinOp("/=", Ref(flag), Const(0)),
                                [Assign(ctrl_out, Const(1))])],
        local_variables=list(old.local_variables) + [flag]))
    return MutatedDesign(spec)


def _unbounded_send_loop() -> MutatedDesign:
    # spin stays 1 forever, so the rewritten accessor body -- channel
    # sends included -- repeats without any provable trip bound.
    spec = build_target()
    spin = Variable("spin", IntType(16), init=1)
    old = _behavior(spec, "EVAL_R3")
    _swap_behavior(spec, Behavior(
        old.name,
        [While(BinOp("/=", Ref(spin), Const(0)), list(old.body))],
        local_variables=list(old.local_variables) + [spin]))
    return MutatedDesign(spec)


def _div_by_zero() -> MutatedDesign:
    # den2 is exactly [0, 0]: a certain division by zero.
    spec = build_target()
    crisp_out = _original_vars(spec)["crisp_out"]
    num2 = Variable("num2", IntType(16), init=5)
    den2 = Variable("den2", IntType(16), init=0)
    old = _behavior(spec, "CENTROID")
    _swap_behavior(spec, Behavior(
        old.name,
        [Assign(crisp_out, BinOp("/", Ref(num2), Ref(den2)))]
        + list(old.body),
        local_variables=list(old.local_variables) + [num2, den2]))
    return MutatedDesign(spec)


def _infeasible_width() -> MutatedDesign:
    # A 1-line bus moves 0.5 bits/clock; the proven lower demand bound
    # of the FLC accessors already exceeds that, so Equation 1 is
    # violated on *every* execution.
    spec = build_target()
    bus = _first_bus(spec)
    bus.structure = _patch(bus.structure, width=1)
    return MutatedDesign(spec)


CORPUS: List[SeededDefect] = [
    SeededDefect(
        "server_never_done", "P101",
        "server FSM never raises DONE, so the accessor waits forever",
        _fsm_defect(_server_never_done)),
    SeededDefect(
        "server_wrong_id", "P101",
        "server decodes the complement of its assigned ID code",
        _fsm_defect(_server_wrong_id)),
    SeededDefect(
        "accessor_skips_idle", "P102",
        "accessor's final transition re-enters the word cycle instead "
        "of IDLE, so the pair never returns to rest",
        _fsm_defect(_accessor_skips_idle)),
    SeededDefect(
        "orphan_state", "P103",
        "accessor FSM carries a state no transition ever reaches",
        _fsm_defect(_orphan_state)),
    SeededDefect(
        "accessor_ack_stuck", "P104",
        "accessor waits for DONE = '1' in the acknowledge state, a "
        "level the server has already dropped",
        _fsm_defect(_accessor_ack_stuck)),
    SeededDefect(
        "unarbitrated_bus", "P201",
        "two accessors share a fixed-delay bus with no control lines",
        _unarbitrated_bus),
    SeededDefect(
        "hardwired_shared", "P201",
        "two channels mapped onto a non-shareable hardwired port",
        _hardwired_shared),
    SeededDefect(
        "bypass_access", "P202",
        "an accessor behavior was restored to its unrewritten form and "
        "touches the remote variable directly",
        _bypass_access),
    SeededDefect(
        "double_server", "P203",
        "a second variable process claims an already-served variable",
        _double_server),
    SeededDefect(
        "duplicate_ids", "P204",
        "both channels of the bus share ID code 0",
        _duplicate_ids),
    SeededDefect(
        "truncated_field", "P301",
        "the DATA field is four bits narrower than the variable",
        _truncated_field),
    SeededDefect(
        "id_capacity", "P302",
        "the bus declares zero ID lines for two channels",
        _id_capacity),
    SeededDefect(
        "id_overflow", "P302",
        "one channel's ID code exceeds what the ID lines can encode",
        _id_overflow),
    SeededDefect(
        "overlapping_fields", "P303",
        "the DATA field is shifted onto the ADDRESS field, double-"
        "driving some message bits and losing others",
        _overlapping_fields),
    SeededDefect(
        "narrow_hardwired", "P304",
        "a hardwired port narrower than the largest message",
        _narrow_hardwired),
    SeededDefect(
        "dead_channel", "P401",
        "a channel's access count is forced to zero",
        _dead_channel),
    SeededDefect(
        "unused_variable", "P402",
        "a shared variable no behavior references",
        _unused_variable),
    SeededDefect(
        "constant_lines", "P403",
        "the bus is four lines wider than any word uses",
        _constant_lines),
    SeededDefect(
        "uncalled_procedure", "P404",
        "the accessor behavior is emptied so the generated procedure "
        "is never called",
        _uncalled_procedure),
    SeededDefect(
        "const_overflow", "P501",
        "a 16-bit signed output is assigned the constant 70000",
        _const_overflow),
    SeededDefect(
        "false_guard", "P502",
        "an if-arm guarded by the constant-false comparison 0 > 1",
        _false_guard),
    SeededDefect(
        "while_never_runs", "P502",
        "a while loop whose guard tests a flag proven to stay zero",
        _while_never_runs),
    SeededDefect(
        "unbounded_send_loop", "P503",
        "the channel-sending accessor body is wrapped in a loop with "
        "no provable trip bound",
        _unbounded_send_loop),
    SeededDefect(
        "div_by_zero", "P504",
        "a division whose divisor is the constant zero",
        _div_by_zero),
    SeededDefect(
        "infeasible_width", "P505",
        "the bus is narrowed to one line, below the proven worst-case "
        "channel demand",
        _infeasible_width),
    SeededDefect(
        "check_field_ignored", "P601",
        "a parity-protected bus whose message layouts carry no check "
        "field",
        _check_field_ignored),
    SeededDefect(
        "retry_never_decrements", "P602",
        "the protection plan's retry step is zeroed, so the retry "
        "budget never shrinks",
        _retry_never_decrements),
    SeededDefect(
        "nack_on_done", "P603",
        "the NACK line is wired onto the DONE control line",
        _nack_on_done),
    SeededDefect(
        "zero_timeout", "P604",
        "the protection timeout constant is zeroed",
        _zero_timeout),
    SeededDefect(
        "ack_never_raised", "P701",
        "the server's final serve state forgets to raise DONE, so the "
        "last word's request is never acknowledged",
        _fsm_defect(_ack_never_raised)),
    SeededDefect(
        "retry_counter_reset_in_loop", "P702",
        "the retransmission edges lose their retry-budget marks, so "
        "the loop provably never exhausts the plan's allowance",
        _protected_fsm_defect(_retry_counter_reset)),
    SeededDefect(
        "double_driver_on_nack", "P703",
        "the accessor drives the NACK wire in the same reachable state "
        "where the protected write server drives its verdict",
        _protected_fsm_defect(_double_driver_on_nack)),
    SeededDefect(
        "server_stutter_loop", "P704",
        "the final serve state oscillates with an echo twin while "
        "START is high: completion relies entirely on fair scheduling",
        _fsm_defect(_server_stutter_loop)),
    SeededDefect(
        "retry_without_plan", "P705",
        "a hand-added retransmission loop on an unprotected bus defeats "
        "the counter abstraction (no plan to budget it)",
        _fsm_defect(_retry_without_plan)),
]
