"""Dead-channel / unused-variable / constant-line detection (P4xx).

Warnings about design elements that cost wires or gates without moving
data:

* **P401** -- a channel whose access count is zero: it earned ID space
  and procedures but never transfers.
* **P402** -- a shared variable no behavior references and no variable
  process serves: storage with no readers or writers.
* **P403** -- DATA lines no word of any channel ever drives: they are
  constant wires that should be trimmed from the bus.
* **P404** -- a generated accessor procedure the refined behaviors
  never call although the channel claims traffic: the rewrite step and
  the channel extraction disagree.
"""

from __future__ import annotations

from typing import Set

from repro.analysis.diagnostics import (
    DiagnosticSet,
    Severity,
    SourceLocation,
)
from repro.protogen.refine import RefinedSpec
from repro.spec.stmt import Call, walk


def check_dead_code(spec: RefinedSpec,
                    diagnostics: DiagnosticSet) -> None:
    _check_dead_channels(spec, diagnostics)
    _check_unused_variables(spec, diagnostics)
    _check_constant_lines(spec, diagnostics)
    _check_uncalled_procedures(spec, diagnostics)


def _check_dead_channels(spec: RefinedSpec,
                         diagnostics: DiagnosticSet) -> None:
    for bus in spec.buses:
        for channel in bus.group:
            if channel.accesses > 0:
                continue
            diagnostics.add(
                "P401", Severity.WARNING,
                f"channel {channel.describe()} never transfers; it "
                "still occupies an ID code and two procedures",
                SourceLocation("channel", channel.name,
                               detail=f"bus {bus.name}"),
                hint="drop the channel or fix the access analysis",
            )


def _check_unused_variables(spec: RefinedSpec,
                            diagnostics: DiagnosticSet) -> None:
    referenced = set()
    for behavior in spec.original.behaviors:
        referenced |= behavior.global_variables()
    served = set(spec.served_variables())
    for variable in spec.original.variables:
        if variable in referenced or variable in served:
            continue
        diagnostics.add(
            "P402", Severity.WARNING,
            f"shared variable {variable.name} is referenced by no "
            "behavior and served by no variable process",
            SourceLocation("variable", variable.name),
        )


def _check_constant_lines(spec: RefinedSpec,
                          diagnostics: DiagnosticSet) -> None:
    from repro.analysis.width import _span

    for bus in spec.buses:
        width = bus.structure.width
        driven: Set[int] = set()
        for channel in bus.group:
            layout = bus.procedures[channel.name].layout
            for word in layout.words(width):
                for word_slice in word.slices:
                    driven.update(range(
                        word_slice.word_offset,
                        word_slice.word_offset + word_slice.bits))
        constant = sorted(set(range(width)) - driven)
        if not constant:
            continue
        diagnostics.add(
            "P403", Severity.WARNING,
            f"DATA line(s) {_span(constant)} are driven by no word of "
            f"any channel: {len(constant)} constant wire(s)",
            SourceLocation("bus", bus.name, detail=f"width {width}"),
            hint="narrow the bus or re-run bus generation",
        )


def _check_uncalled_procedures(spec: RefinedSpec,
                               diagnostics: DiagnosticSet) -> None:
    called: Set[str] = set()
    for behavior in spec.behaviors:
        for stmt in walk(behavior.body):
            if isinstance(stmt, Call):
                called.add(getattr(stmt.procedure, "name",
                                   str(stmt.procedure)))
    for bus in spec.buses:
        for channel in bus.group:
            if channel.accesses == 0:
                continue  # already reported as P401
            accessor = bus.procedures[channel.name].accessor
            if accessor.name in called:
                continue
            diagnostics.add(
                "P404", Severity.WARNING,
                f"procedure {accessor.name} is generated for "
                f"{channel.accesses} access(es) but no refined "
                "behavior calls it",
                SourceLocation("channel", channel.name,
                               detail=f"bus {bus.name}"),
                hint="the accessor behavior was not rewritten against "
                     "this bus",
            )
