"""Abstract interpretation over the spec language.

Interval + congruence domains (:mod:`~repro.analysis.absint.domain`), a
widening/narrowing fixpoint interpreter with loop trip-count bounds
(:mod:`~repro.analysis.absint.engine`), statically proven channel
access-count / bit-volume / rate bounds
(:mod:`~repro.analysis.absint.rates`) and the P5xx diagnostics pass
(:mod:`~repro.analysis.absint.passes`).
"""

from repro.analysis.absint.domain import AbsVal, Congruence, Interval
from repro.analysis.absint.engine import (
    Finding,
    TripBounds,
    ValueAnalysis,
    analyze_behavior,
    analyze_behaviors,
    analyze_refined_values,
)
from repro.analysis.absint.passes import check_value_flow
from repro.analysis.absint.rates import (
    ChannelStaticBounds,
    StaticRateModel,
    refined_channel_bounds,
    static_channel_bounds,
    static_group_bounds,
)

__all__ = [
    "AbsVal",
    "ChannelStaticBounds",
    "Congruence",
    "Finding",
    "Interval",
    "StaticRateModel",
    "TripBounds",
    "ValueAnalysis",
    "analyze_behavior",
    "analyze_behaviors",
    "analyze_refined_values",
    "check_value_flow",
    "refined_channel_bounds",
    "static_channel_bounds",
    "static_group_bounds",
]
