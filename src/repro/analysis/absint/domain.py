"""Abstract domains for the value-flow analyzer.

Two classic numeric domains, combined as a reduced product:

* :class:`Interval` -- ``[lo, hi]`` bounds with ``±inf`` for unknown
  ends.  This is the workhorse: it proves value ranges (field
  tightening, P501 overflow), guard satisfiability (P502), divisor
  nonzero-ness (P504) and loop trip counts.
* :class:`Congruence` -- ``value ≡ residue (mod modulus)``, the
  arithmetic-congruence domain of Granger.  It keeps stride facts the
  interval loses (e.g. ``i*4`` is always a multiple of 4), which
  sharpens equality guards and constant propagation through joins.

:class:`AbsVal` pairs the two and applies the standard reduction:
a singleton interval forces a constant congruence and a constant
congruence collapses the interval.

Design notes
------------
* Bounds are Python ints or ``float('±inf')``; all arithmetic is
  inf-safe (``0 * inf`` is defined as 0 here -- the bound of an empty
  sum, not IEEE's NaN).
* Division truncates toward zero, matching VHDL ``/`` and the IR's
  ``_checked_div``; ``mod`` follows the dividend's sign (the IR's
  ``a - b * (a / b)``).
* Widening jumps straight to ``±inf``; precision is recovered by the
  engine's bounded loop unrolling and by wrapping to the declared type
  range at assignments (hardware truncation is a natural narrowing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.spec.types import ArrayType, BitType, DataType, IntType

NEG_INF = float("-inf")
POS_INF = float("inf")

Bound = Union[int, float]


def _mul_bound(a: Bound, b: Bound) -> Bound:
    """Inf-safe product: ``0 * inf == 0`` (bound of an empty term)."""
    if a == 0 or b == 0:
        return 0
    return a * b


def _tdiv_bound(a: Bound, b: Bound) -> Bound:
    """Truncate-toward-zero division of two bounds (``b != 0``)."""
    if a == 0:
        return 0
    if math.isinf(a):
        return a if b > 0 else -a
    if math.isinf(b):
        return 0
    quotient = abs(int(a)) // abs(int(b))
    return quotient if (a >= 0) == (b >= 0) else -quotient


def _as_int(value: Bound) -> Bound:
    """Normalize finite bounds to int so equality/hash are stable."""
    if isinstance(value, float) and math.isfinite(value):
        return int(value)
    return value


@dataclass(frozen=True)
class Interval:
    """A (possibly unbounded) integer interval; ``lo > hi`` is bottom."""

    lo: Bound
    hi: Bound

    # ------------------------------------------------------------------
    # Constructors / predicates
    # ------------------------------------------------------------------

    @classmethod
    def top(cls) -> "Interval":
        return cls(NEG_INF, POS_INF)

    @classmethod
    def bottom(cls) -> "Interval":
        return cls(POS_INF, NEG_INF)

    @classmethod
    def const(cls, value: int) -> "Interval":
        return cls(value, value)

    @classmethod
    def of(cls, lo: Bound, hi: Bound) -> "Interval":
        return cls(_as_int(lo), _as_int(hi))

    @property
    def is_bottom(self) -> bool:
        return self.lo > self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == NEG_INF and self.hi == POS_INF

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi and not math.isinf(self.lo)

    @property
    def is_finite(self) -> bool:
        return (not self.is_bottom and not math.isinf(self.lo)
                and not math.isinf(self.hi))

    def contains(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def contains_zero(self) -> bool:
        return self.contains(0)

    def definitely_nonzero(self) -> bool:
        return not self.is_bottom and not self.contains(0)

    def definitely_zero(self) -> bool:
        return self.lo == 0 and self.hi == 0

    # ------------------------------------------------------------------
    # Lattice operations
    # ------------------------------------------------------------------

    def join(self, other: "Interval") -> "Interval":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return Interval.of(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        return Interval.of(max(self.lo, other.lo), min(self.hi, other.hi))

    def widen(self, other: "Interval") -> "Interval":
        """Standard interval widening: unstable bounds jump to ±inf."""
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        lo = self.lo if other.lo >= self.lo else NEG_INF
        hi = self.hi if other.hi <= self.hi else POS_INF
        return Interval.of(lo, hi)

    def narrow(self, other: "Interval") -> "Interval":
        """Standard narrowing: refine only the infinite bounds."""
        if self.is_bottom or other.is_bottom:
            return other
        lo = other.lo if self.lo == NEG_INF else self.lo
        hi = other.hi if self.hi == POS_INF else self.hi
        return Interval.of(lo, hi)

    def subset_of(self, other: "Interval") -> bool:
        if self.is_bottom:
            return True
        return other.lo <= self.lo and self.hi <= other.hi

    def disjoint_from(self, other: "Interval") -> bool:
        if self.is_bottom or other.is_bottom:
            return True
        return self.hi < other.lo or other.hi < self.lo

    # ------------------------------------------------------------------
    # Arithmetic transfer functions
    # ------------------------------------------------------------------

    def add(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        return Interval.of(self.lo + other.lo, self.hi + other.hi)

    def sub(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        return Interval.of(self.lo - other.hi, self.hi - other.lo)

    def neg(self) -> "Interval":
        if self.is_bottom:
            return self
        return Interval.of(-self.hi, -self.lo)

    def abs_(self) -> "Interval":
        if self.is_bottom:
            return self
        if self.lo >= 0:
            return self
        if self.hi <= 0:
            return self.neg()
        return Interval.of(0, max(-self.lo, self.hi))

    def mul(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        products = [_mul_bound(a, b)
                    for a in (self.lo, self.hi)
                    for b in (other.lo, other.hi)]
        return Interval.of(min(products), max(products))

    def _nonzero_parts(self) -> Tuple["Interval", ...]:
        """Split into the negative and positive sub-ranges (no zero)."""
        parts = []
        if self.lo < 0:
            parts.append(Interval.of(self.lo, min(self.hi, -1)))
        if self.hi > 0:
            parts.append(Interval.of(max(self.lo, 1), self.hi))
        return tuple(p for p in parts if not p.is_bottom)

    def truncdiv(self, other: "Interval") -> "Interval":
        """Quotient interval over the nonzero part of ``other``.

        Returns bottom when the divisor is provably zero.  Zero-divisor
        *possibility* is reported separately (``other.contains_zero()``).
        """
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        result = Interval.bottom()
        for part in other._nonzero_parts():
            quotients = [_tdiv_bound(a, b)
                         for a in (self.lo, self.hi)
                         for b in (part.lo, part.hi)]
            result = result.join(Interval.of(min(quotients), max(quotients)))
        return result

    def mod_(self, other: "Interval") -> "Interval":
        """Remainder with the dividend's sign (VHDL-flavoured ``rem``)."""
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        parts = other._nonzero_parts()
        if not parts:
            return Interval.bottom()
        max_abs_divisor: Bound = 0
        for part in parts:
            max_abs_divisor = max(max_abs_divisor,
                                  abs(part.lo), abs(part.hi))
        limit = max_abs_divisor - 1
        lo: Bound = -limit if self.lo < 0 else 0
        hi: Bound = limit if self.hi > 0 else 0
        # |remainder| <= |dividend| as well.
        return Interval.of(lo, hi).meet(
            Interval.of(min(self.lo, 0), max(self.hi, 0)))

    def min_(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        return Interval.of(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_(self, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        return Interval.of(max(self.lo, other.lo), max(self.hi, other.hi))

    # ------------------------------------------------------------------
    # Comparisons and logic (results are {0,1} intervals)
    # ------------------------------------------------------------------

    @staticmethod
    def _bool(can_be_false: bool, can_be_true: bool) -> "Interval":
        if can_be_true and can_be_false:
            return Interval.of(0, 1)
        if can_be_true:
            return Interval.const(1)
        if can_be_false:
            return Interval.const(0)
        return Interval.bottom()

    def cmp(self, op: str, other: "Interval") -> "Interval":
        if self.is_bottom or other.is_bottom:
            return Interval.bottom()
        if op == "<":
            return self._bool(self.hi >= other.lo, self.lo < other.hi)
        if op == "<=":
            return self._bool(self.hi > other.lo, self.lo <= other.hi)
        if op == ">":
            return other.cmp("<", self)
        if op == ">=":
            return other.cmp("<=", self)
        if op == "=":
            if self.is_const and other.is_const:
                return Interval.const(int(self.lo == other.lo))
            return self._bool(True, not self.disjoint_from(other))
        if op == "/=":
            equal = self.cmp("=", other)
            return equal.logical_not()
        raise ValueError(f"unknown comparison {op!r}")

    def truthiness(self) -> "Interval":
        """{0,1} interval for C-style truth (nonzero is true)."""
        if self.is_bottom:
            return self
        return self._bool(self.contains_zero(), not self.definitely_zero())

    def logical_not(self) -> "Interval":
        t = self.truthiness()
        if t.is_bottom:
            return t
        return self._bool(t.contains(1), t.contains(0))

    def logical_and(self, other: "Interval") -> "Interval":
        a, b = self.truthiness(), other.truthiness()
        if a.is_bottom or b.is_bottom:
            return Interval.bottom()
        return self._bool(a.contains(0) or b.contains(0),
                          a.contains(1) and b.contains(1))

    def logical_or(self, other: "Interval") -> "Interval":
        a, b = self.truthiness(), other.truthiness()
        if a.is_bottom or b.is_bottom:
            return Interval.bottom()
        return self._bool(a.contains(0) and b.contains(0),
                          a.contains(1) or b.contains(1))

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥"
        lo = "-inf" if self.lo == NEG_INF else str(self.lo)
        hi = "+inf" if self.hi == POS_INF else str(self.hi)
        return f"[{lo}, {hi}]"


@dataclass(frozen=True)
class Congruence:
    """``value ≡ residue (mod modulus)``; ``modulus == 0`` is a constant,
    ``modulus == 1`` is top (every integer)."""

    modulus: int
    residue: int

    @classmethod
    def top(cls) -> "Congruence":
        return cls(1, 0)

    @classmethod
    def const(cls, value: int) -> "Congruence":
        return cls(0, value)

    @property
    def is_top(self) -> bool:
        return self.modulus == 1

    @property
    def is_const(self) -> bool:
        return self.modulus == 0

    def _normalize(self) -> "Congruence":
        if self.modulus > 1:
            return Congruence(self.modulus, self.residue % self.modulus)
        return self

    def contains(self, value: int) -> bool:
        if self.is_const:
            return value == self.residue
        return (value - self.residue) % self.modulus == 0

    def join(self, other: "Congruence") -> "Congruence":
        if self.is_const and other.is_const:
            if self.residue == other.residue:
                return self
            return Congruence(
                abs(self.residue - other.residue), self.residue)._normalize()
        modulus = math.gcd(self.modulus, other.modulus,
                           abs(self.residue - other.residue))
        if modulus == 0:
            return self
        return Congruence(modulus, self.residue)._normalize()

    def meet(self, other: "Congruence") -> Optional["Congruence"]:
        """Greatest lower bound; ``None`` when contradictory (bottom)."""
        if self.is_top:
            return other
        if other.is_top:
            return self
        if self.is_const:
            return self if other.contains(self.residue) else None
        if other.is_const:
            return other if self.contains(other.residue) else None
        # General CRT is overkill here; keep the coarser of the two when
        # compatible, else give up to top (sound).
        if self.modulus % other.modulus == 0 and other.contains(self.residue):
            return self
        if other.modulus % self.modulus == 0 and self.contains(other.residue):
            return other
        return Congruence.top()

    def add(self, other: "Congruence") -> "Congruence":
        if self.is_const and other.is_const:
            return Congruence.const(self.residue + other.residue)
        modulus = math.gcd(self.modulus, other.modulus)
        if modulus == 0:
            modulus = max(self.modulus, other.modulus)
        return Congruence(modulus, self.residue + other.residue)._normalize()

    def neg(self) -> "Congruence":
        return Congruence(self.modulus, -self.residue)._normalize()

    def sub(self, other: "Congruence") -> "Congruence":
        return self.add(other.neg())

    def mul(self, other: "Congruence") -> "Congruence":
        if self.is_const and other.is_const:
            return Congruence.const(self.residue * other.residue)
        modulus = math.gcd(self.modulus * other.modulus,
                           self.modulus * other.residue,
                           other.modulus * self.residue)
        if modulus == 0:
            return Congruence.const(self.residue * other.residue)
        return Congruence(modulus, self.residue * other.residue)._normalize()

    def __str__(self) -> str:
        if self.is_const:
            return f"={self.residue}"
        if self.is_top:
            return "⊤"
        return f"≡{self.residue} (mod {self.modulus})"


@dataclass(frozen=True)
class AbsVal:
    """Reduced product of an interval and a congruence."""

    interval: Interval
    congruence: Congruence

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def make(cls, interval: Interval,
             congruence: Optional[Congruence] = None) -> "AbsVal":
        congruence = congruence or Congruence.top()
        if interval.is_bottom:
            return cls(Interval.bottom(), Congruence.top())
        # Reduction: singleton interval -> constant congruence; constant
        # congruence -> singleton interval (or bottom on contradiction).
        if congruence.is_const:
            interval = interval.meet(Interval.const(congruence.residue))
            if interval.is_bottom:
                return cls(Interval.bottom(), Congruence.top())
        if interval.is_const:
            congruence = Congruence.const(int(interval.lo))
        return cls(interval, congruence)

    @classmethod
    def top(cls) -> "AbsVal":
        return cls(Interval.top(), Congruence.top())

    @classmethod
    def bottom(cls) -> "AbsVal":
        return cls(Interval.bottom(), Congruence.top())

    @classmethod
    def const(cls, value: int) -> "AbsVal":
        return cls(Interval.const(value), Congruence.const(value))

    @classmethod
    def range(cls, lo: Bound, hi: Bound) -> "AbsVal":
        return cls.make(Interval.of(lo, hi))

    @classmethod
    def of_type(cls, dtype: DataType) -> "AbsVal":
        """Top of a declared type: its full representable range."""
        rng = type_range(dtype)
        if rng is None:
            return cls.top()
        return cls.make(rng)

    @property
    def is_bottom(self) -> bool:
        return self.interval.is_bottom

    # ------------------------------------------------------------------
    # Lattice
    # ------------------------------------------------------------------

    def join(self, other: "AbsVal") -> "AbsVal":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return AbsVal.make(self.interval.join(other.interval),
                           self.congruence.join(other.congruence))

    def meet(self, other: "AbsVal") -> "AbsVal":
        congruence = self.congruence.meet(other.congruence)
        if congruence is None:
            return AbsVal.bottom()
        return AbsVal.make(self.interval.meet(other.interval), congruence)

    def widen(self, other: "AbsVal") -> "AbsVal":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        return AbsVal.make(self.interval.widen(other.interval),
                           self.congruence.join(other.congruence))

    def narrow(self, other: "AbsVal") -> "AbsVal":
        return AbsVal.make(self.interval.narrow(other.interval),
                           self.congruence)

    # ------------------------------------------------------------------
    # Operator dispatch (matches repro.spec.expr operator names)
    # ------------------------------------------------------------------

    def binop(self, op: str, other: "AbsVal") -> "AbsVal":
        if self.is_bottom or other.is_bottom:
            return AbsVal.bottom()
        if op == "+":
            return AbsVal.make(self.interval.add(other.interval),
                               self.congruence.add(other.congruence))
        if op == "-":
            return AbsVal.make(self.interval.sub(other.interval),
                               self.congruence.sub(other.congruence))
        if op == "*":
            return AbsVal.make(self.interval.mul(other.interval),
                               self.congruence.mul(other.congruence))
        if op == "/":
            return AbsVal.make(self.interval.truncdiv(other.interval))
        if op == "mod":
            return AbsVal.make(self.interval.mod_(other.interval))
        if op == "min":
            return AbsVal.make(self.interval.min_(other.interval))
        if op == "max":
            return AbsVal.make(self.interval.max_(other.interval))
        if op == "and":
            return AbsVal.make(self.interval.logical_and(other.interval))
        if op == "or":
            return AbsVal.make(self.interval.logical_or(other.interval))
        if op in ("<", "<=", ">", ">=", "=", "/="):
            if op in ("=", "/=") and not self.congruence.is_top:
                # Congruence reduction: disjoint residue classes decide
                # (dis)equality even when the intervals overlap.
                merged = self.congruence.meet(other.congruence)
                if merged is None:
                    return AbsVal.const(0 if op == "=" else 1)
            return AbsVal.make(self.interval.cmp(op, other.interval))
        raise ValueError(f"unknown binary operator {op!r}")

    def unop(self, op: str) -> "AbsVal":
        if self.is_bottom:
            return self
        if op == "-":
            return AbsVal.make(self.interval.neg(), self.congruence.neg())
        if op == "abs":
            return AbsVal.make(self.interval.abs_())
        if op == "not":
            return AbsVal.make(self.interval.logical_not())
        raise ValueError(f"unknown unary operator {op!r}")

    def wrap_to(self, dtype: DataType) -> "AbsVal":
        """Abstract hardware truncation at an assignment.

        Values inside the declared range pass through; anything that may
        wrap is smeared over the full type range (sound: wrapping can
        land anywhere in it).
        """
        if self.is_bottom:
            return self
        rng = type_range(dtype)
        if rng is None:
            return self
        if self.interval.subset_of(rng):
            return self
        return AbsVal.make(rng)

    def __str__(self) -> str:
        if self.congruence.is_top or self.interval.is_const:
            return str(self.interval)
        return f"{self.interval} {self.congruence}"


def type_range(dtype: DataType) -> Optional[Interval]:
    """Representable interval of a scalar type (element for arrays)."""
    if isinstance(dtype, ArrayType):
        dtype = dtype.element
    if isinstance(dtype, IntType):
        return Interval.of(dtype.min_value, dtype.max_value)
    if isinstance(dtype, BitType):
        return Interval.of(0, (1 << dtype.width) - 1)
    return None


def bits_for_unsigned(hi: int) -> int:
    """Bits needed to carry the non-negative values ``0..hi``."""
    return max(1, int(hi).bit_length())
