"""Value-flow diagnostics (P5xx) from the abstract-interpretation engine.

Maps the engine's raw findings onto the standard diagnostics plumbing:

* **P501** range overflow (ERROR) -- an assigned expression's proven
  value interval is *disjoint* from the target's declared type range,
  so the stored value wraps on every execution.  A merely-overlapping
  interval is not reported: wrapping is then possible but unproven
  (must-analysis, no false positives on the clean systems).
* **P502** unsatisfiable guard (WARNING) -- a branch condition proven
  constant with a non-empty dead arm, or a loop proven to never run.
  A constant-*true* ``While`` is deliberately exempt: behaviors that
  conceptually run forever wrap their body in ``While(1)``.
* **P503** unbounded channel loop (WARNING) -- no finite trip bound
  was proven for a loop that performs bus transfers, making static
  rate bounds infinite.
* **P504** division by zero (ERROR when the divisor is proven zero,
  WARNING when zero merely lies inside its interval).
* **P505** proven rate-bound violation (ERROR) -- the *minimum* proven
  channel demand of a bus already exceeds its data rate, so Equation 1
  cannot hold under any execution consistent with the spec.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.absint.engine import (
    ValueAnalysis,
    analyze_refined_values,
)
from repro.analysis.absint.rates import (
    StaticRateModel,
    refined_channel_bounds,
)
from repro.analysis.diagnostics import (
    DiagnosticSet,
    Severity,
    SourceLocation,
)
from repro.protogen.refine import RefinedSpec

#: Relative tolerance when comparing proven demand to the bus rate, so
#: exact-equality designs (demand == rate) stay feasible.
_RATE_SLACK = 1e-9

_HINTS = {
    "overflow": "widen the target's declared type or clamp the "
                "expression before assigning",
    "dead_guard": "delete the dead arm or fix the condition",
    "unbounded_loop": "bound the loop (constant trip count or a "
                      "provable counter) so channel rates are finite",
    "div_by_zero": "guard the division with a non-zero check the "
                   "analyzer can see (e.g. If divisor > 0)",
}


def check_value_flow(spec: RefinedSpec, diagnostics: DiagnosticSet,
                     analysis: Optional[ValueAnalysis] = None) -> None:
    """Report P5xx diagnostics for one refined spec."""
    if analysis is None:
        analysis = analyze_refined_values(spec)
    for finding in analysis.findings:
        location = SourceLocation("behavior", finding.behavior)
        if finding.kind == "overflow":
            diagnostics.add("P501", Severity.ERROR, finding.message,
                            location, hint=_HINTS["overflow"])
        elif finding.kind == "dead_guard":
            diagnostics.add("P502", Severity.WARNING, finding.message,
                            location, hint=_HINTS["dead_guard"])
        elif finding.kind == "unbounded_loop":
            diagnostics.add("P503", Severity.WARNING, finding.message,
                            location, hint=_HINTS["unbounded_loop"])
        elif finding.kind == "div_by_zero":
            severity = Severity.ERROR if finding.certain \
                else Severity.WARNING
            diagnostics.add("P504", severity, finding.message,
                            location, hint=_HINTS["div_by_zero"])
    _check_rate_bounds(spec, diagnostics, analysis)


def _check_rate_bounds(spec: RefinedSpec, diagnostics: DiagnosticSet,
                       analysis: ValueAnalysis) -> None:
    bounds = refined_channel_bounds(spec, analysis)
    for bus in spec.buses:
        group_bounds = {channel.name: bounds[channel.name]
                        for channel in bus.group
                        if channel.name in bounds}
        model = StaticRateModel(bus.group, bus.structure.protocol,
                                bounds=group_bounds)
        width = bus.structure.width
        demand_lo, _ = model.demand_bounds(width)
        bus_rate = model.bus_rate_at(width)
        if demand_lo <= bus_rate * (1.0 + _RATE_SLACK):
            continue
        diagnostics.add(
            "P505", Severity.ERROR,
            f"proven minimum demand {demand_lo:.4g} bits/time-unit "
            f"exceeds the bus rate {bus_rate:.4g} at width {width}: "
            "Equation 1 cannot hold for any execution",
            SourceLocation("bus", bus.name, detail=f"width {width}"),
            hint="widen the bus or split the channel group "
                 "(repro.busgen.split)",
        )
