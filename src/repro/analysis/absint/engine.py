"""Abstract-interpretation engine over the spec statement IR.

A fixpoint interpreter executing behaviors over the
:mod:`repro.analysis.absint.domain` abstract values instead of concrete
integers.  It produces:

* a **global store** -- one :class:`~repro.analysis.absint.domain.AbsVal`
  per shared variable, over-approximating every value the variable can
  hold at any time under any schedule (arrays are summarized to one
  element-range);
* **loop trip-count bounds** for every ``While`` (``For`` bounds are
  exact by construction);
* **per-channel sent-value ranges** -- the data values that cross each
  channel's generated procedures in a refined spec; and
* **findings** -- proven range overflows, dead guards, zero divisors and
  unbounded channel-feeding loops, mapped to P5xx diagnostics by
  :mod:`repro.analysis.absint.passes`.

Analysis strategy
-----------------
Shared variables are treated *flow-insensitively* (weak updates into the
global store, iterated to a fixpoint over all behaviors), which is sound
for any interleaving or schedule; locals are tracked flow-sensitively
with strong updates.  ``For`` loops run a widening fixpoint with the
loop variable pinned to its constant range.  ``While`` loops use bounded
*abstract unrolling*: the chain ``s_{i+1} = body(assume(s_i, cond))`` is
executed until the condition becomes infeasible (proving an exact trip
upper bound -- something a joined loop invariant can never do), the
chain goes stationary, or :data:`WHILE_UNROLL_CAP` is hit; in the latter
cases the loop is *unbounded* and a classic widened invariant supplies
the sound post-state.

Everything here is read-only over the spec: no statement or behavior is
ever mutated (the same contract as the other analysis passes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.absint.domain import AbsVal, type_range
from repro.obs.tracer import count as obs_count
from repro.obs.tracer import span as obs_span
from repro.spec.behavior import Behavior
from repro.spec.expr import BinOp, Const, Expr, Index, Ref, UnOp
from repro.spec.stmt import (
    Assign,
    Call,
    ElementTarget,
    For,
    If,
    Nop,
    Stmt,
    WaitClocks,
    While,
    walk,
)
from repro.spec.types import ArrayType, DataType
from repro.spec.variable import Variable

#: Abstract unrolling budget for ``While`` trip-bound inference.
WHILE_UNROLL_CAP = 64
#: Fixpoint iteration budget for loop invariants.
FIXPOINT_CAP = 64
#: Iterations of plain joining before widening kicks in.
WIDEN_AFTER = 4
#: Global store passes before the engine gives up on convergence.
MAX_GLOBAL_PASSES = 8

Env = Dict[Variable, AbsVal]

#: Comparison negations used by guard refinement.
_NEGATED = {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "=": "/=", "/=": "="}
#: Mirror of ``a op b`` as ``b op a``.
_MIRRORED = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "/=": "/="}


@dataclass(frozen=True)
class TripBounds:
    """Proven iteration bounds of one loop; ``hi is None`` = unbounded."""

    lo: int
    hi: Optional[int]

    @property
    def bounded(self) -> bool:
        return self.hi is not None

    def __str__(self) -> str:
        return f"[{self.lo}, {'inf' if self.hi is None else self.hi}]"


@dataclass(frozen=True)
class Finding:
    """One raw value-flow finding (pre-diagnostic)."""

    #: ``overflow`` | ``dead_guard`` | ``div_by_zero`` | ``unbounded_loop``
    kind: str
    behavior: str
    message: str
    #: True when the defect is proven on *every* execution reaching the
    #: site (must-analysis); False when it is merely possible.
    certain: bool = True
    #: Channels transferred inside an unbounded loop.
    channels: Tuple[str, ...] = ()


@dataclass
class ValueAnalysis:
    """Everything the engine inferred about one (refined) specification."""

    store: Dict[Variable, AbsVal]
    while_trips: Dict[int, TripBounds]
    findings: List[Finding]
    #: Channel name -> abstract data value crossing the channel.
    sent_ranges: Dict[str, AbsVal] = field(default_factory=dict)
    passes: int = 0
    converged: bool = True

    def value_range(self, variable: Variable) -> Optional[Tuple[int, int]]:
        """Finite ``(lo, hi)`` of a shared variable, or ``None``."""
        return _finite_range(self.store.get(variable))

    def sent_range(self, channel_name: str) -> Optional[Tuple[int, int]]:
        """Finite ``(lo, hi)`` of a channel's data values, or ``None``."""
        return _finite_range(self.sent_ranges.get(channel_name))

    def trip_bounds(self, stmt: While) -> TripBounds:
        """Bounds of one analyzed ``While`` (defensively unbounded)."""
        return self.while_trips.get(id(stmt), TripBounds(0, None))


def _finite_range(value: Optional[AbsVal]) -> Optional[Tuple[int, int]]:
    if value is None or not value.interval.is_finite:
        return None
    return int(value.interval.lo), int(value.interval.hi)


def _init_absval(variable: Variable) -> AbsVal:
    """Abstract initial value (array = join of element initializers)."""
    initial = variable.initial_value()
    if isinstance(initial, list):
        out = AbsVal.bottom()
        for element in initial:
            out = out.join(AbsVal.const(element))
        return out
    return AbsVal.const(initial)


def _scalar_dtype(variable: Variable) -> DataType:
    dtype = variable.dtype
    if isinstance(dtype, ArrayType):
        return dtype.element
    return dtype


def _join_env(a: Optional[Env], b: Optional[Env]) -> Optional[Env]:
    if a is None:
        return b
    if b is None:
        return a
    out: Env = {}
    for var in a.keys() | b.keys():
        va, vb = a.get(var), b.get(var)
        if va is None:
            out[var] = vb  # type: ignore[assignment]
        elif vb is None:
            out[var] = va
        else:
            out[var] = va.join(vb)
    return out


def _widen_env(old: Env, new: Env) -> Env:
    out: Env = {}
    for var in old.keys() | new.keys():
        vo, vn = old.get(var), new.get(var)
        if vo is None:
            out[var] = vn  # type: ignore[assignment]
        elif vn is None:
            out[var] = vo
        else:
            out[var] = vo.widen(vn)
    return out


class _Interpreter:
    """One abstract execution pass over behaviors sharing a store."""

    def __init__(self, store: Dict[Variable, AbsVal], report: bool = False):
        self.store = store
        self.report = report
        self.while_trips: Dict[int, TripBounds] = {}
        self.sent_ranges: Dict[str, AbsVal] = {}
        #: (kind, behavior, id(node)) -> Finding, insertion-ordered.
        self._findings: Dict[Tuple[str, str, int], Finding] = {}
        self.behavior_name = ""
        self.widenings = 0
        self.unroll_iterations = 0

    @property
    def findings(self) -> List[Finding]:
        return list(self._findings.values())

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------

    def run_behavior(self, behavior: Behavior) -> Optional[Env]:
        self.behavior_name = behavior.name
        env: Env = {v: _init_absval(v) for v in behavior.local_variables}
        return self._exec_body(behavior.body, env)

    def _emit(self, kind: str, node: object, message: str,
              certain: bool = True, channels: Tuple[str, ...] = ()) -> None:
        if not self.report:
            return
        key = (kind, self.behavior_name, id(node))
        previous = self._findings.get(key)
        if previous is not None and previous.certain and not certain:
            return  # keep the stronger claim
        self._findings[key] = Finding(kind, self.behavior_name, message,
                                      certain, channels)

    # ------------------------------------------------------------------
    # Variable access
    # ------------------------------------------------------------------

    def _read(self, variable: Variable, env: Env) -> AbsVal:
        value = env.get(variable)
        if value is not None:
            return value
        value = self.store.get(variable)
        if value is not None:
            return value
        # Unknown storage (e.g. a shared variable of a behavior analyzed
        # in isolation): its declared type bounds every possible value.
        return AbsVal.of_type(variable.dtype)

    def _write(self, variable: Variable, value: AbsVal, env: Env,
               element: bool) -> None:
        if variable in env:
            # Locals are flow-sensitive; one element of an array summary
            # only joins (the other elements keep their old values).
            env[variable] = env[variable].join(value) if element else value
            return
        current = self.store.get(variable)
        if current is None:
            current = AbsVal.of_type(variable.dtype)
        self.store[variable] = current.join(value)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _eval(self, expr: Expr, env: Env) -> AbsVal:
        if isinstance(expr, Const):
            return AbsVal.const(expr.value)
        if isinstance(expr, Ref):
            return self._read(expr.variable, env)
        if isinstance(expr, Index):
            self._eval(expr.index, env)  # zero-divisor checks inside
            return self._read(expr.variable, env)
        if isinstance(expr, BinOp):
            lhs = self._eval(expr.lhs, env)
            rhs = self._eval(expr.rhs, env)
            if expr.op in ("/", "mod"):
                self._check_divisor(expr, rhs)
            return lhs.binop(expr.op, rhs)
        if isinstance(expr, UnOp):
            return self._eval(expr.operand, env).unop(expr.op)
        return AbsVal.top()

    def _check_divisor(self, expr: BinOp, divisor: AbsVal) -> None:
        if not self.report or divisor.is_bottom:
            return
        if not divisor.interval.contains_zero():
            return
        certain = divisor.interval.definitely_zero()
        claim = "is always zero" if certain \
            else f"may be zero (inferred {divisor.interval})"
        self._emit(
            "div_by_zero", expr,
            f"divisor of `{expr}` {claim}",
            certain=certain,
        )

    # ------------------------------------------------------------------
    # Guard refinement
    # ------------------------------------------------------------------

    def _assume(self, env: Env, cond: Expr, truth: bool) -> Optional[Env]:
        """Refined copy of ``env`` under ``cond == truth``; ``None`` when
        the assumption is infeasible (abstract bottom)."""
        refined = self._refine(dict(env), cond, truth)
        return refined

    def _refine(self, env: Env, cond: Expr, truth: bool) -> Optional[Env]:
        if isinstance(cond, UnOp) and cond.op == "not":
            return self._refine(env, cond.operand, not truth)
        if isinstance(cond, BinOp):
            op = cond.op
            if op == "and":
                if truth:
                    env2 = self._refine(env, cond.lhs, True)
                    return None if env2 is None \
                        else self._refine(env2, cond.rhs, True)
                return self._refine_split(env, cond, truth)
            if op == "or":
                if not truth:
                    env2 = self._refine(env, cond.lhs, False)
                    return None if env2 is None \
                        else self._refine(env2, cond.rhs, False)
                return self._refine_split(env, cond, truth)
            if op in _NEGATED:
                effective = op if truth else _NEGATED[op]
                return self._refine_comparison(env, cond, effective)
        # Generic truthiness refinement on a variable reference.
        if isinstance(cond, Ref) and cond.variable in env:
            value = env[cond.variable]
            narrowed = value.meet(AbsVal.const(0)) if not truth \
                else _drop_zero(value)
            if narrowed.is_bottom:
                return None
            env[cond.variable] = narrowed
            return env
        # Fallback: no refinement, but a definite contradiction is bottom.
        value = self._eval(cond, env)
        if value.is_bottom:
            return None
        t = value.interval.truthiness()
        if t.is_const and bool(t.lo) != truth:
            return None
        return env

    def _refine_split(self, env: Env, cond: BinOp,
                      truth: bool) -> Optional[Env]:
        """``or``-true / ``and``-false: join of the two sub-cases."""
        left = self._refine(dict(env), cond.lhs, truth)
        right = self._refine(dict(env), cond.rhs, truth)
        return _join_env(left, right)

    def _refine_comparison(self, env: Env, cond: BinOp,
                           op: str) -> Optional[Env]:
        lhs_val = self._eval(cond.lhs, env)
        rhs_val = self._eval(cond.rhs, env)
        outcome = lhs_val.binop(op, rhs_val)
        if outcome.is_bottom or outcome.interval == \
                outcome.interval.const(0).__class__.const(0):
            pass  # handled below via definite check
        # Definite contradiction?
        t = outcome.interval
        if t.is_const and t.lo == 0:
            return None
        # Refine each side that is a flow-sensitive variable reference.
        if isinstance(cond.lhs, Ref) and cond.lhs.variable in env:
            narrowed = _bound_by(env[cond.lhs.variable], op, rhs_val)
            if narrowed.is_bottom:
                return None
            env[cond.lhs.variable] = narrowed
        if isinstance(cond.rhs, Ref) and cond.rhs.variable in env:
            narrowed = _bound_by(env[cond.rhs.variable], _MIRRORED[op],
                                 lhs_val)
            if narrowed.is_bottom:
                return None
            env[cond.rhs.variable] = narrowed
        return env

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _exec_body(self, body: Sequence[Stmt],
                   env: Optional[Env]) -> Optional[Env]:
        for stmt in body:
            if env is None:
                return None
            env = self._exec_stmt(stmt, env)
        return env

    def _exec_stmt(self, stmt: Stmt, env: Env) -> Optional[Env]:
        if isinstance(stmt, Assign):
            return self._exec_assign(stmt, env)
        if isinstance(stmt, If):
            return self._exec_if(stmt, env)
        if isinstance(stmt, For):
            return self._exec_for(stmt, env)
        if isinstance(stmt, While):
            return self._exec_while(stmt, env)
        if isinstance(stmt, Call):
            return self._exec_call(stmt, env)
        if isinstance(stmt, (WaitClocks, Nop)):
            return env
        return env

    def _exec_assign(self, stmt: Assign, env: Env) -> Env:
        value = self._eval(stmt.expr, env)
        target = stmt.target
        element = isinstance(target, ElementTarget)
        if element:
            self._eval(target.index, env)
        dtype = _scalar_dtype(target.variable)
        rng = type_range(dtype)
        if (self.report and rng is not None and not value.is_bottom
                and value.interval.disjoint_from(rng)):
            self._emit(
                "overflow", stmt,
                f"assignment to {target.variable.name}: inferred value "
                f"{value.interval} can never fit the declared type "
                f"{dtype} (range {rng}); the stored value always wraps",
            )
        self._write(target.variable, value.wrap_to(dtype), env, element)
        return env

    def _exec_if(self, stmt: If, env: Env) -> Optional[Env]:
        cond_val = self._eval(stmt.cond, env)
        t = cond_val.interval.truthiness()
        if self.report and t.is_const:
            if t.lo == 0 and stmt.then_body:
                self._emit(
                    "dead_guard", stmt,
                    f"branch condition `{stmt.cond}` is proven always "
                    "false: the then-branch never executes",
                )
            elif t.lo == 1 and stmt.else_body:
                self._emit(
                    "dead_guard", stmt,
                    f"branch condition `{stmt.cond}` is proven always "
                    "true: the else-branch never executes",
                )
        then_env = self._assume(env, stmt.cond, True)
        else_env = self._assume(env, stmt.cond, False)
        if then_env is not None:
            then_env = self._exec_body(stmt.then_body, then_env)
        if else_env is not None:
            else_env = self._exec_body(stmt.else_body, else_env)
        return _join_env(then_env, else_env)

    def _exec_for(self, stmt: For, env: Env) -> Env:
        if stmt.trip_count == 0:
            return env
        pinned = AbsVal.range(stmt.lo, stmt.hi)
        state = dict(env)
        for iteration in range(FIXPOINT_CAP):
            state[stmt.var] = pinned
            out = self._exec_body(stmt.body, dict(state))
            if out is None:
                break
            out[stmt.var] = pinned
            merged = _join_env(state, out)
            assert merged is not None
            if merged == state:
                break
            if iteration >= WIDEN_AFTER:
                state = _widen_env(state, merged)
                self.widenings += 1
            else:
                state = merged
        return state

    def _exec_while(self, stmt: While, env: Env) -> Optional[Env]:
        cond_val = self._eval(stmt.cond, env)
        t0 = cond_val.interval.truthiness()
        if self.report and t0.is_const and t0.lo == 0 and stmt.body:
            self._emit(
                "dead_guard", stmt,
                f"loop condition `{stmt.cond}` is proven always false "
                "on entry: the loop body never executes",
            )
        exits: Optional[Env] = None
        trips_lo: Optional[int] = None
        trips_hi: Optional[int] = None
        state = dict(env)
        unbounded = False
        for iteration in range(WHILE_UNROLL_CAP + 1):
            self.unroll_iterations += 1
            exit_env = self._assume(state, stmt.cond, False)
            if exit_env is not None:
                if trips_lo is None:
                    trips_lo = iteration
                exits = _join_env(exits, exit_env)
            enter = self._assume(state, stmt.cond, True)
            if enter is None:
                trips_hi = iteration
                break
            out = self._exec_body(stmt.body, enter)
            if out is None:
                # The body never completes (e.g. a nested infinite
                # loop): no further iteration of this loop begins.
                trips_hi = iteration + 1
                break
            if out == state:
                unbounded = True  # stationary chain, condition live
                break
            state = out
        else:
            unbounded = True
        if unbounded:
            trips_hi = None
            invariant = self._while_invariant(stmt, env)
            exits = self._assume(invariant, stmt.cond, False)
            if trips_lo is None:
                trips_lo = WHILE_UNROLL_CAP
        if trips_lo is None:
            trips_lo = trips_hi if trips_hi is not None else 0
        self.while_trips[id(stmt)] = TripBounds(trips_lo, trips_hi)
        if self.report and trips_hi is None:
            channels = _transferred_channels(stmt.body)
            if channels:
                self._emit(
                    "unbounded_loop", stmt,
                    f"no finite trip bound proven for `while {stmt.cond}`"
                    f", which transfers over channel(s) "
                    f"{', '.join(channels)}: static rate bounds are "
                    "infinite",
                    certain=False,
                    channels=channels,
                )
        return exits

    def _while_invariant(self, stmt: While, env: Env) -> Env:
        """Classic widened invariant: sound fallback for unbounded loops."""
        state = dict(env)
        for iteration in range(FIXPOINT_CAP):
            enter = self._assume(state, stmt.cond, True)
            if enter is None:
                break
            out = self._exec_body(stmt.body, enter)
            if out is None:
                break
            merged = _join_env(state, out)
            assert merged is not None
            if merged == state:
                break
            if iteration >= WIDEN_AFTER:
                state = _widen_env(state, merged)
                self.widenings += 1
            else:
                state = merged
        return state

    def _exec_call(self, stmt: Call, env: Env) -> Env:
        arg_values = [self._eval(arg, env) for arg in stmt.args]
        procedure = stmt.procedure
        channel = getattr(procedure, "channel", None)
        role = getattr(getattr(procedure, "role", None), "value", None)
        if channel is not None and role == "accessor":
            variable = channel.variable
            element_dtype = _scalar_dtype(variable)
            if channel.is_write:
                data = arg_values[-1].wrap_to(element_dtype) if arg_values \
                    else AbsVal.of_type(element_dtype)
                self._record_sent(channel.name, data)
                self._write(variable, data, env,
                            element=variable.dtype.is_array())
            else:
                data = self._read(variable, env).wrap_to(element_dtype)
                self._record_sent(channel.name, data)
                for result in stmt.results:
                    dtype = _scalar_dtype(result.variable)
                    self._write(result.variable, data.wrap_to(dtype), env,
                                element=isinstance(result, ElementTarget))
            return env
        # Unknown procedure: havoc every result conservatively.
        for result in stmt.results:
            dtype = _scalar_dtype(result.variable)
            self._write(result.variable, AbsVal.of_type(dtype), env,
                        element=isinstance(result, ElementTarget))
        return env

    def _record_sent(self, channel_name: str, value: AbsVal) -> None:
        if not self.report:
            return
        current = self.sent_ranges.get(channel_name, AbsVal.bottom())
        self.sent_ranges[channel_name] = current.join(value)


def _drop_zero(value: AbsVal) -> AbsVal:
    """Remove 0 from an interval when it sits on a boundary."""
    interval = value.interval
    if interval.is_bottom or not interval.contains_zero():
        return value
    if interval.lo == 0 and interval.hi == 0:
        return AbsVal.bottom()
    if interval.lo == 0:
        return value.meet(AbsVal.range(1, interval.hi))
    if interval.hi == 0:
        return value.meet(AbsVal.range(interval.lo, -1))
    return value


def _bound_by(value: AbsVal, op: str, bound: AbsVal) -> AbsVal:
    """Narrow ``value`` to satisfy ``value op bound``."""
    from repro.analysis.absint.domain import Interval

    b = bound.interval
    if b.is_bottom or value.is_bottom:
        return AbsVal.bottom()
    if op == "<":
        return value.meet(AbsVal.make(Interval.of(float("-inf"), b.hi - 1)))
    if op == "<=":
        return value.meet(AbsVal.make(Interval.of(float("-inf"), b.hi)))
    if op == ">":
        return value.meet(AbsVal.make(Interval.of(b.lo + 1, float("inf"))))
    if op == ">=":
        return value.meet(AbsVal.make(Interval.of(b.lo, float("inf"))))
    if op == "=":
        return value.meet(bound)
    if op == "/=":
        if b.is_const:
            c = int(b.lo)
            iv = value.interval
            if iv.lo == c and iv.hi == c:
                return AbsVal.bottom()
            if iv.lo == c:
                return value.meet(AbsVal.make(Interval.of(c + 1, iv.hi)))
            if iv.hi == c:
                return value.meet(AbsVal.make(Interval.of(iv.lo, c - 1)))
        return value
    return value


def _transferred_channels(body: Sequence[Stmt]) -> Tuple[str, ...]:
    """Names of channels whose accessor procedures are called in ``body``."""
    names: List[str] = []
    for stmt in walk(body):
        if not isinstance(stmt, Call):
            continue
        channel = getattr(stmt.procedure, "channel", None)
        if channel is not None and channel.name not in names:
            names.append(channel.name)
    return tuple(names)


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def analyze_behaviors(behaviors: Sequence[Behavior],
                      store: Optional[Dict[Variable, AbsVal]] = None,
                      max_passes: int = MAX_GLOBAL_PASSES,
                      system: str = "") -> ValueAnalysis:
    """Fixpoint value analysis over a set of behaviors.

    ``store`` seeds the shared-variable store; variables a behavior
    references but that are absent from the store are *havocked* to
    their full declared type range on read (sound for modular analysis
    of a single behavior).
    """
    store = dict(store) if store is not None else {}
    with obs_span("absint.analyze", system=system,
                  behaviors=len(behaviors)) as sp:
        passes = 0
        converged = False
        for global_pass in range(max_passes):
            passes += 1
            snapshot = dict(store)
            interp = _Interpreter(store, report=False)
            for behavior in behaviors:
                interp.run_behavior(behavior)
            obs_count("absint.loop_unroll_iterations",
                      interp.unroll_iterations)
            obs_count("absint.widenings", interp.widenings)
            if store == snapshot:
                converged = True
                break
            if global_pass >= WIDEN_AFTER - 1:
                # Accelerate: widen growing store entries, bounded by
                # the declared type range (every stored value was
                # wrapped to it, so the meet is sound).
                for variable, value in store.items():
                    previous = snapshot.get(variable)
                    if previous is not None and previous != value:
                        store[variable] = previous.widen(value).meet(
                            AbsVal.of_type(variable.dtype))
        reporter = _Interpreter(store, report=True)
        for behavior in behaviors:
            reporter.run_behavior(behavior)
        obs_count("absint.global_passes", passes)
        sp.set(passes=passes, converged=converged,
               findings=len(reporter.findings))
    return ValueAnalysis(
        store=store,
        while_trips=reporter.while_trips,
        findings=reporter.findings,
        sent_ranges=reporter.sent_ranges,
        passes=passes,
        converged=converged,
    )


def analyze_refined_values(spec, max_passes: int = MAX_GLOBAL_PASSES,
                           ) -> ValueAnalysis:
    """Value analysis of a :class:`~repro.protogen.refine.RefinedSpec`.

    The store is seeded with every system variable's initial value;
    channel traffic (procedure calls) flows data through the served
    variables exactly like direct accesses would.
    """
    store = {variable: _init_absval(variable)
             for variable in spec.original.variables}
    return analyze_behaviors(spec.behaviors, store=store,
                             max_passes=max_passes, system=spec.name)


def analyze_behavior(behavior: Behavior,
                     havoc_shared: bool = True) -> ValueAnalysis:
    """Modular value analysis of a single (unrefined) behavior.

    With ``havoc_shared`` every shared variable starts at its full type
    range -- the sound assumption when other behaviors are unknown,
    which is how bus generation uses trip bounds before refinement.
    """
    store: Dict[Variable, AbsVal] = {}
    if havoc_shared:
        for variable in sorted(behavior.global_variables(),
                               key=lambda v: v.name):
            store[variable] = AbsVal.of_type(variable.dtype)
    else:
        for variable in sorted(behavior.global_variables(),
                               key=lambda v: v.name):
            store[variable] = _init_absval(variable)
    return analyze_behaviors([behavior], store=store, max_passes=2,
                             system=behavior.name)
