"""Statically proven channel access-count, bit-volume and rate bounds.

:mod:`repro.spec.access` counts accesses with *concrete* loop trip
counts (``For`` bounds are constant; ``While`` trusts its declared
``trip_count`` hint).  This module re-derives the same counts as sound
**intervals** ``[lo, hi]`` using trip bounds proven by the
abstract-interpretation engine:

* ``For`` trip counts are exact (constant bounds) -- ``lo == hi``;
* ``While`` trips come from :class:`~repro.analysis.absint.engine
  .TripBounds` (``hi is None`` = no finite bound proven);
* both arms of an ``If`` contribute ``[0, hi]`` -- either may be
  skipped, so only the upper bound survives.

Two counting front-ends are provided.  :func:`static_group_bounds`
counts direct accesses in the *original* behaviors (the busgen-side
view, mirroring :func:`repro.spec.access.analyze_behavior` site by site
so tight bounds reproduce the measured counts exactly).
:func:`refined_channel_bounds` counts generated accessor-procedure calls
in a *refined* spec (the view the simulator realizes one transaction per
call, which is what the soundness gate cross-validates).

:class:`StaticRateModel` turns bit-volume bounds into **rate bounds**:
``rate_bounds(channel, width) -> (lo, hi)`` bits/time-unit, where the
upper rate divides the maximum bit volume by the *shortest* provable
accessor lifetime and vice versa.  ``demand_bounds`` sums them into a
proven bracket around the Equation-1 demand, which bus generation's
``--rates static`` mode checks against the bus rate.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.absint.engine import (
    TripBounds,
    ValueAnalysis,
    analyze_behavior,
)
from repro.channels.channel import Channel
from repro.channels.group import ChannelGroup
from repro.estimate.perf import PerformanceEstimator
from repro.protocols import Protocol
from repro.spec.access import Direction
from repro.spec.behavior import Behavior
from repro.spec.stmt import Assign, Call, For, If, Stmt, While
from repro.spec.variable import Variable


@dataclass(frozen=True)
class ChannelStaticBounds:
    """Proven access-count and bit-volume bounds of one channel."""

    channel_name: str
    accesses_lo: int
    #: ``None`` when no finite bound could be proven (unbounded loop).
    accesses_hi: Optional[int]
    message_bits: int

    @property
    def bounded(self) -> bool:
        return self.accesses_hi is not None

    @property
    def bits_lo(self) -> int:
        return self.accesses_lo * self.message_bits

    @property
    def bits_hi(self) -> Optional[int]:
        if self.accesses_hi is None:
            return None
        return self.accesses_hi * self.message_bits

    def contains_accesses(self, count: int) -> bool:
        """Soundness predicate: a measured access count is in bounds."""
        if count < self.accesses_lo:
            return False
        return self.accesses_hi is None or count <= self.accesses_hi

    def contains_bits(self, bits: int) -> bool:
        """Soundness predicate: a measured bit volume is in bounds."""
        if bits < self.bits_lo:
            return False
        return self.bits_hi is None or bits <= self.bits_hi

    def __str__(self) -> str:
        hi = "inf" if self.accesses_hi is None else str(self.accesses_hi)
        return (f"{self.channel_name}: accesses [{self.accesses_lo}, {hi}]"
                f" x {self.message_bits} bits")


def _mul_hi(a: Optional[int], b: Optional[int]) -> Optional[int]:
    """Upper-bound product where ``None`` means unbounded (0 absorbs)."""
    if a == 0 or b == 0:
        return 0
    if a is None or b is None:
        return None
    return a * b


@dataclass(frozen=True)
class _Site:
    variable: Variable
    direction: Direction
    lo: int
    hi: Optional[int]


TripLookup = Callable[[While], TripBounds]


def _iter_interval_sites(body: Sequence[Stmt], lo: int, hi: Optional[int],
                         trips: TripLookup) -> Iterator[_Site]:
    """Interval-counted access sites; mirrors ``access._iter_sites``."""
    for stmt in body:
        if isinstance(stmt, While):
            bounds = trips(stmt)
            # Condition evaluated once per iteration plus the final
            # failing test: trips + 1 times.
            for read in stmt.cond.reads():
                yield _Site(read.variable, Direction.READ,
                            lo * (bounds.lo + 1),
                            _mul_hi(hi, None if bounds.hi is None
                                    else bounds.hi + 1))
            yield from _iter_interval_sites(
                stmt.body, lo * bounds.lo, _mul_hi(hi, bounds.hi), trips)
            continue
        if isinstance(stmt, Assign):
            yield _Site(stmt.target.variable, Direction.WRITE, lo, hi)
        if isinstance(stmt, Call):
            for result in stmt.results:
                yield _Site(result.variable, Direction.WRITE, lo, hi)
        for read in stmt.reads():
            yield _Site(read.variable, Direction.READ, lo, hi)
        if isinstance(stmt, If):
            # Either arm may be skipped at runtime: lower bound 0.
            yield from _iter_interval_sites(stmt.then_body, 0, hi, trips)
            yield from _iter_interval_sites(stmt.else_body, 0, hi, trips)
        elif isinstance(stmt, For):
            yield from _iter_interval_sites(
                stmt.body, lo * stmt.trip_count,
                _mul_hi(hi, stmt.trip_count), trips)


def _trip_lookup(analysis: ValueAnalysis) -> TripLookup:
    return analysis.trip_bounds


def static_channel_bounds(channel: Channel,
                          analysis: Optional[ValueAnalysis] = None,
                          ) -> ChannelStaticBounds:
    """Bounds of one channel from its accessor's original body."""
    if analysis is None:
        analysis = analyze_behavior(channel.accessor)
    lo_total = 0
    hi_total: Optional[int] = 0
    for site in _iter_interval_sites(channel.accessor.body, 1, 1,
                                     _trip_lookup(analysis)):
        if site.variable is not channel.variable:
            continue
        if site.direction is not channel.direction:
            continue
        lo_total += site.lo
        hi_total = None if (hi_total is None or site.hi is None) \
            else hi_total + site.hi
    return ChannelStaticBounds(
        channel_name=channel.name,
        accesses_lo=lo_total,
        accesses_hi=hi_total,
        message_bits=channel.message_bits,
    )


def static_group_bounds(group: ChannelGroup,
                        ) -> Dict[str, ChannelStaticBounds]:
    """Bounds of every member channel, keyed by channel name.

    Behavior analyses are shared across channels of the same accessor.
    """
    analyses: Dict[int, ValueAnalysis] = {}
    out: Dict[str, ChannelStaticBounds] = {}
    for channel in group:
        key = id(channel.accessor)
        if key not in analyses:
            analyses[key] = analyze_behavior(channel.accessor)
        out[channel.name] = static_channel_bounds(channel, analyses[key])
    return out


def _iter_call_counts(body: Sequence[Stmt], lo: int, hi: Optional[int],
                      trips: TripLookup,
                      ) -> Iterator[Tuple[Channel, int, Optional[int]]]:
    """Interval-counted accessor-procedure calls in a refined body."""
    for stmt in body:
        if isinstance(stmt, Call):
            procedure = stmt.procedure
            channel = getattr(procedure, "channel", None)
            role = getattr(getattr(procedure, "role", None), "value", None)
            if channel is not None and role == "accessor":
                yield channel, lo, hi
        elif isinstance(stmt, If):
            yield from _iter_call_counts(stmt.then_body, 0, hi, trips)
            yield from _iter_call_counts(stmt.else_body, 0, hi, trips)
        elif isinstance(stmt, For):
            yield from _iter_call_counts(
                stmt.body, lo * stmt.trip_count,
                _mul_hi(hi, stmt.trip_count), trips)
        elif isinstance(stmt, While):
            bounds = trips(stmt)
            yield from _iter_call_counts(
                stmt.body, lo * bounds.lo, _mul_hi(hi, bounds.hi), trips)


def refined_channel_bounds(spec, analysis: ValueAnalysis,
                           ) -> Dict[str, ChannelStaticBounds]:
    """Bounds on generated-procedure calls per channel of a refined spec.

    One accessor call is one bus transaction, so these bounds are what
    the simulator's transaction log must fall inside (the soundness
    gate).  ``analysis`` must come from analyzing the *same* refined
    spec (its ``While`` trip bounds are keyed by statement identity).
    """
    totals: Dict[str, Tuple[int, Optional[int]]] = {}
    channels: Dict[str, Channel] = {}
    for bus in spec.buses:
        for channel in bus.group:
            channels[channel.name] = channel
            totals[channel.name] = (0, 0)
    for behavior in spec.behaviors:
        for channel, lo, hi in _iter_call_counts(
                behavior.body, 1, 1, _trip_lookup(analysis)):
            current = totals.get(channel.name)
            if current is None:
                channels[channel.name] = channel
                current = (0, 0)
            total_lo, total_hi = current
            totals[channel.name] = (
                total_lo + lo,
                None if (total_hi is None or hi is None) else total_hi + hi,
            )
    return {
        name: ChannelStaticBounds(
            channel_name=name,
            accesses_lo=lo,
            accesses_hi=hi,
            message_bits=channels[name].message_bits,
        )
        for name, (lo, hi) in sorted(totals.items())
    }


class StaticRateModel:
    """Proven rate brackets per channel and width (Equation-1 inputs).

    The average-rate denominator -- the accessor lifetime -- itself
    depends on access counts, so the model evaluates it at both ends of
    the proven count intervals: the *upper* rate bound divides maximum
    bits by the minimum lifetime, the *lower* bound minimum bits by the
    maximum lifetime (``0.0`` when some sibling channel is unbounded and
    the lifetime has no finite ceiling).
    """

    def __init__(self, group: ChannelGroup, protocol: Protocol,
                 estimator: Optional[PerformanceEstimator] = None,
                 bounds: Optional[Dict[str, ChannelStaticBounds]] = None):
        self.group = group
        self.protocol = protocol
        self.estimator = estimator or PerformanceEstimator()
        self.bounds = bounds if bounds is not None \
            else static_group_bounds(group)

    def channel_bounds(self, channel: Channel) -> ChannelStaticBounds:
        bounds = self.bounds.get(channel.name)
        if bounds is None:
            # Unknown channel: only the trivial bound is sound.
            bounds = ChannelStaticBounds(channel.name, 0, None,
                                         channel.message_bits)
        return bounds

    def _patched_siblings(self, accessor: Behavior,
                          end: str) -> Optional[List[Channel]]:
        """Sibling channels with accesses pinned to one interval end;
        ``None`` when pinning to an unbounded upper end."""
        patched: List[Channel] = []
        for sibling in self.group.channels_of(accessor):
            bounds = self.channel_bounds(sibling)
            count = bounds.accesses_lo if end == "lo" else bounds.accesses_hi
            if count is None:
                return None
            clone = copy.copy(sibling)
            clone.accesses = count
            patched.append(clone)
        return patched

    def lifetime_bounds(self, channel: Channel,
                        width: int) -> Tuple[int, Optional[int]]:
        """Provable ``[lo, hi]`` accessor lifetime in clocks."""
        low_traffic = self._patched_siblings(channel.accessor, "lo")
        high_traffic = self._patched_siblings(channel.accessor, "hi")
        assert low_traffic is not None  # lower counts are always finite
        lifetime_lo = self.estimator.lifetime_clocks(
            channel.accessor, low_traffic, width, self.protocol)
        lifetime_hi = None if high_traffic is None \
            else self.estimator.lifetime_clocks(
                channel.accessor, high_traffic, width, self.protocol)
        return lifetime_lo, lifetime_hi

    def rate_bounds(self, channel: Channel,
                    width: int) -> Tuple[float, float]:
        """Proven ``(lo, hi)`` average rate in bits/time-unit.

        ``hi`` is ``math.inf`` when the channel's bit volume has no
        finite bound; ``lo`` is ``0.0`` when the lifetime has none.
        """
        bounds = self.channel_bounds(channel)
        lifetime_lo, lifetime_hi = self.lifetime_bounds(channel, width)
        period = self.group.clock_period
        if bounds.bits_hi is None:
            rate_hi = math.inf
        else:
            # A process always runs at least one clock; guard the
            # degenerate zero-lifetime corner.
            rate_hi = bounds.bits_hi / (max(lifetime_lo, 1) * period)
        if lifetime_hi is None or lifetime_hi <= 0:
            rate_lo = 0.0
        else:
            rate_lo = bounds.bits_lo / (lifetime_hi * period)
        return rate_lo, rate_hi

    def demand_bounds(self, width: int) -> Tuple[float, float]:
        """Proven bracket around the Equation-1 demand at one width."""
        demand_lo = 0.0
        demand_hi = 0.0
        for channel in self.group:
            rate_lo, rate_hi = self.rate_bounds(channel, width)
            demand_lo += rate_lo
            demand_hi += rate_hi
        return demand_lo, demand_hi

    def bus_rate_at(self, width: int) -> float:
        return self.protocol.bus_rate(width, self.group.clock_period)

    def is_provably_feasible(self, width: int) -> bool:
        """Equation 1 holds under the proven *worst-case* demand."""
        return self.bus_rate_at(width) >= self.demand_bounds(width)[1]

    def is_provably_infeasible(self, width: int) -> bool:
        """Equation 1 is violated even under the proven *best-case*
        demand: no measured workload can make this width work."""
        return self.bus_rate_at(width) < self.demand_bounds(width)[0] \
            * (1.0 - 1e-9)
