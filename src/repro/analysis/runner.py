"""Entry point tying the static passes together.

:func:`analyze_refined` runs every registered pass over a
:class:`~repro.protogen.refine.RefinedSpec` and returns the combined
:class:`~repro.analysis.diagnostics.DiagnosticSet`.  Passes are pure
readers: none of them simulates, and none of them mutates the spec.

The abstract-interpretation pass runs first: its inferred value ranges
feed the width pass (proven P301 truncation instead of declared-size
pattern matching), and its trip bounds feed the P505 rate check.  After
all passes, identical (code, location) findings are deduplicated --
first report wins -- and JSON output is emitted in a stable sort order.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.analysis.absint.engine import analyze_refined_values
from repro.analysis.absint.passes import check_value_flow
from repro.analysis.contention import check_contention
from repro.analysis.deadcode import check_dead_code
from repro.analysis.deadlock import FsmTransform, check_handshakes
from repro.analysis.diagnostics import DiagnosticSet
from repro.analysis.mc.passes import check_temporal
from repro.analysis.protection import check_protection
from repro.analysis.width import check_widths
from repro.obs.tracer import span as obs_span
from repro.protogen.refine import RefinedSpec

Pass = Callable[[RefinedSpec, DiagnosticSet], None]

#: (name, pass) pairs in execution order.  The value-flow pass leads so
#: later passes can consume its analysis; the remaining cheap arithmetic
#: passes run before the product-automaton exploration so a broken
#: structure is reported even when FSM synthesis itself would choke.
PASSES: List[Tuple[str, Pass]] = [
    ("absint", check_value_flow),
    ("width", check_widths),
    ("contention", check_contention),
    ("protection", check_protection),
    ("deadcode", check_dead_code),
    ("handshake", check_handshakes),
    ("temporal", check_temporal),
]


def analyze_refined(spec: RefinedSpec,
                    fsm_transform: Optional[FsmTransform] = None,
                    ) -> DiagnosticSet:
    """Run all static passes over ``spec``.

    ``fsm_transform`` is forwarded to the handshake pass; the mutation
    corpus uses it to seed controller-level defects.
    """
    diagnostics = DiagnosticSet(system=spec.name)
    analysis = None
    with obs_span("analysis.analyze_refined", system=spec.name) as sp:
        for name, check in PASSES:
            with obs_span(f"analysis.pass.{name}", system=spec.name):
                if check is check_value_flow:
                    analysis = analyze_refined_values(spec)
                    check_value_flow(spec, diagnostics, analysis)
                elif check is check_widths:
                    ranges = None
                    if analysis is not None:
                        ranges = {
                            channel: finite
                            for channel in analysis.sent_ranges
                            if (finite := analysis.sent_range(channel))
                            is not None
                        }
                    check_widths(spec, diagnostics, value_ranges=ranges)
                elif check is check_handshakes:
                    check_handshakes(spec, diagnostics,
                                     fsm_transform=fsm_transform)
                elif check is check_temporal:
                    check_temporal(spec, diagnostics,
                                   fsm_transform=fsm_transform,
                                   analysis=analysis)
                else:
                    check(spec, diagnostics)
        deduped = diagnostics.dedupe()
        sp.set(diagnostics=len(diagnostics), deduplicated=deduped)
    return diagnostics
