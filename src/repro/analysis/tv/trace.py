"""IR-side effect-trace semantics for translation validation.

The validator's ground truth.  From a behavior's statement IR and the
simulation's elaboration facts it derives what the compiled backend is
*obliged* to emit:

* the canonical **expression lowering** (:func:`lower_expr`) -- an
  independent re-statement of the interpreter's evaluation contract
  (eager ``and``/``or``, checked div/mod, value-preserving constant
  folding computed with the IR's own ``evaluate``), written at
  *hint level*: binding names appear as their semantic hint
  (``env_read``, ``div``, ``ixchk_MEM``), the same form the source
  normalizer (:mod:`repro.analysis.tv.pyparse`) reduces generated
  names to;
* the **clock cost model** of :mod:`repro.spec.stmt` (Assign/If test =
  1, For/While per-iteration = 1 + body, WaitClocks(n) = n, Nop = 0);
* the **wrap model**: which dtype wrap every store must carry, and the
  representable-range certificate under which a loop-variable wrap may
  be elided;
* the per-behavior **elaboration facts** (:func:`behavior_facts`):
  variable placement modes, contested-variable set, and per-call
  transfer plans (tier, deferred-arbitration eligibility), recomputed
  from the same analyses the code generator consumes.

Everything here is pure in the IR + facts, so verdicts can be memoized
on ``(IR fingerprint, facts key, generated source)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.sim.arbiter import ImmediateArbiter
from repro.sim.compiled.analyze import (
    Analysis,
    analyze_spec,
    walk_statements,
)
from repro.sim.compiled.transfer import FUSED, plan_channel
from repro.spec.behavior import Behavior
from repro.spec.expr import BinOp, Const, Environment, Expr, Index, Ref, UnOp
from repro.spec.stmt import (
    Assign,
    Call,
    ElementTarget,
    For,
    If,
    Nop,
    Stmt,
    WaitClocks,
    While,
)
from repro.spec.types import ArrayType, IntType
from repro.spec.variable import Variable

_EMPTY_ENV = Environment()


def sanitize(name: str) -> str:
    """The code generator's identifier sanitization, restated."""
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def scalar_bounds(dtype) -> Tuple[int, int]:
    """Representable range of a scalar dtype: the certificate under
    which a loop-variable wrap is the identity and may be elided."""
    if isinstance(dtype, IntType) and dtype.signed:
        half = 1 << (dtype.bits - 1)
        return -half, half - 1
    return 0, (1 << dtype.bits) - 1


def wrap_code(dtype, code: str) -> str:
    """The mandatory dtype wrap around every stored value."""
    if isinstance(dtype, IntType) and dtype.signed:
        half = 1 << (dtype.bits - 1)
        mask = (1 << dtype.bits) - 1
        return f"((({code} + {half}) & {mask}) - {half})"
    return f"(({code}) & {(1 << dtype.bits) - 1})"


# ----------------------------------------------------------------------
# Elaboration facts
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class VarInfo:
    """Placement and typing facts for one variable a behavior touches."""

    name: str
    #: "native" (uncontested scalar local), "env" (contested scalar,
    #: flushed environment access) or "array" (aliased backing list).
    mode: str
    #: hint-level storage label: ``_l_<name>`` / ``v_<name>`` /
    #: ``_a_<name>``.
    label: str
    signed: bool
    bits: int
    #: array length (None for scalars).
    length: Optional[int]
    #: loaded in the prologue (original or declared local)?
    loadable: bool
    #: written back in the epilogue (original shared variable)?
    original: bool
    dtype: object
    elem_dtype: object

    @property
    def key(self) -> str:
        return (f"{self.name}:{self.mode}:{self.signed}:{self.bits}:"
                f"{self.length}:{self.loadable}:{self.original}")


@dataclass(frozen=True)
class CallPlan:
    """Transfer facts for one ``Call`` site, recomputed independently
    of the code generator's own planning pass."""

    proc_name: str
    bus: str
    channel: str
    mode: str
    deferred: bool
    takes_address: bool
    is_write: bool
    is_read: bool
    var_name: str
    behavior: str

    @property
    def key(self) -> str:
        return (f"{self.proc_name}:{self.bus}:{self.channel}:{self.mode}"
                f":{self.deferred}:{self.takes_address}:{self.is_write}"
                f":{self.is_read}:{self.var_name}")


class BehaviorFacts:
    """Everything :mod:`~repro.analysis.tv.checker` needs to judge one
    behavior's generated source, plus a stable memoization key."""

    def __init__(self, behavior: Behavior, variables: Dict[str, VarInfo],
                 contested: Set[str], call_plans: Dict[int, "CallPlan"]):
        self.behavior = behavior
        self.name = behavior.name
        self.variables = variables
        self.contested = contested
        self.call_plans = call_plans
        plans = ";".join(
            call_plans[id(stmt.procedure)].key
            for stmt in walk_statements(behavior.body)
            if isinstance(stmt, Call)
            and id(stmt.procedure) in call_plans)
        infos = ";".join(v.key for _, v in sorted(variables.items()))
        self.key = (f"{behavior.name}|{infos}|"
                    f"{','.join(sorted(contested))}|{plans}|"
                    f"{ir_fingerprint(behavior)}")

    def info(self, variable: Variable) -> VarInfo:
        return self.variables[variable.name]


def _var_info(variable: Variable, contested: Set[Variable],
              loadable: Set[Variable],
              original: Set[Variable]) -> VarInfo:
    dtype = variable.dtype
    label = sanitize(variable.name)
    if isinstance(dtype, ArrayType):
        mode, name, elem = "array", f"_a_{label}", dtype.element
        length: Optional[int] = dtype.length
    elif variable in contested:
        mode, name, elem = "env", f"v_{label}", dtype
        length = None
    else:
        mode, name, elem = "native", f"_l_{label}", dtype
        length = None
    signed = bool(getattr(elem, "signed", False))
    return VarInfo(
        name=variable.name, mode=mode, label=name, signed=signed,
        bits=elem.bits, length=length,
        loadable=variable in loadable, original=variable in original,
        dtype=dtype, elem_dtype=elem)


def spec_facts(runtime, analysis: Optional[Analysis] = None,
               ) -> Tuple[Analysis, Dict[str, "BehaviorFacts"]]:
    """Recompute the elaboration facts for every behavior of an
    elaborated :class:`~repro.sim.runtime.RefinedSimulation`.

    Mirrors ``compile_spec``'s planning (same analyses, same channel
    tiering) without touching its outputs: the validator judges the
    *generated code* against these facts.  ``analysis`` accepts the
    compile-time :func:`analyze_spec` result to skip recomputing it --
    a pure function of the same spec, so reuse changes nothing the
    validator concludes, only how fast it concludes it.
    """
    spec = runtime.spec
    if analysis is None:
        analysis = analyze_spec(spec, runtime._stages, runtime._proc_map)

    channel_modes: Dict[Tuple[str, str], str] = {}
    deferred: Set[Tuple[str, str]] = set()
    for refined_bus in spec.buses:
        sim_bus = runtime.buses[refined_bus.name]
        deferrable = (
            type(sim_bus.arbiter) is ImmediateArbiter
            and sim_bus.name in analysis.uncontended_buses
        )
        for pair in refined_bus.procedures.values():
            mode, _ = plan_channel(sim_bus, pair, analysis.contested,
                                   runtime.recorder, runtime.trace)
            channel_modes[(sim_bus.name, pair.channel.name)] = mode
            if mode == FUSED and deferrable:
                deferred.add((sim_bus.name, pair.channel.name))

    original = set(spec.original.variables)
    out: Dict[str, BehaviorFacts] = {}
    for behavior in spec.behaviors:
        touched = analysis.touches[behavior.name]
        loadable = original | set(behavior.local_variables)
        variables = {
            v.name: _var_info(v, analysis.contested, loadable, original)
            for v in touched
        }
        call_plans: Dict[int, CallPlan] = {}
        for stmt in walk_statements(behavior.body):
            if not isinstance(stmt, Call):
                continue
            entry = runtime._proc_map.get(id(stmt.procedure))
            if entry is None:
                continue
            sim_bus, pair = entry
            key = (sim_bus.name, pair.channel.name)
            call_plans[id(stmt.procedure)] = CallPlan(
                proc_name=stmt.procedure.name,
                bus=sim_bus.name,
                channel=pair.channel.name,
                mode=channel_modes[key],
                deferred=key in deferred,
                takes_address=stmt.procedure.takes_address,
                is_write=pair.channel.is_write,
                is_read=pair.channel.is_read,
                var_name=pair.channel.variable.name,
                behavior=behavior.name,
            )
        out[behavior.name] = BehaviorFacts(
            behavior, variables,
            {v.name for v in analysis.contested}, call_plans)
    return analysis, out


# ----------------------------------------------------------------------
# IR fingerprint (cache key component)
# ----------------------------------------------------------------------

def expr_fingerprint(expr: Expr) -> str:
    if isinstance(expr, Const):
        return f"C{expr.value}"
    if isinstance(expr, Ref):
        return f"R({expr.variable.name})"
    if isinstance(expr, Index):
        return f"X({expr.variable.name},{expr_fingerprint(expr.index)})"
    if isinstance(expr, BinOp):
        return (f"B({expr.op},{expr_fingerprint(expr.lhs)},"
                f"{expr_fingerprint(expr.rhs)})")
    if isinstance(expr, UnOp):
        return f"U({expr.op},{expr_fingerprint(expr.operand)})"
    return f"?{type(expr).__name__}"


def _target_fingerprint(target) -> str:
    index = target.index_expr()
    if index is None:
        return target.variable.name
    return f"{target.variable.name}[{expr_fingerprint(index)}]"


def _stmt_fingerprint(stmt: Stmt) -> str:
    if isinstance(stmt, Assign):
        return (f"A({_target_fingerprint(stmt.target)},"
                f"{expr_fingerprint(stmt.expr)})")
    if isinstance(stmt, If):
        return (f"I({expr_fingerprint(stmt.cond)},"
                f"[{_body_fingerprint(stmt.then_body)}],"
                f"[{_body_fingerprint(stmt.else_body)}])")
    if isinstance(stmt, For):
        return (f"F({stmt.var.name},{stmt.lo},{stmt.hi},"
                f"[{_body_fingerprint(stmt.body)}])")
    if isinstance(stmt, While):
        return (f"W({expr_fingerprint(stmt.cond)},"
                f"[{_body_fingerprint(stmt.body)}])")
    if isinstance(stmt, WaitClocks):
        return f"T{stmt.clocks}"
    if isinstance(stmt, Call):
        name = getattr(stmt.procedure, "name", "?")
        args = ",".join(expr_fingerprint(a) for a in stmt.args)
        results = ",".join(_target_fingerprint(r) for r in stmt.results)
        return f"K({name},[{args}],[{results}])"
    if isinstance(stmt, Nop):
        return "N"
    return f"?{type(stmt).__name__}"


def _body_fingerprint(body) -> str:
    return ",".join(_stmt_fingerprint(s) for s in body)


def ir_fingerprint(behavior: Behavior) -> str:
    """Stable serialization of a behavior body: two behaviors with the
    same fingerprint (and facts) have identical validation outcomes."""
    return _body_fingerprint(behavior.body)


# ----------------------------------------------------------------------
# Independent expression lowering (hint-level)
# ----------------------------------------------------------------------

_DIRECT = {"+": "+", "-": "-", "*": "*"}
_COMPARE = {"=": "==", "/=": "!=", "<": "<", "<=": "<=",
            ">": ">", ">=": ">="}


class UnprovenExpr(Exception):
    """The IR expression is outside the validated trace algebra."""


class ExprLowerer:
    """Derives the obliged lowering of an IR expression at hint level.

    The walrus temporaries of element reads are emitted as ``_w<n>``;
    the source-side normalizer alpha-renames both sides, so only the
    order and multiplicity of temporaries must agree.
    """

    def __init__(self, facts: BehaviorFacts):
        self.facts = facts
        self._tmp = 0

    def _temp(self) -> str:
        self._tmp += 1
        return f"_w{self._tmp}"

    def fresh_temp(self) -> str:
        """A statement-level temporary (value/index/result slots)."""
        return self._temp()

    def read_scalar(self, variable: Variable) -> str:
        info = self.facts.info(variable)
        if info.mode == "native":
            return info.label
        return f"env_read({info.label})"

    def read_element(self, variable: Variable, index_code: str) -> str:
        info = self.facts.info(variable)
        tmp = self._temp()
        return (f"{info.label}[{tmp} if 0 <= ({tmp} := {index_code}) "
                f"< {info.length} else ixchk_{sanitize(variable.name)}"
                f"({tmp})]")

    def lower(self, expr: Expr) -> str:
        # Value-preserving constant folding: computed with the IR's own
        # evaluator, so a mis-folded literal in generated code cannot
        # match.  Folds that would raise stay unfolded (the error must
        # surface at simulation time, where the interpreter raises it).
        if expr.is_constant():
            try:
                value = expr.evaluate(_EMPTY_ENV)
            except ReproError:
                pass
            else:
                return repr(value) if value >= 0 else f"({value})"
        if isinstance(expr, Const):
            value = expr.value
            return repr(value) if value >= 0 else f"({value})"
        if isinstance(expr, Ref):
            if isinstance(expr.variable.dtype, ArrayType):
                raise UnprovenExpr(
                    f"whole-array read of {expr.variable.name!r}")
            return self.read_scalar(expr.variable)
        if isinstance(expr, Index):
            return self.read_element(expr.variable,
                                     self.lower(expr.index))
        if isinstance(expr, BinOp):
            lhs = self.lower(expr.lhs)
            rhs = self.lower(expr.rhs)
            op = expr.op
            if op in _DIRECT:
                return f"({lhs} {_DIRECT[op]} {rhs})"
            if op in _COMPARE:
                return f"(1 if {lhs} {_COMPARE[op]} {rhs} else 0)"
            if op == "/":
                return f"div({lhs}, {rhs})"
            if op == "mod":
                return f"mod({lhs}, {rhs})"
            if op == "and":
                # Eager on both sides, like BinOp.evaluate: a division
                # by zero right of a false `and` must still raise.
                return f"(1 if ({lhs} != 0) & ({rhs} != 0) else 0)"
            if op == "or":
                return f"(1 if ({lhs} != 0) | ({rhs} != 0) else 0)"
            if op in ("min", "max"):
                return f"{op}({lhs}, {rhs})"
            raise UnprovenExpr(f"unknown binary operator {op!r}")
        if isinstance(expr, UnOp):
            operand = self.lower(expr.operand)
            if expr.op == "-":
                return f"(-{operand})"
            if expr.op == "not":
                return f"(1 if {operand} == 0 else 0)"
            if expr.op == "abs":
                return f"abs({operand})"
            raise UnprovenExpr(f"unknown unary operator {expr.op!r}")
        raise UnprovenExpr(
            f"unsupported expression {type(expr).__name__}")


def reads_contested(stmt: Stmt, facts: BehaviorFacts) -> bool:
    """Does the statement's own evaluation read a contested variable?
    (Statement-level, like the code generator's flush test: nested
    bodies are judged at their own statements.)"""
    return any(read.variable.name in facts.contested
               for read in stmt.reads())


def needs_exact_clock(stmt: Stmt, facts: BehaviorFacts) -> bool:
    """Must the batched clock be provably flushed (``t == 0``) before
    this statement's effects?  ``Call`` is judged at its own site: a
    non-deferred transfer always needs the exact clock, a deferred one
    only when its argument evaluation reads contested storage."""
    if isinstance(stmt, Assign):
        return (stmt.target.variable.name in facts.contested
                or reads_contested(stmt, facts))
    if isinstance(stmt, (If, While)):
        return reads_contested(stmt, facts)
    if isinstance(stmt, For):
        return stmt.var.name in facts.contested
    return False
