"""Translation validation for the compiled simulation backend.

``repro.sim.compiled`` lowers each behavior to specialized Python for
a 10-100x simulation speedup; this package is the static proof that
the speedup did not change the semantics.  Per process it either

* **validates**: every proof obligation discharged -- clock batching
  telescopes to the interpreter's per-statement wait sum, contested
  effects happen at provably exact clocks, wraps are present (or their
  elision certified by a range certificate), transfers reproduce the
  planned tier and the deferred virtual-grant clock formula, and every
  lowered expression is alpha-equivalent to an independently derived
  lowering; or
* **refutes** with a ``P801``-``P806`` diagnostic and a counterexample
  recipe replayable with
  :func:`repro.sim.replay.replay_backend_divergence`.

``simulate(..., backend="compiled")`` runs this pass by default and
demotes refuted processes to the interpreter, so the compiled backend
never executes an unproven process.
"""

from repro.analysis.tv.checker import (
    ProcessVerdict,
    Refutation,
    ValidationReport,
    validate_behavior,
    validate_program,
)
from repro.analysis.tv.trace import BehaviorFacts, spec_facts

__all__ = [
    "BehaviorFacts",
    "ProcessVerdict",
    "Refutation",
    "ValidationReport",
    "spec_facts",
    "validate_behavior",
    "validate_program",
    "validate_refined",
]


def validate_refined(spec, schedule=None, **sim_kwargs):
    """Elaborate ``spec`` with the compiled backend and validate every
    lowered process.  Convenience entry point for ``lint``/``verify``:
    validation runs on the exact sources the backend would execute,
    without running the simulation."""
    from repro.sim.runtime import RefinedSimulation

    sim = RefinedSimulation(spec, schedule=schedule, backend="compiled",
                            validate_compiled=False, **sim_kwargs)
    return validate_program(sim)
