"""Source-side parsing of emitted specialized Python into the trace
algebra.

The generated code is ordinary Python; this module gives the checker a
*canonical* view of it:

* **alpha-renaming** (:class:`Renamer` + :func:`normalize`): namespace
  bindings ``_b<k>_<hint>`` reduce to their semantic hint (``env_read``,
  ``div``, ``xf_ch0_specialized``) -- binding numbers depend on bind
  order, the hint is the contract -- and compiler temporaries
  (``_t3``, ``_v7``, ``_i8``, ``_f1``, ``_r2``, ``_adr4``, ``_dat5``
  and the validator's own ``_w<n>``) are renamed to ``_x0, _x1, ...``
  in first-occurrence order.  Two expressions are judged equal iff
  their normalized ``ast.dump`` strings match, which makes temp names
  irrelevant while keeping their order and multiplicity significant;
* **pattern accessors** for the clock-batching skeleton: ``t += n``
  increments, ``t = 0`` resets, ``yield W(t)`` waits and the
  three-line flush block, so the checker can consume them without
  re-deriving the AST shapes everywhere.

Nothing here judges correctness -- that is
:mod:`repro.analysis.tv.checker`'s job; this module only answers
"what is this statement, canonically?".
"""

from __future__ import annotations

import ast
import copy
import re
from typing import Dict, List, Optional

#: Namespace binding: ``_b12_env_read`` -> hint ``env_read``.
_BIND_RE = re.compile(r"^_b\d+_(.+)$")
#: Compiler temporaries (codegen's ``temp()`` prefixes + the
#: validator's ``_w<n>`` walrus temps).
_TEMP_RE = re.compile(r"^_(?:t|v|i|f|r|w|adr|dat)\d+$")


class Renamer:
    """Alpha-renaming map for one side of one statement comparison."""

    def __init__(self) -> None:
        self._map: Dict[str, str] = {}

    def rename(self, name: str) -> str:
        bind = _BIND_RE.match(name)
        if bind:
            return bind.group(1)
        if _TEMP_RE.match(name):
            return self._map.setdefault(name, f"_x{len(self._map)}")
        return name

    def snapshot(self) -> Dict[str, str]:
        return dict(self._map)

    def restore(self, snap: Dict[str, str]) -> None:
        self._map = dict(snap)


def is_temp(name: str) -> bool:
    """Is ``name`` a compiler temporary (subject to alpha-renaming)?"""
    return _TEMP_RE.match(name) is not None


def normalize(node: ast.AST, renamer: Renamer) -> str:
    """Canonical dump of an AST fragment under ``renamer``."""
    tree = copy.deepcopy(node)
    for sub in ast.walk(tree):
        if isinstance(sub, ast.Name):
            sub.id = renamer.rename(sub.id)
    return ast.dump(tree, annotate_fields=False)


def parse_expr(code: str) -> ast.expr:
    """Parse one expression string (the IR-side obliged lowering)."""
    return ast.parse(code, mode="eval").body


def hint_of(name: str) -> str:
    """The semantic hint of a (possibly bound) generated name."""
    bind = _BIND_RE.match(name)
    return bind.group(1) if bind else name


def is_name(node: ast.AST, ident: str) -> bool:
    return isinstance(node, ast.Name) and node.id == ident


def is_hinted_name(node: ast.AST, hint: str) -> bool:
    """Is ``node`` a Name whose hint (after alpha-renaming) is
    ``hint``?"""
    return isinstance(node, ast.Name) and hint_of(node.id) == hint


def is_const(node: ast.AST, value: object) -> bool:
    return (isinstance(node, ast.Constant) and node.value == value
            and type(node.value) is type(value))


def int_const(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    return None


def literal_int(node: ast.AST) -> Optional[int]:
    """Like :func:`int_const` but also reads ``-<n>`` literals (the
    parser represents them as a unary minus)."""
    value = int_const(node)
    if value is not None:
        return value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = int_const(node.operand)
        if inner is not None:
            return -inner
    return None


def tinc(stmt: ast.stmt) -> Optional[int]:
    """``t += n`` -> n; anything else -> None."""
    if (isinstance(stmt, ast.AugAssign)
            and isinstance(stmt.op, ast.Add)
            and is_name(stmt.target, "t")):
        return int_const(stmt.value)
    return None


def is_t_reset(stmt: ast.stmt) -> bool:
    """``t = 0``."""
    return (isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and is_name(stmt.targets[0], "t")
            and is_const(stmt.value, 0))


def yield_wait_arg(stmt: ast.stmt) -> Optional[ast.expr]:
    """``yield W(<arg>)`` -> the arg node; anything else -> None."""
    if not (isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Yield)):
        return None
    call = stmt.value.value
    if (isinstance(call, ast.Call) and is_name(call.func, "W")
            and len(call.args) == 1 and not call.keywords):
        return call.args[0]
    return None


def is_yield_wait_t(stmt: ast.stmt) -> bool:
    """``yield W(t)`` exactly."""
    arg = yield_wait_arg(stmt)
    return arg is not None and is_name(arg, "t")


def flush_test(stmt: ast.stmt) -> bool:
    """Is this an ``if t:`` statement (a flush block head)?"""
    return (isinstance(stmt, ast.If) and is_name(stmt.test, "t")
            and not stmt.orelse)


def chunk_flush_threshold(stmt: ast.stmt) -> Optional[int]:
    """``if t >= <K>:`` (a While chunk-flush head) -> K."""
    if not (isinstance(stmt, ast.If) and not stmt.orelse):
        return None
    test = stmt.test
    if (isinstance(test, ast.Compare) and is_name(test.left, "t")
            and len(test.ops) == 1 and isinstance(test.ops[0], ast.GtE)):
        return int_const(test.comparators[0])
    return None


def yield_from_call(node: ast.expr) -> Optional[ast.Call]:
    """``yield from f(...)`` -> the Call node."""
    if isinstance(node, ast.YieldFrom) and isinstance(node.value,
                                                      ast.Call):
        return node.value
    return None


def simple_assign(stmt: ast.stmt) -> Optional[ast.Name]:
    """Single-target ``<name> = ...`` -> the target Name node."""
    if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)):
        return stmt.targets[0]
    return None


def line_of(stmt: ast.stmt) -> Optional[int]:
    return getattr(stmt, "lineno", None)


def describe_stmt(stmt: ast.stmt) -> str:
    """Short source-shaped description for diagnostics."""
    try:
        text = ast.unparse(stmt)
    except Exception:  # pragma: no cover - unparse is best-effort
        text = ast.dump(stmt)
    first = text.splitlines()[0]
    return first if len(first) <= 60 else first[:57] + "..."
