"""Seeded codegen-defect corpus for the translation validator.

A validator that has never rejected anything proves nothing.  This
module plants eight realistic compiler defects -- each a source-level
mutation of the generated Python, injected through
:func:`repro.sim.compiled.source_transform` so the mutated text is
exactly what would execute -- and demands two things of each:

* **refutation exactness**: the validator rejects the mutated program
  with *exactly* the defect's own ``P8xx`` code (no other code fires,
  no defect slips through), and
* **counterexample concreteness**: the mutated program observably
  diverges from the interpreter on a real run
  (:func:`repro.sim.replay.replay_backend_divergence` confirms it).

The corpus doubles as the regression gate for the validator itself:
``make validate-compiled`` and ``tests/test_tv.py`` run
:func:`check_corpus` and fail on any inexact outcome.

Defect roster (one per legal-transform proof obligation):

========================  =====  =========================================
defect                    code   what the "compiler bug" does
========================  =====  =========================================
``chunk_flush_off_by_one``  P801  chunked ``While`` flush fires at the
                                  wrong threshold and waits ``t - 1``
``clock_tamper``            P801  a statement charges 2 clocks instead
                                  of its interpreter cost of 1
``reordered_store``         P802  contested store hoisted above the
                                  flush that fixes its exact clock
``dropped_loop_wrap``       P803  loop-variable wrap elided without a
                                  range certificate (bounds overflow)
``stale_virtual_grant``     P804  deferred transfer passes ``0`` pending
                                  clocks instead of the live ``t``
``extra_yield``             P805  spurious ``yield W(1)`` the IR never
                                  asked for
``misfolded_constant``      P806  constant folding computes the wrong
                                  value
``wrap_bias``               P806  wrap lowering biased by one
                                  (``- 127`` where ``- 128`` belongs)
========================  =====  =========================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.partition.channels import default_bus_groups, extract_channels
from repro.partition.partitioner import Partition
from repro.protocols import FIXED_DELAY, FULL_HANDSHAKE
from repro.protogen.refine import generate_protocol
from repro.spec.behavior import Behavior
from repro.spec.expr import BinOp, Ref
from repro.spec.stmt import Assign, For, If, WaitClocks, While
from repro.spec.system import SystemSpec
from repro.spec.types import IntType
from repro.spec.variable import Variable


# ---------------------------------------------------------------------------
# Purpose-built specs.  Small enough to eyeball, rich enough that every
# mutated construct is live: each defect's corruption flows into a
# shared variable, the end time, or the transaction log.


def _counter_spec():
    """Single accessor over an uncontended FIXED_DELAY bus.

    Exercises (in one behavior): constant folding, the chunked
    ``While`` flush, an 8-bit ``For`` variable whose raw range [0, 200]
    overflows (so the wrap line is load-bearing), an eager ``and``,
    and a fused *deferred-arbitration* transfer carrying the live
    ``t`` -- every mutation site except the contested store.
    """
    x = Variable("X", IntType(16), init=3)
    acc = Variable("P_acc", IntType(16), init=0)
    ctr = Variable("P_ctr", IntType(16), init=0)
    loop = Variable("li", IntType(8))
    body = [
        WaitClocks(2),
        Assign(acc, BinOp("*", 617, 2)),
        While(BinOp("<", Ref(ctr), 6),
              [Assign(acc, BinOp("+", Ref(acc), 1)),
               Assign(ctr, BinOp("+", Ref(ctr), 1))]),
        For(loop, 0, 200,
            [Assign(acc, BinOp("+", Ref(acc), Ref(loop)))]),
        If(BinOp("and", Ref(acc), Ref(ctr)),
           [Assign(acc, BinOp("+", Ref(acc), 1))], []),
        Assign(x, Ref(acc)),
    ]
    behavior = Behavior("P", body, local_variables=[acc, ctr])
    system = SystemSpec("tv_counter", [behavior], [x])

    partition = Partition(system)
    chip = partition.add_module("chip")
    memory = partition.add_module("memory")
    partition.assign(behavior, chip)
    partition.assign(x, memory)
    channels = extract_channels(partition)
    group = default_bus_groups(partition, channels=channels)[0]
    refined = generate_protocol(system, group, width=8,
                                protocol=FIXED_DELAY)
    return refined, None


def _race_spec():
    """Two behaviors racing on a contested same-module scalar.

    ``X`` lives on the chip with both behaviors, so stores go through
    the flushed exact-clock ``env_write`` path; ``Y`` lives across the
    bus so the spec still has a channel.  The interleaving is clock-
    sensitive by construction: Q samples ``X`` at clock 3, P writes it
    at clock 6 -- any store that happens earlier than its flush says
    is observable in ``Y``.
    """
    x = Variable("X", IntType(16), init=0)
    y = Variable("Y", IntType(16), init=0)
    p = Behavior("P", [WaitClocks(6), Assign(x, 7)])
    q = Behavior("Q", [WaitClocks(2), Assign(y, Ref(x))])
    system = SystemSpec("tv_race", [p, q], [x, y])

    partition = Partition(system)
    chip = partition.add_module("chip")
    memory = partition.add_module("memory")
    partition.assign(p, chip)
    partition.assign(q, chip)
    partition.assign(x, chip)
    partition.assign(y, memory)
    channels = extract_channels(partition)
    group = default_bus_groups(partition, channels=channels)[0]
    refined = generate_protocol(system, group, width=8,
                                protocol=FULL_HANDSHAKE)
    return refined, None


# ---------------------------------------------------------------------------
# The mutations.  Each is a pure text transform on one behavior's
# generated source; regexes are anchored to the codegen contract the
# validator enforces, so a contract change breaks these loudly.

_CHUNK_FLUSH = re.compile(r"if t >= 4096:\n(\s*)yield W\(t\)")
_ENV_STORE_AFTER_FLUSH = re.compile(
    r"(?P<ind>[ ]+)if t:\n"
    r"(?P=ind)    yield W\(t\)\n"
    r"(?P=ind)    t = 0\n"
    r"(?P<store>(?P=ind)_b\d+_env_write\([^\n]*\)\n)")
_LOOP_WRAP = re.compile(
    r"(_l_\w+) = \(\(\((_f\d+) \+ \d+\) & \d+\) - \d+\)")
_WRAP_BIAS = re.compile(r"(\(\(\(_f\d+ \+ \d+\) & \d+\) - )128\)")
_DEFERRED_T = re.compile(r"(yield from _b\d+_xf_\w+\(.*), t\)")
_FIRST_TINC = re.compile(r"( *)t \+= 1\n")


def _chunk_flush_off_by_one(name: str, source: str) -> str:
    return _CHUNK_FLUSH.sub(r"if t >= 8:\n\1yield W(t - 1)", source)


def _clock_tamper(name: str, source: str) -> str:
    return source.replace("t += 1\n", "t += 2\n", 1)


def _reordered_store(name: str, source: str) -> str:
    return _ENV_STORE_AFTER_FLUSH.sub(
        r"\g<store>\g<ind>if t:\n"
        r"\g<ind>    yield W(t)\n"
        r"\g<ind>    t = 0\n", source)


def _dropped_loop_wrap(name: str, source: str) -> str:
    return _LOOP_WRAP.sub(r"\1 = \2", source)


def _stale_virtual_grant(name: str, source: str) -> str:
    return _DEFERRED_T.sub(r"\1, 0)", source)


def _extra_yield(name: str, source: str) -> str:
    return _FIRST_TINC.sub(r"\1t += 1\n\1yield W(1)\n", source, count=1)


def _misfolded_constant(name: str, source: str) -> str:
    return source.replace("1234", "1235")


def _wrap_bias(name: str, source: str) -> str:
    return _WRAP_BIAS.sub(r"\g<1>127)", source)


@dataclass(frozen=True)
class CodegenDefect:
    """One planted compiler bug and the code that must catch it."""

    name: str
    #: The single P8xx code this defect must be refuted with.
    code: str
    description: str
    build: Callable[[], Tuple[object, Optional[Sequence]]]
    #: ``(behavior_name, source) -> source`` applied to every
    #: generated process, exactly as ``source_transform`` delivers it.
    transform: Callable[[str, str], str]


DEFECTS: Tuple[CodegenDefect, ...] = (
    CodegenDefect(
        "chunk_flush_off_by_one", "P801",
        "chunked While flush fires at t >= 8 and waits W(t - 1)",
        _counter_spec, _chunk_flush_off_by_one),
    CodegenDefect(
        "clock_tamper", "P801",
        "one statement charges t += 2 for an interpreter cost of 1",
        _counter_spec, _clock_tamper),
    CodegenDefect(
        "reordered_store", "P802",
        "contested env_write hoisted above its exact-clock flush",
        _race_spec, _reordered_store),
    CodegenDefect(
        "dropped_loop_wrap", "P803",
        "8-bit loop variable used raw over range(0, 201); wrap elided "
        "without a covering range certificate",
        _counter_spec, _dropped_loop_wrap),
    CodegenDefect(
        "stale_virtual_grant", "P804",
        "deferred transfer passes 0 pending clocks instead of t",
        _counter_spec, _stale_virtual_grant),
    CodegenDefect(
        "extra_yield", "P805",
        "spurious yield W(1) the IR never asked for",
        _counter_spec, _extra_yield),
    CodegenDefect(
        "misfolded_constant", "P806",
        "617 * 2 folded to 1235",
        _counter_spec, _misfolded_constant),
    CodegenDefect(
        "wrap_bias", "P806",
        "signed 8-bit wrap lowered with - 127 instead of - 128",
        _counter_spec, _wrap_bias),
)


@dataclass
class DefectOutcome:
    """What the validator and the replayer said about one defect."""

    defect: CodegenDefect
    #: Behaviors whose generated source the transform actually changed.
    mutated: Tuple[str, ...]
    #: Distinct P-codes the validator fired on the mutated program.
    codes: Tuple[str, ...]
    #: Behaviors refuted.
    refuted: Tuple[str, ...]
    #: True when the *unmutated* build of the same spec validates
    #: cleanly (so the refutation below is attributable to the defect).
    clean: bool
    #: Concrete interp-vs-mutated-compiled divergence.
    replay: "object"

    @property
    def exact(self) -> bool:
        """Refuted by exactly its own code, on a clean baseline, with
        a confirmed concrete counterexample."""
        return (self.clean
                and bool(self.mutated)
                and self.codes == (self.defect.code,)
                and bool(self.refuted)
                and self.replay.confirmed)

    def render_line(self) -> str:
        verdict = "ok" if self.exact else "FAIL"
        codes = ",".join(self.codes) or "-"
        return (f"{verdict:4s} {self.defect.name:24s} "
                f"want {self.defect.code} got {codes:12s} "
                f"refuted={','.join(self.refuted) or '-'} "
                f"replay={'diverged' if self.replay.confirmed else 'NO'}")


def _validate_build(spec, schedule, transform=None):
    """Compile ``spec`` (optionally under a source transform) and run
    the validator on the exact sources produced."""
    from repro.analysis.tv.checker import validate_program
    from repro.sim.compiled import source_transform
    from repro.sim.runtime import RefinedSimulation

    changed: List[str] = []

    def hook(name: str, source: str) -> str:
        if transform is None:
            return source
        out = transform(name, source)
        if out != source:
            changed.append(name)
        return out

    with source_transform(hook):
        sim = RefinedSimulation(spec, schedule=schedule,
                                backend="compiled",
                                validate_compiled=False)
    return validate_program(sim), tuple(sorted(changed))


def check_defect(defect: CodegenDefect) -> DefectOutcome:
    """Judge one defect: clean baseline, mutated refutation, replay."""
    from repro.sim.replay import replay_backend_divergence

    spec, schedule = defect.build()
    clean_report, _ = _validate_build(spec, schedule)
    report, mutated = _validate_build(spec, schedule, defect.transform)
    codes = tuple(sorted({d.code for d in report.diagnostics()}))
    refuted = tuple(sorted(
        name for name, verdict in report.verdicts.items()
        if verdict.refuted))
    replay = replay_backend_divergence(spec, schedule=schedule,
                                       transform=defect.transform)
    return DefectOutcome(
        defect=defect, mutated=mutated, codes=codes, refuted=refuted,
        clean=clean_report.all_validated, replay=replay)


def check_corpus() -> List[DefectOutcome]:
    """Run the whole corpus; one :class:`DefectOutcome` per defect."""
    return [check_defect(defect) for defect in DEFECTS]
