"""Lockstep translation validation: behavior IR vs emitted Python.

The checker walks the behavior's statement IR and the generated
``run()`` generator's AST *in lockstep*, discharging one proof
obligation per legal codegen transform:

* **clock telescoping** -- every ``t += n`` must equal the documented
  statement cost, every flush must yield exactly ``W(t)`` and reset,
  the ``While`` chunk flush must use the contract threshold, and the
  error path must flush pending clocks before re-raising (else
  **P801**);
* **effect order** -- before any effect on contested storage (and
  before any non-deferred bus transfer) the pending batch must be
  *provably* zero: the symbolic ``t`` state tracks a known integer or
  ``unknown``, and only an explicit flush restores provability (else
  **P802**);
* **wrap soundness** -- every store carries the dtype wrap; a ``For``
  loop may elide the loop-variable wrap only when the checker's own
  range certificate shows every iterate is representable (else
  **P803**);
* **transfer timing** -- a deferred fused transfer must forward the
  live pending batch as its third argument, zero it afterwards, and is
  only accepted where the checker independently re-derives
  deferred-arbitration eligibility (else **P804**);
* **algebra membership** -- any construct outside these patterns is
  unprovable (**P805**);
* **value preservation** -- every lowered expression must normalize to
  the checker's independently derived lowering, including eager
  ``and``/``or`` and constant folds computed with the IR's own
  evaluator (else **P806**).

A refutation aborts the walk with the first failed obligation; the
verdict carries a replayable counterexample recipe
(:func:`repro.sim.replay.replay_backend_divergence`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    SourceLocation,
)
from repro.analysis.tv import pyparse as P
from repro.analysis.tv.trace import (
    BehaviorFacts,
    CallPlan,
    ExprLowerer,
    UnprovenExpr,
    needs_exact_clock,
    reads_contested,
    sanitize,
    scalar_bounds,
    spec_facts,
    wrap_code,
)
from repro.errors import AnalysisError
from repro.sim.compiled.codegen import CHUNK_CLOCKS
from repro.spec.stmt import (
    Assign,
    Call,
    ElementTarget,
    For,
    If,
    Nop,
    Stmt,
    WaitClocks,
    While,
)


class Refutation(Exception):
    """A proof obligation failed: equivalence cannot be certified."""

    def __init__(self, code: str, message: str,
                 lineno: Optional[int] = None):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.lineno = lineno


@dataclass(frozen=True)
class ProcessVerdict:
    """Per-process outcome of the translation-validation pass."""

    behavior: str
    #: "validated" | "refuted" | "fallback"
    status: str
    obligations: int = 0
    reason: str = ""
    diagnostics: Tuple[Diagnostic, ...] = ()

    @property
    def validated(self) -> bool:
        return self.status == "validated"

    @property
    def refuted(self) -> bool:
        return self.status == "refuted"

    def describe(self) -> str:
        if self.status == "validated":
            return f"validated ({self.obligations} obligations)"
        if self.status == "refuted":
            return f"REFUTED ({self.reason})"
        return "interpreter fallback"


@dataclass
class ValidationReport:
    """Whole-spec validation outcome (one verdict per behavior)."""

    system: str
    verdicts: Dict[str, ProcessVerdict] = field(default_factory=dict)
    #: The schedule the facts were derived under -- the counterexample
    #: schedule to replay a refutation against.
    stages: List[List[str]] = field(default_factory=list)

    @property
    def all_validated(self) -> bool:
        return not self.refutations()

    def refutations(self) -> List[ProcessVerdict]:
        return [v for _, v in sorted(self.verdicts.items())
                if v.refuted]

    def diagnostics(self) -> List[Diagnostic]:
        out: List[Diagnostic] = []
        for _, verdict in sorted(self.verdicts.items()):
            out.extend(verdict.diagnostics)
        return out

    def obligations(self) -> int:
        return sum(v.obligations for v in self.verdicts.values())

    def verdict_lines(self) -> Dict[str, str]:
        return {name: verdict.describe()
                for name, verdict in sorted(self.verdicts.items())}

    def render_text(self) -> str:
        lines = [f"translation validation: {self.system}"]
        for name, text in self.verdict_lines().items():
            lines.append(f"  {name}: {text}")
        total = self.obligations()
        refuted = len(self.refutations())
        lines.append(f"  {total} obligation(s) discharged, "
                     f"{refuted} refutation(s)")
        return "\n".join(lines)


class _Cursor:
    """Sequential reader over one generated statement list."""

    def __init__(self, stmts: List[ast.stmt]):
        self.stmts = list(stmts)
        self.index = 0

    def peek(self) -> Optional[ast.stmt]:
        if self.index < len(self.stmts):
            return self.stmts[self.index]
        return None

    def next(self, expect: str) -> ast.stmt:
        stmt = self.peek()
        if stmt is None:
            raise Refutation(
                "P805", f"generated code ends where {expect} is "
                "required")
        self.index += 1
        return stmt

    def done(self) -> bool:
        return self.index >= len(self.stmts)


def _targets_t(stmt: ast.stmt) -> bool:
    """Does this statement write the clock accumulator ``t``?"""
    if isinstance(stmt, ast.AugAssign):
        return P.is_name(stmt.target, "t")
    if isinstance(stmt, ast.Assign):
        return any(P.is_name(t, "t") for t in stmt.targets)
    return False


class _Checker:
    """One behavior's lockstep walk.  Raises :class:`Refutation`."""

    def __init__(self, facts: BehaviorFacts):
        self.facts = facts
        self.obligations = 0
        #: Symbolic pending-clock state: a known int, or None (unknown,
        #: e.g. after a loop join).  Effects on contested storage are
        #: only provable when this is exactly 0.
        self.t: Optional[int] = 0
        # Per-IR-statement renamer pair (actual side / expected side):
        # shared across one statement's line group so a temporary
        # defined on one line must be the one consumed on the next.
        self.ren_a = P.Renamer()
        self.ren_e = P.Renamer()

    def _reset_names(self) -> None:
        self.ren_a = P.Renamer()
        self.ren_e = P.Renamer()

    # -- small steps ---------------------------------------------------

    def _discharge(self, count: int = 1) -> None:
        self.obligations += count

    def _bump(self, clocks: int) -> None:
        if self.t is not None:
            self.t += clocks

    def _consume_flush(self, stmt: ast.stmt) -> None:
        """``if t: yield W(t); t = 0`` -- the only mid-body flush form
        (a flush without the reset would double-count on the next
        yield)."""
        body = stmt.body  # type: ignore[attr-defined]
        ok = (len(body) == 2 and P.is_yield_wait_t(body[0])
              and P.is_t_reset(body[1]))
        if not ok:
            raise Refutation(
                "P801", "flush block does not yield exactly the "
                "pending clocks and reset the accumulator",
                P.line_of(stmt))
        self.t = 0
        self._discharge()

    def maybe_flush(self, cur: _Cursor) -> None:
        """Consume any number of flush blocks: a flush is provably
        legal at every statement boundary."""
        while True:
            stmt = cur.peek()
            if stmt is None or not P.flush_test(stmt):
                return
            cur.next("flush block")
            self._consume_flush(stmt)

    def require_exact_clock(self, what: str,
                            lineno: Optional[int]) -> None:
        if self.t != 0:
            pending = ("an unbounded batch" if self.t is None
                       else f"{self.t} pending clock(s)")
            raise Refutation(
                "P802", f"{what} with {pending} unflushed: the effect "
                "would run at a stale simulated clock", lineno)
        self._discharge()

    def expect_tinc(self, cur: _Cursor, clocks: int,
                    what: str) -> None:
        stmt = cur.next(f"clock increment for {what}")
        got = P.tinc(stmt)
        if got is None:
            raise Refutation(
                "P801", f"expected `t += {clocks}` for {what}, found "
                f"`{P.describe_stmt(stmt)}`", P.line_of(stmt))
        if got != clocks:
            raise Refutation(
                "P801", f"{what} costs {clocks} clock(s) but generated "
                f"code accumulates {got}", P.line_of(stmt))
        self._bump(clocks)
        self._discharge()

    # -- expected-block matching --------------------------------------

    def _block_eq(self, actuals: List[ast.stmt],
                  expected: List[ast.stmt]) -> bool:
        snap_a = self.ren_a.snapshot()
        snap_e = self.ren_e.snapshot()
        ok = all(
            P.normalize(a, self.ren_a) == P.normalize(e, self.ren_e)
            for a, e in zip(actuals, expected))
        if not ok:
            self.ren_a.restore(snap_a)
            self.ren_e.restore(snap_e)
        return ok

    def match_block(self, cur: _Cursor, expected_src: str, what: str,
                    probe_src: Optional[str] = None) -> None:
        """Consume ``len(expected)`` generated statements and prove
        them alpha-equivalent to the obliged lowering.  ``probe_src``
        is the *unsoundly unwrapped* variant: matching it (and not the
        wrapped form) is precisely a dropped wrap -> P803."""
        expected = ast.parse(expected_src).body
        actuals = [cur.next(what) for _ in expected]
        if self._block_eq(actuals, expected):
            self._discharge(len(expected))
            return
        lineno = P.line_of(actuals[0])
        if probe_src is not None \
                and self._block_eq(actuals, ast.parse(probe_src).body):
            raise Refutation(
                "P803", f"{what} omits the dtype wrap and no range "
                "certificate covers the stored value", lineno)
        if any(_targets_t(a) for a in actuals):
            raise Refutation(
                "P801", f"{what} manipulates the clock accumulator "
                "outside the batching contract", lineno)
        raise self._attribute(actuals, expected, what, lineno)

    def _attribute(self, actuals: List[ast.stmt],
                   expected: List[ast.stmt], what: str,
                   lineno: Optional[int]) -> Refutation:
        """A block mismatch is P806 when the statement *shapes* agree
        (same kinds, same stores) and only a value expression differs;
        anything else is outside the algebra (P805)."""
        for actual, exp in zip(actuals, expected):
            if type(actual) is not type(exp):
                return Refutation(
                    "P805", f"{what}: `{P.describe_stmt(actual)}` is "
                    "not in the validated trace algebra",
                    P.line_of(actual))
            same_shape = True
            if isinstance(actual, ast.Assign):
                a_t = P.simple_assign(actual)
                e_t = P.simple_assign(exp)
                if a_t is None or e_t is None:
                    # Non-Name targets (the element-store subscript):
                    # value mismatch there is an expression defect,
                    # anything structural was already probed.
                    same_shape = a_t is None and e_t is None
                else:
                    same_shape = (
                        P.hint_of(a_t.id) == P.hint_of(e_t.id)
                        or (P.is_temp(a_t.id) and P.is_temp(e_t.id)))
            elif isinstance(actual, ast.Expr):
                a_call = actual.value
                e_call = exp.value
                same_shape = (
                    isinstance(a_call, ast.Call)
                    and isinstance(e_call, ast.Call)
                    and isinstance(a_call.func, ast.Name)
                    and isinstance(e_call.func, ast.Name)
                    and P.hint_of(a_call.func.id)
                    == P.hint_of(e_call.func.id))
            if not same_shape:
                return Refutation(
                    "P805", f"{what}: `{P.describe_stmt(actual)}` "
                    "does not have the obliged statement shape",
                    P.line_of(actual))
        return Refutation(
            "P806", f"{what}: lowered expression "
            f"`{P.describe_stmt(actuals[0])}` is not "
            "alpha-equivalent to the interpreter's evaluation",
            lineno)

    # -- whole-source walk --------------------------------------------

    def check(self, source: str) -> int:
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise Refutation(
                "P805", f"generated source does not parse: {exc}",
                exc.lineno)
        if len(tree.body) != 1 \
                or not isinstance(tree.body[0], ast.FunctionDef) \
                or tree.body[0].name != "run" \
                or tree.body[0].args.args \
                or tree.body[0].decorator_list:
            raise Refutation(
                "P805", "generated module is not a single bare "
                "`def run():`")
        fn = tree.body[0]
        if len(fn.body) != 2 or not P.is_t_reset(fn.body[0]) \
                or not isinstance(fn.body[1], ast.Try):
            raise Refutation(
                "P805", "generated body is not `t = 0` followed by "
                "the guarded statement block")
        self._check_handlers(fn.body[1])
        cur = _Cursor(fn.body[1].body)
        self.match_prologue(cur)
        self.match_body(self.facts.behavior.body, cur)
        self.match_final_flush(cur)
        self.match_epilogue(cur)
        if not cur.done():
            stmt = cur.peek()
            raise Refutation(
                "P805", "generated code continues past the behavior's "
                f"last statement: `{P.describe_stmt(stmt)}`",
                P.line_of(stmt))
        return self.obligations

    def _check_handlers(self, guard: ast.Try) -> None:
        """The error path must flush pending clocks before re-raising,
        so a raising statement surfaces at the interpreter's exact
        clock -- and must not swallow ``GeneratorExit``."""
        handlers = guard.handlers
        ok = (
            not guard.orelse and not guard.finalbody
            and len(handlers) == 2
            and P.is_name(handlers[0].type, "GeneratorExit")
            and len(handlers[0].body) == 1
            and isinstance(handlers[0].body[0], ast.Raise)
            and handlers[0].body[0].exc is None
            and P.is_name(handlers[1].type, "BaseException")
            and len(handlers[1].body) == 2
            and P.flush_test(handlers[1].body[0])
            and len(handlers[1].body[0].body) in (1, 2)
            and P.is_yield_wait_t(handlers[1].body[0].body[0])
            and (len(handlers[1].body[0].body) == 1
                 or P.is_t_reset(handlers[1].body[0].body[1]))
            and isinstance(handlers[1].body[1], ast.Raise)
            and handlers[1].body[1].exc is None
        )
        if not ok:
            raise Refutation(
                "P801", "error path does not flush the pending batched "
                "clocks before re-raising", P.line_of(guard))
        self._discharge()

    def match_prologue(self, cur: _Cursor) -> None:
        self._reset_names()
        lines = []
        for _, info in sorted(self.facts.variables.items()):
            if info.mode in ("native", "array") and info.loadable:
                lines.append(
                    f"{info.label} = env_read(v_{sanitize(info.name)})")
        if lines:
            self.match_block(cur, "\n".join(lines), "prologue load")

    def match_epilogue(self, cur: _Cursor) -> None:
        self._reset_names()
        lines = []
        for _, info in sorted(self.facts.variables.items()):
            if info.mode == "native" and info.original:
                lines.append(
                    f"env_write(v_{sanitize(info.name)}, {info.label})")
        if not lines:
            return
        expected = ast.parse("\n".join(lines)).body
        actuals = [cur.next("shared-variable write-back")
                   for _ in expected]
        if not self._block_eq(actuals, expected):
            raise Refutation(
                "P802", "shared-variable write-back is missing or out "
                "of order: an original variable's final value would "
                "not reach the environment", P.line_of(actuals[0]))
        self._discharge(len(expected))

    def match_final_flush(self, cur: _Cursor) -> None:
        stmt = cur.next("the end-of-behavior flush")
        if not P.flush_test(stmt):
            raise Refutation(
                "P801", "behavior does not end with the final flush, "
                "so the finish clock is not exact", P.line_of(stmt))
        body = stmt.body
        ok = (len(body) in (1, 2) and P.is_yield_wait_t(body[0])
              and (len(body) == 1 or P.is_t_reset(body[1])))
        if not ok:
            raise Refutation(
                "P801", "final flush does not yield exactly the "
                "pending clocks", P.line_of(stmt))
        self.t = 0
        self._discharge()

    # -- statements ----------------------------------------------------

    def match_body(self, body, cur: _Cursor) -> None:
        for stmt in body:
            self.match_stmt(stmt, cur)

    def match_stmt(self, stmt: Stmt, cur: _Cursor) -> None:
        kind = type(stmt)
        if kind is Nop:
            return
        if kind is WaitClocks:
            if stmt.clocks:
                self.expect_tinc(cur, stmt.clocks,
                                 f"WaitClocks({stmt.clocks})")
            return
        self._reset_names()
        self.maybe_flush(cur)
        if kind is not Call and kind is not For \
                and needs_exact_clock(stmt, self.facts):
            self.require_exact_clock(
                f"{kind.__name__} touching contested storage",
                P.line_of(cur.peek()) if cur.peek() is not None
                else None)
        if kind is Assign:
            self.match_assign(stmt, cur)
        elif kind is If:
            self.match_if(stmt, cur)
        elif kind is For:
            self.match_for(stmt, cur)
        elif kind is While:
            self.match_while(stmt, cur)
        elif kind is Call:
            self.match_call(stmt, cur)
        else:
            raise Refutation(
                "P805", f"statement {kind.__name__} is outside the "
                "validated trace algebra")

    def _lower(self, low: ExprLowerer, expr) -> str:
        try:
            return low.lower(expr)
        except UnprovenExpr as exc:
            raise Refutation("P805", str(exc))

    def match_assign(self, stmt: Assign, cur: _Cursor) -> None:
        low = ExprLowerer(self.facts)
        target = stmt.target
        info = self.facts.info(target.variable)
        if isinstance(target, ElementTarget):
            value = low.fresh_temp()
            index = low.fresh_temp()
            vcode = self._lower(low, stmt.expr)
            icode = self._lower(low, target.index)
            check = f"ixchk_{sanitize(target.variable.name)}"
            store = (f"{info.label}[{index} if 0 <= {index} < "
                     f"{info.length} else {check}({index})]")
            wrapped = wrap_code(info.elem_dtype, value)
            self.match_block(
                cur,
                f"{value} = {vcode}\n{index} = {icode}\n"
                f"{store} = {wrapped}",
                f"element store to {target.variable.name}",
                probe_src=(f"{value} = {vcode}\n{index} = {icode}\n"
                           f"{store} = {value}"))
        else:
            vcode = self._lower(low, stmt.expr)
            wrapped = wrap_code(info.dtype, vcode)
            if info.mode == "native":
                expected = f"{info.label} = {wrapped}"
                probe = f"{info.label} = {vcode}"
            else:
                expected = f"env_write({info.label}, {wrapped})"
                probe = f"env_write({info.label}, {vcode})"
            self.match_block(
                cur, expected, f"assignment to {target.variable.name}",
                probe_src=probe)
        self.expect_tinc(cur, 1, "the assignment")

    def match_if(self, stmt: If, cur: _Cursor) -> None:
        low = ExprLowerer(self.facts)
        node = cur.next("an if statement")
        if not isinstance(node, ast.If):
            raise Refutation(
                "P805", f"expected a lowered If, found "
                f"`{P.describe_stmt(node)}`", P.line_of(node))
        test = node.test
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.NotEq)
                and P.is_const(test.comparators[0], 0)):
            raise Refutation(
                "P805", "If condition is not the obliged "
                "`<lowered> != 0` form", P.line_of(node))
        self._match_expr_node(test.left, self._lower(low, stmt.cond),
                              "If condition")
        entry = self.t
        self.t = entry
        then_cur = _Cursor(node.body)
        self.expect_tinc(then_cur, 1, "the taken If branch")
        self.match_body(stmt.then_body, then_cur)
        self._finish_cursor(then_cur, "the If then-branch")
        t_then = self.t
        self.t = entry
        else_cur = _Cursor(node.orelse)
        self.expect_tinc(else_cur, 1, "the not-taken If branch")
        self.match_body(stmt.else_body, else_cur)
        self._finish_cursor(else_cur, "the If else-branch")
        t_else = self.t
        self.t = t_then if t_then == t_else else None

    def match_for(self, stmt: For, cur: _Cursor) -> None:
        info = self.facts.info(stmt.var)
        node = cur.next("a lowered For loop")
        if not (isinstance(node, ast.For) and not node.orelse
                and isinstance(node.target, ast.Name)):
            raise Refutation(
                "P805", f"expected a lowered For, found "
                f"`{P.describe_stmt(node)}`", P.line_of(node))
        rng = node.iter
        ok_range = (
            isinstance(rng, ast.Call) and P.is_name(rng.func, "range")
            and len(rng.args) == 2 and not rng.keywords
            and P.literal_int(rng.args[0]) == stmt.lo
            and P.literal_int(rng.args[1]) == stmt.hi + 1)
        if not ok_range:
            raise Refutation(
                "P801", f"For range is not range({stmt.lo}, "
                f"{stmt.hi + 1}): the trip count (and clock count) "
                "diverges", P.line_of(node))
        body_cur = _Cursor(node.body)
        self.t = None  # arbitrary iteration: pending batch unknown
        target = node.target.id
        if info.mode == "env":
            if not P.is_temp(target):
                raise Refutation(
                    "P802", f"contested loop variable "
                    f"{stmt.var.name!r} is kept native instead of "
                    "written through the environment",
                    P.line_of(node))
            head = body_cur.next("the contested loop-variable flush")
            if not P.flush_test(head):
                raise Refutation(
                    "P802", "contested loop variable is written "
                    "without a flush: iterations would publish at "
                    "stale clocks", P.line_of(head))
            self._consume_flush(head)
            self.match_block(
                body_cur,
                f"env_write({info.label}, "
                f"{wrap_code(info.dtype, target)})",
                f"loop-variable write of {stmt.var.name}",
                probe_src=f"env_write({info.label}, {target})")
        elif target == info.label:
            lo_ok, hi_ok = scalar_bounds(info.dtype)
            if not (lo_ok <= stmt.lo and stmt.hi <= hi_ok):
                raise Refutation(
                    "P803", f"loop-variable wrap elided but the range "
                    f"certificate [{lo_ok}, {hi_ok}] does not cover "
                    f"iterates {stmt.lo}..{stmt.hi}", P.line_of(node))
            self._discharge()
        else:
            if not P.is_temp(target):
                raise Refutation(
                    "P805", f"For target {target!r} is neither the "
                    "loop variable's storage nor a raw temporary",
                    P.line_of(node))
            self.match_block(
                body_cur,
                f"{info.label} = {wrap_code(info.dtype, target)}",
                f"loop-variable wrap of {stmt.var.name}",
                probe_src=f"{info.label} = {target}")
        self.expect_tinc(body_cur, 1, "each For iteration")
        self.match_body(stmt.body, body_cur)
        self._finish_cursor(body_cur, "the For body")
        self.t = None

    def match_while(self, stmt: While, cur: _Cursor) -> None:
        low = ExprLowerer(self.facts)
        node = cur.next("a lowered While loop")
        if not (isinstance(node, ast.While)
                and P.is_const(node.test, True) and not node.orelse):
            raise Refutation(
                "P805", f"expected a lowered `while True:`, found "
                f"`{P.describe_stmt(node)}`", P.line_of(node))
        body_cur = _Cursor(node.body)
        self.t = None
        head = body_cur.next("the While chunk flush")
        threshold = P.chunk_flush_threshold(head)
        if threshold is None:
            raise Refutation(
                "P801", "While loop does not begin with the chunk "
                "flush (`if t >= CHUNK_CLOCKS:`): a long-running loop "
                "would overrun the kernel clock guard",
                P.line_of(head))
        if threshold != CHUNK_CLOCKS:
            raise Refutation(
                "P801", f"chunk flush threshold {threshold} differs "
                f"from the contract ({CHUNK_CLOCKS})", P.line_of(head))
        chunk_body = head.body  # type: ignore[attr-defined]
        ok = (len(chunk_body) == 2
              and P.is_yield_wait_t(chunk_body[0])
              and P.is_t_reset(chunk_body[1]))
        if not ok:
            raise Refutation(
                "P801", "chunk flush does not yield exactly the "
                "pending clocks and reset the accumulator",
                P.line_of(head))
        self._discharge()
        if reads_contested(stmt, self.facts):
            nxt = body_cur.next("the contested-condition flush")
            if not P.flush_test(nxt):
                raise Refutation(
                    "P802", "While condition reads contested storage "
                    "but iterations re-evaluate it without a flush",
                    P.line_of(nxt))
            self._consume_flush(nxt)
        else:
            self.maybe_flush(body_cur)
        exit_node = body_cur.next("the While exit test")
        if not (isinstance(exit_node, ast.If) and not exit_node.orelse):
            raise Refutation(
                "P805", "While exit test is not the obliged "
                "`if <lowered> == 0:` form", P.line_of(exit_node))
        test = exit_node.test
        if not (isinstance(test, ast.Compare) and len(test.ops) == 1
                and isinstance(test.ops[0], ast.Eq)
                and P.is_const(test.comparators[0], 0)):
            raise Refutation(
                "P805", "While exit test is not the obliged "
                "`if <lowered> == 0:` form", P.line_of(exit_node))
        self._match_expr_node(test.left, self._lower(low, stmt.cond),
                              "While condition")
        exit_body = exit_node.body
        ok = (len(exit_body) == 2 and P.tinc(exit_body[0]) == 1
              and isinstance(exit_body[1], ast.Break))
        if not ok:
            raise Refutation(
                "P801", "While exit does not cost exactly one clock "
                "before breaking", P.line_of(exit_node))
        self._discharge()
        self.expect_tinc(body_cur, 1, "each While iteration")
        self.match_body(stmt.body, body_cur)
        self._finish_cursor(body_cur, "the While body")
        self.t = None

    # -- calls ---------------------------------------------------------

    def match_call(self, stmt: Call, cur: _Cursor) -> None:
        plan = self.facts.call_plans.get(id(stmt.procedure))
        if plan is None:
            raise Refutation(
                "P805", "call to a procedure with no recomputed "
                "transfer plan")
        low = ExprLowerer(self.facts)
        lineno = P.line_of(cur.peek()) if cur.peek() is not None \
            else None
        if not plan.deferred or reads_contested(stmt, self.facts):
            self.require_exact_clock(
                f"transfer on {plan.bus}.{plan.channel}", lineno)
        args = list(stmt.args)
        addr_name = "None"
        if plan.takes_address:
            addr_tmp = low.fresh_temp()
            acode = self._lower(low, args.pop(0))
            check = f"ixchk_{sanitize(plan.var_name)}"
            self.match_block(
                cur, f"{addr_tmp} = {acode}\n{check}({addr_tmp})",
                f"address of {plan.proc_name}")
            addr_name = addr_tmp
        data_name = "None"
        if plan.is_write:
            data_tmp = low.fresh_temp()
            dcode = self._lower(low, args[0])
            self.match_block(
                cur,
                f"{data_tmp} = pack_{sanitize(plan.var_name)}"
                f"({dcode})",
                f"data pack of {plan.proc_name}")
            data_name = data_tmp
        result_tmp = low.fresh_temp()
        xf = f"xf_{sanitize(plan.channel)}_{plan.mode}"
        node = cur.next(f"the {plan.proc_name} transfer")
        if self._is_deferred_transfer(node):
            if not plan.deferred:
                raise Refutation(
                    "P804", f"{plan.bus}.{plan.channel} uses the "
                    "deferred-arbitration form but eligibility "
                    "(immediate arbiter + schedule-ordered accessors "
                    "+ fused tier) cannot be re-proven",
                    P.line_of(node))
            self._match_transfer_call(
                node, xf, addr_name, data_name, result_tmp,
                deferred=True, plan=plan)
            reset = cur.next("the post-transfer accumulator reset")
            if not P.is_t_reset(reset):
                raise Refutation(
                    "P804", "deferred transfer does not zero the "
                    "pending batch it forwarded: clocks would be "
                    "counted twice", P.line_of(reset))
            self.t = 0
            self._discharge(2)
        else:
            self._match_acquired_transfer(
                node, cur, xf, addr_name, data_name, result_tmp, plan)
        if plan.is_read:
            value_tmp = low.fresh_temp()
            target = stmt.results[0]
            info = self.facts.info(target.variable)
            decode = (f"{value_tmp} = dec_{sanitize(plan.var_name)}"
                      f"({result_tmp})")
            if isinstance(target, ElementTarget):
                index_tmp = low.fresh_temp()
                icode = self._lower(low, target.index)
                self.match_block(
                    cur,
                    f"{decode}\n{index_tmp} = {icode}\n"
                    f"env_write_element(v_{sanitize(target.variable.name)}"
                    f", {index_tmp}, {value_tmp})",
                    f"element result store of {plan.proc_name}")
            else:
                wrapped = wrap_code(info.dtype, value_tmp)
                if info.mode == "native":
                    store = f"{info.label} = {wrapped}"
                    probe = f"{info.label} = {value_tmp}"
                else:
                    store = f"env_write({info.label}, {wrapped})"
                    probe = f"env_write({info.label}, {value_tmp})"
                self.match_block(
                    cur, f"{decode}\n{store}",
                    f"result store of {plan.proc_name}",
                    probe_src=f"{decode}\n{probe}")

    @staticmethod
    def _is_deferred_transfer(node: ast.stmt) -> bool:
        target = P.simple_assign(node)
        if target is None:
            return False
        call = P.yield_from_call(node.value)  # type: ignore
        return call is not None and len(call.args) == 3

    def _match_transfer_call(self, node: ast.stmt, xf: str,
                             addr_name: str, data_name: str,
                             result_tmp: str, deferred: bool,
                             plan: CallPlan) -> None:
        """``<r> = yield from xf_<ch>_<mode>(addr, data[, t])``."""
        suffix = ", t" if deferred else ""
        expected_src = (f"{result_tmp} = yield from {xf}"
                        f"({addr_name}, {data_name}{suffix})")
        expected = ast.parse(expected_src).body
        if self._block_eq([node], expected):
            self._discharge()
            return
        # Wrong third argument (or a missing one) on an otherwise
        # correct deferred transfer is the virtual-grant defect.
        call = P.yield_from_call(node.value)  # type: ignore
        if deferred and call is not None \
                and isinstance(call.func, ast.Name) \
                and P.hint_of(call.func.id) == xf \
                and not (len(call.args) == 3
                         and P.is_name(call.args[2], "t")):
            raise Refutation(
                "P804", f"deferred transfer on {plan.bus}."
                f"{plan.channel} does not forward the live pending "
                "batch as its virtual-grant timestamp",
                P.line_of(node))
        if call is not None and isinstance(call.func, ast.Name) \
                and P.hint_of(call.func.id) != xf:
            raise Refutation(
                "P804", f"transfer on {plan.bus}.{plan.channel} does "
                f"not use the planned {plan.mode} tier "
                f"(found {P.hint_of(call.func.id)!r})",
                P.line_of(node))
        raise Refutation(
            "P805", f"transfer of {plan.proc_name} does not have the "
            "obliged form", P.line_of(node))

    def _match_acquired_transfer(self, node: ast.stmt, cur: _Cursor,
                                 xf: str, addr_name: str,
                                 data_name: str, result_tmp: str,
                                 plan: CallPlan) -> None:
        """``yield from acq(<me>)`` / ``try: <transfer> finally:
        rel(<me>)`` -- the non-deferred arbitration protocol."""
        me = self.facts.name
        acq_src = f"yield from acq_{sanitize(plan.bus)}({me!r})"
        if not self._block_eq([node], ast.parse(acq_src).body):
            raise Refutation(
                "P805", f"transfer of {plan.proc_name} does not "
                "acquire the bus in the obliged form",
                P.line_of(node))
        self._discharge()
        guarded = cur.next(f"the guarded {plan.proc_name} transfer")
        if not (isinstance(guarded, ast.Try) and not guarded.handlers
                and not guarded.orelse and len(guarded.body) == 1
                and len(guarded.finalbody) == 1):
            raise Refutation(
                "P802", f"transfer of {plan.proc_name} does not "
                "release the bus on every path", P.line_of(guarded))
        rel_src = f"rel_{sanitize(plan.bus)}({me!r})"
        if not self._block_eq(list(guarded.finalbody),
                              ast.parse(rel_src).body):
            raise Refutation(
                "P802", f"transfer of {plan.proc_name} does not "
                "release the bus it acquired", P.line_of(guarded))
        self._match_transfer_call(
            guarded.body[0], xf, addr_name, data_name, result_tmp,
            deferred=False, plan=plan)
        self._discharge()

    # -- helpers -------------------------------------------------------

    def _match_expr_node(self, actual: ast.expr, expected_code: str,
                         what: str) -> None:
        if P.normalize(actual, self.ren_a) \
                != P.normalize(P.parse_expr(expected_code), self.ren_e):
            raise Refutation(
                "P806", f"{what} is not alpha-equivalent to the "
                "interpreter's evaluation", P.line_of(actual))
        self._discharge()

    def _finish_cursor(self, cur: _Cursor, what: str) -> None:
        self.maybe_flush(cur)
        if not cur.done():
            stmt = cur.peek()
            raise Refutation(
                "P805", f"{what} contains statements beyond the "
                f"behavior's: `{P.describe_stmt(stmt)}`",
                P.line_of(stmt))


# ----------------------------------------------------------------------
# Entry points + verdict cache
# ----------------------------------------------------------------------

#: (facts key, generated source) -> verdict.  Facts keys embed the IR
#: fingerprint, variable placement, contested set and transfer plans,
#: so a hit is only possible when the proof would be identical.
_CACHE: Dict[Tuple[str, str], ProcessVerdict] = {}
_CACHE_LIMIT = 1024

REPLAY_HINT = ("replay with repro.sim.replay."
               "replay_backend_divergence() to reproduce the "
               "divergence on the real backends")


def validate_behavior(facts: BehaviorFacts,
                      source: str) -> ProcessVerdict:
    """Validate one behavior's generated source against its facts."""
    key = (facts.key, source)
    hit = _CACHE.get(key)
    if hit is not None:
        return hit
    try:
        obligations = _Checker(facts).check(source)
    except Refutation as refutation:
        detail = (f"line {refutation.lineno}"
                  if refutation.lineno is not None else None)
        diagnostic = Diagnostic(
            code=refutation.code,
            severity=Severity.ERROR,
            message=f"{facts.name}: {refutation.message}",
            location=SourceLocation("behavior", facts.name,
                                    detail=detail),
            hint=REPLAY_HINT,
        )
        verdict = ProcessVerdict(
            behavior=facts.name, status="refuted",
            reason=f"{refutation.code}: {refutation.message}",
            diagnostics=(diagnostic,))
    else:
        verdict = ProcessVerdict(
            behavior=facts.name, status="validated",
            obligations=obligations)
    if len(_CACHE) >= _CACHE_LIMIT:
        _CACHE.pop(next(iter(_CACHE)))
    _CACHE[key] = verdict
    return verdict


def validate_program(runtime, program=None) -> ValidationReport:
    """Validate every compiled process of an elaborated
    :class:`~repro.sim.runtime.RefinedSimulation`."""
    if program is None:
        program = getattr(runtime, "compiled", None)
    if program is None:
        raise AnalysisError(
            "translation validation needs a compiled program; "
            "elaborate with backend='compiled'")
    _, facts_map = spec_facts(
        runtime, analysis=getattr(program, "analysis", None))
    report = ValidationReport(system=runtime.spec.name,
                              stages=[list(s) for s in runtime._stages])
    for behavior in runtime.spec.behaviors:
        name = behavior.name
        if name in program.sources:
            report.verdicts[name] = validate_behavior(
                facts_map[name], program.sources[name])
        elif name in program.fallbacks:
            report.verdicts[name] = ProcessVerdict(
                behavior=name, status="fallback",
                reason=program.fallbacks[name])
    return report
