"""Bus contention / multi-driver detection (P2xx).

Static checks on the :class:`~repro.protogen.refine.RefinedSpec` bus
structure:

* **P201** -- several behaviors drive one bus without an arbitration
  mechanism: a non-shareable protocol carrying more than one channel is
  an error; a control-line-free protocol (fixed delay) shared by
  several accessors is a warning (it is only safe under a static
  schedule).
* **P202** -- a behavior still reads or writes a served variable
  directly, bypassing the generated variable-process server; the
  server's copy and the direct access race on two storage sites.
* **P203** -- two variable processes serve the same variable: both
  "own" the storage, so writes through one are invisible to the other.
* **P204** -- duplicate channel ID codes on one bus: every transaction
  with that code wakes several servers, all of which drive DATA/DONE.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.diagnostics import (
    DiagnosticSet,
    Severity,
    SourceLocation,
)
from repro.protogen.refine import RefinedSpec
from repro.spec.variable import Variable


def check_contention(spec: RefinedSpec,
                     diagnostics: DiagnosticSet) -> None:
    _check_arbitration(spec, diagnostics)
    _check_bypass(spec, diagnostics)
    _check_double_servers(spec, diagnostics)
    _check_duplicate_ids(spec, diagnostics)


def _check_arbitration(spec: RefinedSpec,
                       diagnostics: DiagnosticSet) -> None:
    for bus in spec.buses:
        protocol = bus.structure.protocol
        location = SourceLocation("bus", bus.name,
                                  detail=f"protocol {protocol.name}")
        if not protocol.shareable and len(bus.group) > 1:
            diagnostics.add(
                "P201", Severity.ERROR,
                f"{len(bus.group)} channels share non-shareable "
                f"protocol {protocol.name}: every accessor drives the "
                "DATA lines with no way to arbitrate",
                location,
                hint="split the group or select a handshake protocol",
            )
            continue
        accessors = bus.group.behaviors()
        if len(accessors) > 1 and not protocol.control_lines:
            names = ", ".join(b.name for b in accessors)
            diagnostics.add(
                "P201", Severity.WARNING,
                f"accessors {names} share the bus with no control "
                "lines: collision-free operation relies entirely on "
                "the static schedule",
                location,
                hint="acceptable only when the schedule provably "
                     "serializes all transfers",
            )


def _check_bypass(spec: RefinedSpec, diagnostics: DiagnosticSet) -> None:
    # Behaviors co-located with a variable keep accessing its storage
    # directly; only the *remote* accessor named by each channel must be
    # rewritten into procedure calls.
    refined = {behavior.name: behavior for behavior in spec.behaviors}
    for bus in spec.buses:
        for channel in bus.group:
            behavior = refined.get(channel.accessor.name)
            if behavior is None:
                continue
            if channel.variable not in behavior.global_variables():
                continue
            diagnostics.add(
                "P202", Severity.ERROR,
                f"behavior {behavior.name} accesses remote variable "
                f"{channel.variable.name} directly, bypassing the bus "
                f"procedures of channel {channel.name}",
                SourceLocation("behavior", behavior.name,
                               detail=f"variable {channel.variable.name}"),
                hint="re-run refinement so the access becomes a "
                     "Send/Receive procedure call",
            )


def _check_double_servers(spec: RefinedSpec,
                          diagnostics: DiagnosticSet) -> None:
    # One variable process per (variable, bus) is the generated norm --
    # a variable reached over several buses gets a server on each, all
    # addressing the same storage.  Two servers answering on the *same*
    # bus is the defect: both decode the same transactions.
    for bus in spec.buses:
        owners: Dict[Variable, List[str]] = {}
        for process in bus.variable_processes:
            owners.setdefault(process.variable, []).append(process.name)
        for variable, names in owners.items():
            if len(names) <= 1:
                continue
            diagnostics.add(
                "P203", Severity.ERROR,
                f"variable {variable.name} is served by {len(names)} "
                f"processes on bus {bus.name}: {', '.join(names)}; "
                "every transaction wakes them all",
                SourceLocation("variable", variable.name,
                               detail=f"bus {bus.name}"),
                hint="a shared variable needs exactly one variable "
                     "process per bus",
            )


def _check_duplicate_ids(spec: RefinedSpec,
                         diagnostics: DiagnosticSet) -> None:
    for bus in spec.buses:
        by_code: Dict[int, List[str]] = {}
        for channel in bus.group:
            code = bus.structure.ids.codes.get(channel.name)
            if code is None:
                continue
            by_code.setdefault(code, []).append(channel.name)
        for code, names in sorted(by_code.items()):
            if len(names) <= 1:
                continue
            diagnostics.add(
                "P204", Severity.ERROR,
                f"channels {', '.join(names)} share ID code {code}: "
                "their servers all answer the same transaction",
                SourceLocation("bus", bus.name, detail=f"ID code {code}"),
                hint="re-run ID assignment; codes must be unique per "
                     "bus",
            )
