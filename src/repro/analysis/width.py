"""Width and capacity checking (P3xx).

Static arithmetic over the refined design's message layouts and bus
structure:

* **P301 truncation** -- a message field's bit count differs from the
  variable it carries (data field vs. the variable's data width,
  address field vs. ``clog2(array length)``): bits are silently lost
  or invented at the bus boundary.
* **P302 ID capacity** -- the bus's ID lines cannot encode every
  channel (``width < clog2(N)``), or an assigned code overflows the
  declared width.
* **P303 slice coverage** -- the word slicing must cover every message
  bit exactly once within ``ceil(bits/width)`` words, and every slice
  must fit the physical DATA lines.  Gaps lose bits, overlaps drive a
  line from two sources.
* **P304** -- a non-shareable (hardwired) protocol moves the whole
  message in one word by definition, so the bus must be at least as
  wide as the largest message.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.analysis.diagnostics import (
    DiagnosticSet,
    Severity,
    SourceLocation,
)
from repro.protogen.procedures import FieldKind, MessageLayout
from repro.protogen.refine import RefinedBus, RefinedSpec
from repro.spec.types import address_bits, clog2, data_bits

ValueRanges = Dict[str, Tuple[int, int]]


def check_widths(spec: RefinedSpec, diagnostics: DiagnosticSet,
                 value_ranges: Optional[ValueRanges] = None) -> None:
    """``value_ranges`` optionally maps channel names to statically
    proven data-value intervals (from the abstract-interpretation
    pass); with them, P301 truncation becomes a *proof* about the
    values that actually flow rather than a declared-size comparison."""
    for bus in spec.buses:
        _check_id_capacity(bus, diagnostics)
        _check_protocol_width(bus, diagnostics)
        for channel in bus.group:
            layout = bus.procedures[channel.name].layout
            location = SourceLocation("channel", channel.name,
                                      detail=f"bus {bus.name}")
            _check_field_widths(channel, layout, location, diagnostics,
                                (value_ranges or {}).get(channel.name))
            _check_slice_coverage(layout, bus.structure.width, location,
                                  diagnostics)


def _bits_for_range(value_range: Tuple[int, int]) -> Optional[int]:
    """Unsigned bits needed for a proven non-negative range."""
    lo, hi = value_range
    if lo < 0 or hi < lo:
        return None
    return max(1, int(hi).bit_length())


def _check_field_widths(channel, layout: MessageLayout,
                        location: SourceLocation,
                        diagnostics: DiagnosticSet,
                        value_range: Optional[Tuple[int, int]] = None,
                        ) -> None:
    expected = {
        FieldKind.DATA: data_bits(channel.variable.dtype),
        FieldKind.ADDRESS: address_bits(channel.variable.dtype),
    }
    proven = getattr(layout, "proven_range", None)
    if proven is not None:
        # The layout was deliberately tightened from a proven value
        # range: the data field is correct iff it holds that range.
        needed = _bits_for_range(proven)
        if needed is not None:
            expected[FieldKind.DATA] = needed
    for kind, want in expected.items():
        field = layout.field(kind)
        have = field.bits if field else 0
        if have == want:
            continue
        fate = "truncated" if have < want else "padded"
        proof = ""
        if kind is FieldKind.DATA and value_range is not None:
            lo, hi = value_range
            needed = _bits_for_range(value_range)
            if needed is not None and have < needed:
                proof = (f"; proven: values reach {hi}, needing "
                         f"{needed} bit(s)")
            elif needed is not None:
                proof = (f"; note: proven values [{lo}, {hi}] fit "
                         f"{have} bit(s), only the declared type "
                         "overflows")
        diagnostics.add(
            "P301", Severity.ERROR,
            f"{kind} field carries {have} bit(s) but variable "
            f"{channel.variable.name} needs {want}: values are "
            f"{fate} on the bus{proof}",
            location,
            hint="the message layout must be regenerated from the "
                 "variable's type",
        )


def _check_id_capacity(bus: RefinedBus,
                       diagnostics: DiagnosticSet) -> None:
    ids = bus.structure.ids
    needed = clog2(len(bus.group.channels))
    location = SourceLocation("bus", bus.name,
                              detail=f"{ids.width} ID line(s)")
    if ids.width < needed:
        diagnostics.add(
            "P302", Severity.ERROR,
            f"{len(bus.group.channels)} channels need "
            f"ceil(log2(N)) = {needed} ID line(s) but the bus has "
            f"{ids.width}: transactions are ambiguous",
            location,
            hint="re-run ID assignment for the full channel set",
        )
    limit = 1 << ids.width
    for name, code in sorted(ids.codes.items()):
        if 0 <= code < limit:
            continue
        diagnostics.add(
            "P302", Severity.ERROR,
            f"channel {name}: ID code {code} does not fit in "
            f"{ids.width} ID line(s)",
            location,
        )


def _check_protocol_width(bus: RefinedBus,
                          diagnostics: DiagnosticSet) -> None:
    structure = bus.structure
    if structure.protocol.shareable:
        return
    largest = bus.group.max_message_bits
    if structure.width >= largest:
        return
    diagnostics.add(
        "P304", Severity.ERROR,
        f"protocol {structure.protocol.name} needs the full "
        f"{largest}-bit message in one word but the bus has only "
        f"{structure.width} data line(s)",
        SourceLocation("bus", bus.name,
                       detail=f"width {structure.width}"),
        hint="hardwired ports cannot split messages into words",
    )


def _check_slice_coverage(layout: MessageLayout, width: int,
                          location: SourceLocation,
                          diagnostics: DiagnosticSet) -> None:
    total = layout.total_bits
    expected_words = math.ceil(total / width) if total else 0
    words = layout.words(width)
    if len(words) != expected_words:
        diagnostics.add(
            "P303", Severity.ERROR,
            f"{total}-bit message over {width} data lines needs "
            f"ceil({total}/{width}) = {expected_words} word(s), layout "
            f"produces {len(words)}",
            location,
        )
    coverage = [0] * total
    for word in words:
        for word_slice in word.slices:
            if word_slice.word_offset + word_slice.bits > width:
                diagnostics.add(
                    "P303", Severity.ERROR,
                    f"word {word.index}: slice of "
                    f"{word_slice.field.kind} occupies DATA("
                    f"{word_slice.word_offset + word_slice.bits - 1}:"
                    f"{word_slice.word_offset}) beyond the "
                    f"{width}-line bus",
                    location,
                )
            lo = word_slice.field.lo + word_slice.field_lo
            hi = word_slice.field.lo + word_slice.field_hi
            for bit in range(lo, hi + 1):
                if bit < total:
                    coverage[bit] += 1
    gaps = [bit for bit, count in enumerate(coverage) if count == 0]
    overlaps = [bit for bit, count in enumerate(coverage) if count > 1]
    if gaps:
        diagnostics.add(
            "P303", Severity.ERROR,
            f"message bit(s) {_span(gaps)} crossed by no bus word: "
            "data is lost in transfer",
            location,
        )
    if overlaps:
        diagnostics.add(
            "P303", Severity.ERROR,
            f"message bit(s) {_span(overlaps)} covered by more than "
            "one slice: two sources drive the same lines",
            location,
        )


def _span(bits) -> str:
    """Compact rendering of a sorted bit list (``0-4, 7``)."""
    parts = []
    start = previous = bits[0]
    for bit in bits[1:]:
        if bit == previous + 1:
            previous = bit
            continue
        parts.append(f"{start}-{previous}" if previous > start
                     else f"{start}")
        start = previous = bit
    parts.append(f"{start}-{previous}" if previous > start else f"{start}")
    return ", ".join(parts)
