"""Fault-tolerance (protection-plan) consistency checks (P6xx).

A protected bus is only as good as the agreement between its three
artifacts: the :class:`~repro.protocols.ProtectionPlan` policy, the
message layouts carrying the check field, and the bus structure's wire
inventory.  Constructors validate each piece locally; this pass
re-checks the *assembled* refined spec, because the mutation corpus
(and, in principle, hand-built specs) can disagree after the fact:

* **P601** -- a protected channel's message layout carries no check
  field, or one of the wrong width: corrupted words sail through
  verification.
* **P602** -- the plan's retry step is below 1: the retry budget never
  shrinks, so a persistent fault retries forever instead of failing.
* **P603** -- the NACK line shadows a protocol control line: the
  server's reject signal and the protocol handshake fight over one
  wire.
* **P604** -- the timeout is below 1 clock: every wait expires
  immediately and even a fault-free handshake is aborted.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    DiagnosticSet,
    Severity,
    SourceLocation,
)
from repro.protogen.procedures import FieldKind
from repro.protogen.refine import RefinedSpec


def check_protection(spec: RefinedSpec,
                     diagnostics: DiagnosticSet) -> None:
    for bus in spec.buses:
        plan = bus.structure.protection
        if plan is None:
            continue
        location = SourceLocation(
            "bus", bus.name, detail=f"protection {plan.protection.name}")
        if plan.retry_step < 1:
            diagnostics.add(
                "P602", Severity.ERROR,
                f"protection retry step is {plan.retry_step}: the retry "
                f"budget ({plan.max_retries}) never decreases, so a "
                "persistent fault loops forever",
                location,
                hint="retry_step must be >= 1",
            )
        if plan.timeout_clocks < 1:
            diagnostics.add(
                "P604", Severity.ERROR,
                f"protection timeout is {plan.timeout_clocks} clock(s): "
                "every bounded wait expires immediately, aborting even "
                "fault-free handshakes",
                location,
                hint="timeout_clocks must cover at least one handshake "
                     "phase (>= 1)",
            )
        if plan.nack_line in bus.structure.protocol.control_lines:
            diagnostics.add(
                "P603", Severity.ERROR,
                f"NACK line {plan.nack_line!r} shadows a "
                f"{bus.structure.protocol.name} control line: the "
                "reject signal and the handshake fight over one wire",
                location,
                hint="pick a NACK line name outside the protocol's "
                     "control lines",
            )
        expected = plan.protection.check_bits
        for channel_name, pair in bus.procedures.items():
            check_field = pair.layout.field(FieldKind.CHECK)
            if check_field is None:
                diagnostics.add(
                    "P601", Severity.ERROR,
                    f"channel {channel_name} is on protected bus "
                    f"{bus.name} but its message layout carries no "
                    "check field: corruption is undetectable",
                    SourceLocation("channel", channel_name,
                                   detail=f"bus {bus.name}"),
                    hint="regenerate procedures with the bus's "
                         "protection plan",
                )
            elif check_field.bits != expected:
                diagnostics.add(
                    "P601", Severity.ERROR,
                    f"channel {channel_name}: check field is "
                    f"{check_field.bits} bit(s) but "
                    f"{plan.protection.name} needs {expected}",
                    SourceLocation("channel", channel_name,
                                   detail=f"bus {bus.name}"),
                    hint="layout and protection plan disagree; "
                         "regenerate procedures",
                )
