"""The temporal verification pass and the ``verify`` engine.

:func:`verify_refined` runs the full property suite -- response,
retry-termination, race-freedom, starvation-freedom -- over every
channel of a refined spec and returns a
:class:`~repro.analysis.mc.checker.VerificationReport` (what
``repro-synth verify`` prints and the synth flow gates VHDL emission
on).  :func:`check_temporal` adapts the same engine to the lint
runner: refuted/unknown verdicts become P7xx diagnostics.

``fsm_transform`` mirrors the handshake pass hook so the mutation
corpus can seed controller-level defects; ``analysis`` lets the runner
share one abstract-interpretation result instead of recomputing it for
the cross-channel drive windows.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.analysis.absint import (
    analyze_refined_values,
    refined_channel_bounds,
)
from repro.analysis.deadlock import FsmTransform
from repro.analysis.diagnostics import (
    DiagnosticSet,
    Severity,
    SourceLocation,
)
from repro.analysis.mc.checker import (
    PROP_RACE,
    PROVED,
    PropertyVerdict,
    REFUTED,
    VerificationReport,
    check_channel,
)
from repro.analysis.mc.races import bus_window_races
from repro.protogen.fsm import synthesize_fsm
from repro.protogen.refine import RefinedSpec

#: Diagnostic severity per P7xx code.  Starvation is a warning: the
#: transfer still completes on every fair schedule.
SEVERITIES = {
    "P701": Severity.ERROR,
    "P702": Severity.ERROR,
    "P703": Severity.ERROR,
    "P704": Severity.WARNING,
    "P705": Severity.ERROR,
}

HINTS = {
    "P701": "check that every request state has a peer path driving "
            "the acknowledge, and that commits are NACK-guarded",
    "P702": "make the retransmission back-edge consume retry budget "
            "(retry_step >= 1 and an is_retry-marked edge)",
    "P703": "separate the drive windows: distinct ID codes, disjoint "
            "word slices, or an explicit serializer",
    "P704": "the schedule only completes under fair arbitration; add "
            "a handshake so the starved side is forced to move",
    "P705": "retry-shaped loops need a protection plan with a finite "
            "budget for the counter abstraction to bound them",
}


def verify_refined(spec: RefinedSpec,
                   fsm_transform: Optional[FsmTransform] = None,
                   analysis: Optional[object] = None,
                   witness_meta: Optional[Dict[str, Any]] = None,
                   ) -> VerificationReport:
    """Model-check every channel of ``spec``; returns all verdicts."""
    report = VerificationReport(system=spec.name)
    meta = dict(witness_meta or {})
    for bus in spec.buses:
        meta_bus = dict(meta, width=bus.structure.width)
        for channel in bus.group:
            pair = bus.procedures[channel.name]
            accessor = synthesize_fsm(pair.accessor, bus.structure)
            server = synthesize_fsm(pair.server, bus.structure)
            if fsm_transform is not None:
                accessor = fsm_transform(accessor)
                server = fsm_transform(server)
            words = len(pair.layout.words(bus.structure.width))
            report.verdicts.extend(check_channel(
                accessor, server,
                plan=bus.structure.protection,
                protocol=bus.structure.protocol,
                words=words,
                system=spec.name,
                bus_name=bus.name,
                channel_name=channel.name,
                witness_meta=meta_bus))
        report.verdicts.extend(
            _bus_race_verdicts(spec, bus, analysis))
    return report


def _bus_race_verdicts(spec: RefinedSpec, bus, analysis):
    """Cross-channel drive-window race check for one bus."""
    if len(list(bus.group)) < 2:
        return []
    if analysis is None:
        analysis = analyze_refined_values(spec)
    bounds = refined_channel_bounds(spec, analysis)
    races = bus_window_races(bus, bounds)
    if not races:
        return [PropertyVerdict(
            property_id=PROP_RACE, bus=bus.name, channel=None,
            status=PROVED,
            message="cross-channel drive windows serialized by "
                    "arbiter and ID decode")]
    race = races[0]
    return [PropertyVerdict(
        property_id=PROP_RACE, bus=bus.name, channel=None,
        status=REFUTED, code="P703",
        message=f"{race.drivers[0]} and {race.drivers[1]} can drive "
                f"{race.line} in overlapping windows: {race.detail}")]


def check_temporal(spec: RefinedSpec, diagnostics: DiagnosticSet,
                   fsm_transform: Optional[FsmTransform] = None,
                   analysis: Optional[object] = None) -> None:
    """Lint adapter: refuted/unknown verdicts become P7xx findings."""
    report = verify_refined(spec, fsm_transform=fsm_transform,
                            analysis=analysis)
    for verdict in report.verdicts:
        if verdict.status == PROVED or verdict.code is None:
            continue
        if verdict.channel is not None:
            location = SourceLocation("channel", verdict.channel,
                                      detail=f"bus {verdict.bus}")
        else:
            location = SourceLocation("bus", verdict.bus)
        diagnostics.add(
            verdict.code, SEVERITIES[verdict.code],
            f"{verdict.property_id}: {verdict.message}",
            location, hint=HINTS.get(verdict.code))
