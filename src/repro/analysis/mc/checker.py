"""Fair-liveness checking over the counter-extended product graph.

Properties checked per channel (CTL-with-fairness flavor, decided by
graph search because the structures are finite and tiny):

* **response** -- ``AG(in-flight -> AF rest)`` under weak fairness:
  every asserted request is eventually acknowledged and the pair
  returns to rest.  Refuted by a reachable in-flight state with no
  move (deadlock), an in-flight region from which rest is unreachable,
  or a *fair* in-flight cycle (each side either moves in the cycle or
  is disabled somewhere in it -- a weakly-fair scheduler can spin
  there forever).  Also covers the NACK-commit safety clause: no
  reachable state may latch/acknowledge a word while the server
  asserts the NACK line.
* **retry-termination** -- under the finite counter abstraction
  (:mod:`repro.analysis.mc.graph`) every budgeted retransmission loop
  unrolls, so a surviving fair cycle through a retry edge or through
  the attempt-start state means the budget provably never exhausts
  (P702).  When the loop cannot be budgeted at all the abstraction
  fails and the verdict is UNKNOWN (P705).  Proofs report the clock
  bound ``(max_retries + 1) x (timeout + handshake)``.
* **race-freedom** -- no reachable simultaneous drive overlap
  (:mod:`repro.analysis.mc.races`, P703).
* **starvation-freedom** -- no *unfair* in-flight cycle: a cycle where
  one side never moves although it stays enabled means completion
  relies entirely on the fairness of the scheduler (P704, warning).

A cycle is classified **fair** iff for every side: the side moves
somewhere in the cycle, or some cycle state leaves it with no enabled
move (weak fairness only obliges continuously-enabled processes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.mc.graph import (
    EdgeLabel,
    TemporalGraph,
    XState,
    attempt_starts,
    build_temporal_graph,
)
from repro.analysis.mc.races import RaceFinding, channel_races
from repro.analysis.mc.witness import Witness, WitnessStep
from repro.analysis.product import parse_actions
from repro.protocols import ProtectionPlan, Protocol
from repro.protogen.fsm import FsmTransition, ProtocolFsm

PROVED = "PROVED"
REFUTED = "REFUTED"
UNKNOWN = "UNKNOWN"

PROP_RESPONSE = "response"
PROP_RETRY = "retry-termination"
PROP_RACE = "race-freedom"
PROP_STARVATION = "starvation-freedom"

PROPERTY_IDS = (PROP_RESPONSE, PROP_RETRY, PROP_RACE, PROP_STARVATION)


@dataclass
class PropertyVerdict:
    """Outcome of one property on one channel (or one whole bus)."""

    property_id: str
    bus: str
    channel: Optional[str]
    status: str
    #: Diagnostic code on refutation/unknown, None on proof.
    code: Optional[str] = None
    message: str = ""
    #: Proven worst-case clocks to completion (retry-termination).
    bound_clocks: Optional[int] = None
    witness: Optional[Witness] = None

    @property
    def refuted(self) -> bool:
        return self.status == REFUTED

    @property
    def proved(self) -> bool:
        return self.status == PROVED

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "property": self.property_id,
            "bus": self.bus,
            "channel": self.channel,
            "status": self.status,
            "message": self.message,
        }
        if self.code is not None:
            data["code"] = self.code
        if self.bound_clocks is not None:
            data["bound_clocks"] = self.bound_clocks
        if self.witness is not None:
            data["witness"] = self.witness.to_dict()
        return data


@dataclass
class VerificationReport:
    """All verdicts of one ``repro-synth verify`` run."""

    system: str
    verdicts: List[PropertyVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(v.proved for v in self.verdicts)

    @property
    def refuted(self) -> List[PropertyVerdict]:
        return [v for v in self.verdicts if v.status != PROVED]

    @property
    def witnesses(self) -> List[Witness]:
        return [v.witness for v in self.verdicts if v.witness is not None]

    def counts(self) -> Dict[str, int]:
        out = {PROVED: 0, REFUTED: 0, UNKNOWN: 0}
        for verdict in self.verdicts:
            out[verdict.status] += 1
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": "repro.mc/verification/v1",
            "system": self.system,
            "ok": self.ok,
            "counts": self.counts(),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    def render_text(self) -> str:
        lines = []
        width = max([len(v.property_id) for v in self.verdicts] + [8])
        for v in self.verdicts:
            where = v.bus if v.channel is None else \
                f"{v.bus}/{v.channel}"
            extra = ""
            if v.bound_clocks is not None:
                extra = f" (bound {v.bound_clocks} clocks)"
            if v.code:
                extra += f" [{v.code}]"
            lines.append(f"  {v.property_id:<{width}}  {where:<20} "
                         f"{v.status}{extra}")
            if v.status != PROVED and v.message:
                lines.append(f"      {v.message}")
        counts = self.counts()
        lines.append(
            f"{self.system}: {counts[PROVED]} proved, "
            f"{counts[REFUTED]} refuted, {counts[UNKNOWN]} unknown")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Graph analysis helpers
# ---------------------------------------------------------------------------

def _sccs(nodes: List[XState],
          edges: Dict[XState, List[Tuple[XState, EdgeLabel]]],
          members: Set[XState]) -> List[List[XState]]:
    """Iterative Tarjan over the subgraph induced by ``members``."""
    index: Dict[XState, int] = {}
    low: Dict[XState, int] = {}
    on_stack: Set[XState] = set()
    stack: List[XState] = []
    sccs: List[List[XState]] = []
    counter = [0]

    for root in nodes:
        if root in index or root not in members:
            continue
        work = [(root, iter([t for t, _ in edges.get(root, [])
                             if t in members]))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for target in successors:
                if target not in index:
                    index[target] = low[target] = counter[0]
                    counter[0] += 1
                    stack.append(target)
                    on_stack.add(target)
                    work.append((target, iter(
                        [t for t, _ in edges.get(target, [])
                         if t in members])))
                    advanced = True
                    break
                if target in on_stack:
                    low[node] = min(low[node], index[target])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def _internal_edges(scc: List[XState],
                    edges: Dict[XState, List[Tuple[XState, EdgeLabel]]],
                    ) -> List[Tuple[XState, XState, EdgeLabel]]:
    members = set(scc)
    out = []
    for source in scc:
        for target, label in edges.get(source, []):
            if target in members:
                out.append((source, target, label))
    return out


def _enabled_sides(graph: TemporalGraph, xstate: XState) -> Set[str]:
    sides: Set[str] = set()
    for _, label in graph.edges.get(xstate, []):
        sides |= label.sides
    return sides


def _is_fair(graph: TemporalGraph, scc: List[XState],
             internal: List[Tuple[XState, XState, EdgeLabel]]) -> bool:
    moving: Set[str] = set()
    for _, _, label in internal:
        moving |= label.sides
    for side in ("accessor", "server"):
        if side in moving:
            continue
        # Weak fairness only obliges a *continuously enabled* side; a
        # cycle state where it is disabled excuses the whole cycle.
        if not any(side not in _enabled_sides(graph, member)
                   for member in scc):
            return False
    return True


def _cycle_labels(scc: List[XState],
                  internal: List[Tuple[XState, XState, EdgeLabel]],
                  entry: XState,
                  ) -> List[EdgeLabel]:
    """A concrete cycle through ``entry`` inside the SCC (BFS back to
    the entry over internal edges)."""
    outgoing: Dict[XState, List[Tuple[XState, EdgeLabel]]] = {}
    for source, target, label in internal:
        outgoing.setdefault(source, []).append((target, label))
    parents: Dict[XState, Tuple[XState, EdgeLabel]] = {}
    frontier = [entry]
    while frontier:
        node = frontier.pop(0)
        for target, label in outgoing.get(node, []):
            if target == entry:
                labels = [label]
                cursor = node
                while cursor != entry:
                    previous, step = parents[cursor]
                    labels.append(step)
                    cursor = previous
                labels.reverse()
                return labels
            if target not in parents:
                parents[target] = (node, label)
                frontier.append(target)
    return []


# ---------------------------------------------------------------------------
# Witness construction
# ---------------------------------------------------------------------------

def _step(label: EdgeLabel) -> WitnessStep:
    def ref(t: Optional[FsmTransition]):
        return None if t is None else (t.source, t.target, t.guard)
    return WitnessStep(accessor=ref(label.accessor),
                       server=ref(label.server))


def _make_witness(graph: TemporalGraph, *, system: str, bus: str,
                  channel: str, protocol: str,
                  protection: Optional[str], property_id: str,
                  code: str, kind: str, claim: Dict[str, Any],
                  stem: List[EdgeLabel],
                  cycle: Optional[List[EdgeLabel]] = None,
                  meta: Optional[Dict[str, Any]] = None) -> Witness:
    steps = [_step(label) for label in stem]
    loop_start = None
    if cycle:
        loop_start = len(steps)
        steps += [_step(label) for label in cycle]
    return Witness(system=system, bus=bus, channel=channel,
                   protocol=protocol, protection=protection,
                   property_id=property_id, code=code, kind=kind,
                   claim=claim, steps=steps, loop_start=loop_start,
                   meta=dict(meta or {}))


# ---------------------------------------------------------------------------
# The channel checker
# ---------------------------------------------------------------------------

def termination_bound(plan: Optional[ProtectionPlan],
                      protocol: Protocol, words: int) -> int:
    """Proven worst-case clocks from invoke to completion.

    One attempt costs at most ``timeout + message_clocks`` (every wait
    is timeout-bounded under a plan; unprotected handshakes finish in
    the protocol's own message clocks); the counter abstraction limits
    the schedule to ``max_retries + 1`` attempts.
    """
    handshake = max(1, protocol.message_clocks(max(1, words)))
    if plan is None:
        return handshake
    attempts = plan.max_retries + 1
    return attempts * (max(1, plan.timeout_clocks) + handshake)


def check_channel(accessor: ProtocolFsm, server: ProtocolFsm, *,
                  plan: Optional[ProtectionPlan] = None,
                  protocol: Optional[Protocol] = None,
                  words: int = 1,
                  system: str = "design", bus_name: str = "?",
                  channel_name: str = "?",
                  witness_meta: Optional[Dict[str, Any]] = None,
                  ) -> List[PropertyVerdict]:
    """Run every temporal property over one controller pair."""
    graph = build_temporal_graph(accessor, server, plan)
    protocol_name = accessor.protocol_name or (
        protocol.name if protocol is not None else "?")
    protection_name = plan.protection.name if plan is not None else None

    def witness(property_id, code, kind, claim, stem, cycle=None):
        return _make_witness(
            graph, system=system, bus=bus_name, channel=channel_name,
            protocol=protocol_name, protection=protection_name,
            property_id=property_id, code=code, kind=kind, claim=claim,
            stem=stem, cycle=cycle, meta=witness_meta)

    def verdict(property_id, status, **kw):
        return PropertyVerdict(property_id=property_id, bus=bus_name,
                               channel=channel_name, status=status, **kw)

    verdicts: List[PropertyVerdict] = []
    in_flight = [x for x in graph.states if not graph.is_rest(x)]
    in_flight_set = set(in_flight)

    # --- abstraction failure short-circuits the liveness family ------
    if graph.abstraction_failure is not None:
        verdicts.append(verdict(
            PROP_RETRY, UNKNOWN, code="P705",
            message=graph.abstraction_failure))
        verdicts.append(verdict(
            PROP_RESPONSE, UNKNOWN,
            message="not provable: retry loops unbudgeted (P705)"))
        verdicts.append(verdict(
            PROP_STARVATION, UNKNOWN,
            message="not provable: retry loops unbudgeted (P705)"))
        verdicts.extend(_race_verdicts(graph, verdict, witness))
        return verdicts

    # --- deadlocks / doomed regions ----------------------------------
    terminal = [x for x in in_flight if not graph.edges.get(x)]
    doomed = _doomed(graph, in_flight_set)

    # --- cycles ------------------------------------------------------
    attempt = attempt_starts(accessor)
    fair_plain: List[Tuple[List[XState], List[EdgeLabel]]] = []
    fair_retry: List[Tuple[List[XState], List[EdgeLabel]]] = []
    unfair: List[Tuple[List[XState], List[EdgeLabel], Set[str]]] = []
    for scc in _sccs(graph.states, graph.edges, in_flight_set):
        internal = _internal_edges(scc, graph.edges)
        if not internal:
            continue
        entry = min(scc, key=lambda x: len(graph.path_to(x)))
        cycle = _cycle_labels(scc, internal, entry)
        retry_flavor = any(label.retry for _, _, label in internal) or \
            any(base[0] in attempt for (base, _) in scc)
        if _is_fair(graph, scc, internal):
            (fair_retry if retry_flavor else fair_plain).append(
                ([entry] + scc, cycle))
        else:
            moving: Set[str] = set()
            for _, _, label in internal:
                moving |= label.sides
            starved = {"accessor", "server"} - moving
            unfair.append(([entry] + scc, cycle, starved))

    # --- NACK-commit safety ------------------------------------------
    nack_state = _nack_commit_state(graph, plan)

    # --- response -----------------------------------------------------
    if terminal:
        state = terminal[0]
        verdicts.append(verdict(
            PROP_RESPONSE, REFUTED, code="P701",
            message=f"request never acknowledged: no transition enabled "
                    f"at {graph.describe_state(state)}",
            witness=witness(PROP_RESPONSE, "P701", "finite",
                            {"type": "deadlock"},
                            graph.path_to(state))))
    elif nack_state is not None:
        verdicts.append(verdict(
            PROP_RESPONSE, REFUTED, code="P701",
            message=f"data committed under an asserted NACK at "
                    f"{graph.describe_state(nack_state)}",
            witness=witness(PROP_RESPONSE, "P701", "finite",
                            {"type": "nack_commit",
                             "line": plan.nack_line if plan else "NACK"},
                            graph.path_to(nack_state))))
    elif fair_plain:
        scc, cycle = fair_plain[0]
        entry = scc[0]
        verdicts.append(verdict(
            PROP_RESPONSE, REFUTED, code="P701",
            message=f"fair in-flight cycle never returns to rest "
                    f"(e.g. {graph.describe_state(entry)})",
            witness=witness(PROP_RESPONSE, "P701", "lasso",
                            {"type": "response_cycle"},
                            graph.path_to(entry), cycle)))
    elif doomed:
        state = doomed[0]
        verdicts.append(verdict(
            PROP_RESPONSE, REFUTED, code="P701",
            message=f"rest unreachable from "
                    f"{graph.describe_state(state)}",
            witness=witness(PROP_RESPONSE, "P701", "finite",
                            {"type": "no_completion"},
                            graph.path_to(state))))
    elif fair_retry:
        verdicts.append(verdict(
            PROP_RESPONSE, REFUTED,
            message="completion blocked by an unbounded retry loop "
                    "(see retry-termination)"))
    else:
        verdicts.append(verdict(
            PROP_RESPONSE, PROVED,
            message="every request reaches rest on all fair schedules"))

    # --- retry termination -------------------------------------------
    if fair_retry:
        scc, cycle = fair_retry[0]
        entry = scc[0]
        verdicts.append(verdict(
            PROP_RETRY, REFUTED, code="P702",
            message="retransmission loop re-enters the word cycle "
                    "without consuming retry budget "
                    f"(e.g. {graph.describe_state(entry)})",
            witness=witness(PROP_RETRY, "P702", "lasso",
                            {"type": "unbounded_retry"},
                            graph.path_to(entry), cycle)))
    else:
        bound = termination_bound(plan, protocol, words) \
            if protocol is not None else None
        verdicts.append(verdict(
            PROP_RETRY, PROVED, bound_clocks=bound,
            message="all retry loops exhaust their budget"
            if graph.has_retry else "no retry loops"))

    # --- starvation ---------------------------------------------------
    if unfair:
        scc, cycle, starved = unfair[0]
        entry = scc[0]
        side = sorted(starved)[0] if starved else "peer"
        verdicts.append(verdict(
            PROP_STARVATION, REFUTED, code="P704",
            message=f"completion relies on fairness: the {side} can "
                    f"starve while enabled in a cycle at "
                    f"{graph.describe_state(entry)}",
            witness=witness(PROP_STARVATION, "P704", "lasso",
                            {"type": "starvation", "starved": side},
                            graph.path_to(entry), cycle)))
    else:
        verdicts.append(verdict(
            PROP_STARVATION, PROVED,
            message="no schedule starves an enabled side"))

    verdicts.extend(_race_verdicts(graph, verdict, witness))
    return verdicts


def _race_verdicts(graph: TemporalGraph, verdict, witness,
                   ) -> List[PropertyVerdict]:
    races = channel_races(graph)
    if not races:
        return [verdict(PROP_RACE, PROVED,
                        message="drive sets disjoint in every "
                                "reachable state")]
    race = races[0]
    stem = graph.path_to(race.state) if race.state is not None else []
    return [verdict(
        PROP_RACE, REFUTED, code="P703",
        message=f"{race.drivers[0]} and {race.drivers[1]} both drive "
                f"{race.line}: {race.detail}"
                + (f" (+{len(races) - 1} more)" if len(races) > 1
                   else ""),
        witness=witness(PROP_RACE, "P703", "finite",
                        {"type": "drive_race", "line": race.line},
                        stem))]


def _doomed(graph: TemporalGraph,
            in_flight: Set[XState]) -> List[XState]:
    """In-flight states from which no rest state is reachable,
    excluding terminal states (those are deadlocks)."""
    reverse: Dict[XState, List[XState]] = {x: [] for x in graph.states}
    for source, targets in graph.edges.items():
        for target, _ in targets:
            reverse[target].append(source)
    seeds = [x for x in graph.states if graph.is_rest(x)]
    co_reachable = set(seeds)
    stack = list(seeds)
    while stack:
        for predecessor in reverse[stack.pop()]:
            if predecessor not in co_reachable:
                co_reachable.add(predecessor)
                stack.append(predecessor)
    return [x for x in graph.states
            if x in in_flight and x not in co_reachable
            and graph.edges.get(x)]


def _nack_commit_state(graph: TemporalGraph,
                       plan: Optional[ProtectionPlan],
                       ) -> Optional[XState]:
    """A reachable state where the server asserts NACK while the
    accessor sits in a commit (acknowledge/latch) state."""
    if plan is None:
        return None
    nack = plan.nack_line
    asserting = set()
    for state in graph.server.states:
        if (nack, 1) in parse_actions(state.actions).drives:
            asserting.add(state.name)
    committing = set()
    for state in graph.accessor.states:
        latches = any(a.startswith("latch ") for a in state.actions)
        if latches or state.name.endswith("_ACK"):
            committing.add(state.name)
    for xstate in graph.states:
        base, _ = xstate
        if base[1] in asserting and base[0] in committing:
            lines = dict(base[2])
            if lines.get(nack, 0) == 1:
                return xstate
    return None
