"""Temporal model checker over generated protocol FSMs (P7xx).

The package layers on top of the product-automaton engine of
:mod:`repro.analysis.product`:

* :mod:`repro.analysis.mc.graph` -- the counter-extended product graph
  (a Kripke structure whose states carry a retry-budget counter);
* :mod:`repro.analysis.mc.checker` -- fair-liveness / response checks,
  retry-termination proofs with clock bounds, NACK-commit safety;
* :mod:`repro.analysis.mc.races` -- the signal-race detector (reachable
  simultaneous drive sets per channel, symbolic drive windows from the
  abstract interpreter across channels);
* :mod:`repro.analysis.mc.witness` -- replayable JSON counterexample
  schedules (:mod:`repro.sim.replay` runs them through the event
  kernel);
* :mod:`repro.analysis.mc.passes` -- the lint pass and the
  ``repro-synth verify`` engine.
"""

from repro.analysis.mc.checker import (
    PROPERTY_IDS,
    PropertyVerdict,
    VerificationReport,
    check_channel,
)
from repro.analysis.mc.graph import TemporalGraph, build_temporal_graph
from repro.analysis.mc.passes import check_temporal, verify_refined
from repro.analysis.mc.witness import Witness, WitnessStep

__all__ = [
    "PROPERTY_IDS",
    "PropertyVerdict",
    "TemporalGraph",
    "VerificationReport",
    "Witness",
    "WitnessStep",
    "build_temporal_graph",
    "check_channel",
    "check_temporal",
    "verify_refined",
]
