"""Signal-race detection (P703).

Two granularities:

* **Intra-channel** -- over the reachable states of the counter-extended
  product graph, intersect the accessor's and server's per-state drive
  sets (:func:`repro.analysis.mc.graph.drive_set`).  A control line
  driven by both sides in one reachable state is a race outright (two
  drivers on one wire conflict even when the levels agree); DATA bit
  ranges conflict when the masks overlap on the *same* word -- the
  strobe master clears the shared word between words
  (``_clear_word`` in :mod:`repro.sim.bus`), so cross-word overlap is
  temporally separated by construction.

* **Inter-channel** -- a happens-before argument over symbolic drive
  windows.  Every accessor transfer runs under the bus arbiter
  (``runtime._exec_call`` acquires unconditionally), so accessor-side
  drives of one bus are serialized; server-side drives are serialized
  by the ID decode *only while ID codes are distinct*.  When two
  channels share an ID code, their servers' drive windows -- computed
  from the abstract interpreter's access bounds
  (:class:`~repro.analysis.absint.rates.ChannelStaticBounds`) as
  ``[0, accesses_hi x message_clocks]`` -- overlap unless one channel
  is proven silent (``accesses_hi == 0``), and the shared DONE/DATA
  wires have two reachable drivers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.mc.graph import TemporalGraph, XState, drive_set


@dataclass(frozen=True)
class RaceFinding:
    """One pair of drivers that can overlap on a wire."""

    #: The contested wire ("NACK", "DATA(7:4)", "ID").
    line: str
    #: Human description of the two drivers.
    drivers: Tuple[str, str]
    #: Witness state for intra-channel races, else None.
    state: Optional[XState] = None
    detail: str = ""


def _mask_span(mask: int) -> str:
    hi = mask.bit_length() - 1
    lo = (mask & -mask).bit_length() - 1
    return f"DATA({hi}:{lo})"


def channel_races(graph: TemporalGraph) -> List[RaceFinding]:
    """Reachable simultaneous drive-set overlaps of one channel pair."""
    a_sets = {s.name: drive_set(s) for s in graph.accessor.states}
    s_sets = {s.name: drive_set(s) for s in graph.server.states}
    findings: List[RaceFinding] = []
    reported = set()
    seen_bases = set()
    for xstate in graph.states:
        base, _ = xstate
        pair = (base[0], base[1])
        if pair in seen_bases:
            continue
        seen_bases.add(pair)
        a_ds = a_sets[base[0]]
        s_ds = s_sets[base[1]]
        for line in sorted(a_ds.controls & s_ds.controls):
            if ("control", line) in reported:
                continue
            reported.add(("control", line))
            findings.append(RaceFinding(
                line=line,
                drivers=(f"{graph.accessor.name}@{base[0]}",
                         f"{graph.server.name}@{base[1]}"),
                state=xstate,
                detail="both sides drive the line in one reachable "
                       "state"))
        overlap = a_ds.data_mask & s_ds.data_mask
        same_word = (a_ds.word is None or s_ds.word is None
                     or a_ds.word == s_ds.word)
        if overlap and same_word and ("data",) not in reported:
            reported.add(("data",))
            findings.append(RaceFinding(
                line=_mask_span(overlap),
                drivers=(f"{graph.accessor.name}@{base[0]}",
                         f"{graph.server.name}@{base[1]}"),
                state=xstate,
                detail="accessor and server word slices overlap on "
                       "the same bus word"))
        if a_ds.drives_id and s_ds.drives_id and ("id",) not in reported:
            reported.add(("id",))
            findings.append(RaceFinding(
                line="ID",
                drivers=(f"{graph.accessor.name}@{base[0]}",
                         f"{graph.server.name}@{base[1]}"),
                state=xstate,
                detail="both sides drive the ID lines"))
    return findings


def bus_window_races(bus, bounds: Dict[str, object],
                     ) -> List[RaceFinding]:
    """Cross-channel drive-window overlaps on one refined bus.

    ``bounds`` maps channel name to
    :class:`~repro.analysis.absint.rates.ChannelStaticBounds` (absent
    entries are treated as unbounded).
    """
    structure = bus.structure
    protocol = structure.protocol
    findings: List[RaceFinding] = []
    channels = list(bus.group)

    def window(channel) -> Optional[Tuple[int, Optional[int]]]:
        """Symbolic server drive window [0, hi_clocks] or None when
        the channel provably never transfers."""
        bound = bounds.get(channel.name)
        if bound is None:
            return (0, None)
        hi = bound.accesses_hi
        if hi == 0:
            return None
        if hi is None:
            return (0, None)
        bits = getattr(channel, "message_bits", structure.width) or 1
        words = max(1, -(-bits // structure.width))
        return (0, hi * max(1, protocol.message_clocks(words)))

    for i, first in enumerate(channels):
        for second in channels[i + 1:]:
            code_a = structure.ids.codes.get(first.name)
            code_b = structure.ids.codes.get(second.name)
            if code_a != code_b:
                # Distinct ID codes: the decode serializes the two
                # servers, no shared reachable window.
                continue
            win_a = window(first)
            win_b = window(second)
            if win_a is None or win_b is None:
                # One side is proven silent by the abstract
                # interpreter: windows cannot overlap.
                continue
            shared = ["DATA"] + sorted(structure.control_lines)
            hi_a = "inf" if win_a[1] is None else str(win_a[1])
            hi_b = "inf" if win_b[1] is None else str(win_b[1])
            findings.append(RaceFinding(
                line=", ".join(shared),
                drivers=(f"server of {first.name}",
                         f"server of {second.name}"),
                detail=(f"both answer ID code {code_a}; symbolic drive "
                        f"windows [0, {hi_a}] and [0, {hi_b}] clocks "
                        "overlap with no serializer between them")))
    return findings
