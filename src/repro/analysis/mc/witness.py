"""Replayable counterexample schedules.

Every refuted temporal property carries a :class:`Witness`: the move
schedule that drives the channel's controller pair from reset into the
violation.  The schedule is plain JSON so it can be written next to a
lint report and replayed later -- ``repro-synth verify --replay`` (and
:func:`repro.sim.replay.replay_witness`) re-synthesizes the FSM pair,
steps the schedule through the event kernel on real
:class:`~repro.sim.signals.Signal` wires and confirms the claimed
violation concretely, mirroring the ``tools/absint_check.py``
soundness-gate idiom.

A ``finite`` witness ends in the violating state (deadlock, NACK
commit, drive race); a ``lasso`` witness is a stem plus a cycle
(``loop_start`` indexes the first step of the cycle) demonstrating a
non-terminating fair schedule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AnalysisError

SCHEMA = "repro.mc/witness/v1"

#: (source, target, guard) of one fired FSM transition.
TransitionRef = Tuple[str, str, Optional[str]]


def _ref_dict(ref: Optional[TransitionRef]) -> Optional[Dict[str, Any]]:
    if ref is None:
        return None
    source, target, guard = ref
    return {"source": source, "target": target, "guard": guard}


def _ref_from(data: Optional[Dict[str, Any]]) -> Optional[TransitionRef]:
    if data is None:
        return None
    return (data["source"], data["target"], data.get("guard"))


@dataclass(frozen=True)
class WitnessStep:
    """One synchronized move: which transition each side fired."""

    accessor: Optional[TransitionRef] = None
    server: Optional[TransitionRef] = None

    def to_dict(self) -> Dict[str, Any]:
        return {"accessor": _ref_dict(self.accessor),
                "server": _ref_dict(self.server)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WitnessStep":
        return cls(accessor=_ref_from(data.get("accessor")),
                   server=_ref_from(data.get("server")))


@dataclass
class Witness:
    """A replayable counterexample schedule for one refuted property."""

    system: str
    bus: str
    channel: str
    protocol: str
    property_id: str
    code: str
    #: "finite" (ends in the violating state) or "lasso" (stem+cycle).
    kind: str
    #: What the final state / cycle violates, e.g.
    #: {"type": "deadlock"} or {"type": "drive_race", "line": "NACK"}.
    claim: Dict[str, Any] = field(default_factory=dict)
    steps: List[WitnessStep] = field(default_factory=list)
    #: Index of the first cycle step (lasso witnesses only).
    loop_start: Optional[int] = None
    #: Protection name ("parity", "crc8") or None.
    protection: Optional[str] = None
    #: Extra provenance (mutation name, bus width ...) for replay.
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA,
            "system": self.system,
            "bus": self.bus,
            "channel": self.channel,
            "protocol": self.protocol,
            "protection": self.protection,
            "property": self.property_id,
            "code": self.code,
            "kind": self.kind,
            "claim": self.claim,
            "loop_start": self.loop_start,
            "steps": [step.to_dict() for step in self.steps],
            "meta": self.meta,
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path) -> Path:
        path = Path(path)
        path.write_text(self.render_json() + "\n")
        return path

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Witness":
        if data.get("schema") != SCHEMA:
            raise AnalysisError(
                f"not a {SCHEMA} witness: schema="
                f"{data.get('schema')!r}")
        return cls(
            system=data["system"],
            bus=data["bus"],
            channel=data["channel"],
            protocol=data["protocol"],
            protection=data.get("protection"),
            property_id=data["property"],
            code=data["code"],
            kind=data["kind"],
            claim=dict(data.get("claim") or {}),
            loop_start=data.get("loop_start"),
            steps=[WitnessStep.from_dict(s) for s in data["steps"]],
            meta=dict(data.get("meta") or {}),
        )

    @classmethod
    def load(cls, path) -> "Witness":
        return cls.from_dict(json.loads(Path(path).read_text()))

    @property
    def cycle(self) -> List[WitnessStep]:
        if self.loop_start is None:
            return []
        return self.steps[self.loop_start:]

    @property
    def stem(self) -> List[WitnessStep]:
        if self.loop_start is None:
            return list(self.steps)
        return self.steps[:self.loop_start]
