"""Counter-extended product graph: the model checker's Kripke structure.

The product automaton of :mod:`repro.analysis.product` answers
reachability questions, but the protected controllers of PR 5 contain
*legitimate* in-flight cycles: the RETRY / VERIFY retransmission loops.
Naive cycle detection would refute liveness for every protected design.

The classic fix is a **finite counter abstraction**: extend each
product state with a retry counter ``k`` and let the protection plan's
budget ``B = ceil(max_retries / retry_step)`` guard the retransmission
back-edges (the :attr:`~repro.protogen.fsm.FsmTransition.is_retry`
marks placed by FSM synthesis).  A retry edge fires normally while
``k < B`` and increments ``k``; once the budget is exhausted the
controller gives up and returns to rest, exactly like the simulator's
protected accessor raising after its last attempt.  Reaching the rest
state resets ``k``.  Under this abstraction every *budgeted* retry loop
unrolls into an acyclic ladder, so any in-flight cycle that survives in
the extended graph is a genuine temporal violation.

Edges that re-enter the attempt-start state (the target of the
``invoke`` transition) from an in-flight state are *retry-shaped* even
when unmarked; a retry-shaped edge with no plan to budget it means the
abstraction cannot bound the loop at all (P705).
"""

from __future__ import annotations

import re
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.product import (
    MAX_PRODUCT_STATES,
    ProductState,
    _Explorer,
)
from repro.errors import AnalysisError
from repro.protocols import ProtectionPlan
from repro.protogen.fsm import FsmState, FsmTransition, ProtocolFsm

#: Hard cap on the retry counter: a budget beyond this would blow the
#: extended state space up instead of abstracting it (P705).
COUNTER_CAP = 64

#: ``drive DATA(hi:lo) <= field`` actions, at bit granularity.
_DATA_DRIVE_RE = re.compile(r"^drive DATA\((\d+):(\d+)\)")

#: Word index embedded in synthesized state names (W3_REQ, W3 ...).
_WORD_RE = re.compile(r"W(\d+)")

#: An extended state: (base product state, retry counter).
XState = Tuple[ProductState, int]


# ---------------------------------------------------------------------------
# Drive sets (race granularity)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DriveSet:
    """Everything one FSM state puts on the wires while occupied."""

    #: Control lines driven (START, DONE, NACK ...), regardless of level:
    #: two simultaneous drivers on one wire conflict even when they
    #: agree on the value.
    controls: FrozenSet[str] = frozenset()
    #: OR of all driven DATA bit ranges, as a wire mask.
    data_mask: int = 0
    #: True when the state drives the ID lines.
    drives_id: bool = False
    #: Word index the state serves, when the name encodes one.  The
    #: strobe master clears the shared word before each strobe
    #: (``_clear_word`` in :mod:`repro.sim.bus`), so DATA drives of
    #: *different* words are temporally separated and never conflict.
    word: Optional[int] = None


def drive_set(state: FsmState) -> DriveSet:
    """Parse one state's actions into a :class:`DriveSet`."""
    controls = set()
    mask = 0
    drives_id = False
    for action in state.actions:
        match = _DATA_DRIVE_RE.match(action)
        if match:
            hi, lo = int(match.group(1)), int(match.group(2))
            mask |= ((1 << (hi - lo + 1)) - 1) << lo
        elif action.startswith("drive ID = "):
            drives_id = True
        elif " <= '" in action and not action.startswith(("drive ",
                                                          "latch ")):
            controls.add(action.split(" <= ", 1)[0].strip())
    word_match = _WORD_RE.match(state.name)
    word = int(word_match.group(1)) if word_match else None
    return DriveSet(controls=frozenset(controls), data_mask=mask,
                    drives_id=drives_id, word=word)


# ---------------------------------------------------------------------------
# Retry structure
# ---------------------------------------------------------------------------

def attempt_starts(fsm: ProtocolFsm) -> FrozenSet[str]:
    """Targets of the environment's ``invoke`` transitions: the states
    where a fresh message attempt begins (W0_REQ / W0 / GRANT)."""
    from repro.analysis.product import parse_guard

    initial = fsm.initial_state().name
    starts = set()
    for transition in fsm.successors(initial):
        if parse_guard(transition.guard).invoke:
            starts.add(transition.target)
    return frozenset(starts)


def retry_shaped(fsm: ProtocolFsm) -> List[FsmTransition]:
    """In-flight back-edges into an attempt-start state.

    These re-enter the word cycle without passing through rest --
    the structural signature of a retransmission loop, whether or not
    synthesis marked them ``is_retry``.
    """
    starts = attempt_starts(fsm)
    initial = fsm.initial_state().name
    return [t for t in fsm.transitions
            if t.target in starts and t.source != initial]


def retry_budget(plan: Optional[ProtectionPlan]) -> Optional[int]:
    """Finite retry budget, or None when no finite bound exists."""
    if plan is None or plan.retry_step < 1:
        return None
    return -(-plan.max_retries // plan.retry_step)


# ---------------------------------------------------------------------------
# The extended graph
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class EdgeLabel:
    """Who moved on one product edge, and whether it was a retry."""

    accessor: Optional[FsmTransition]
    server: Optional[FsmTransition]
    #: True when the accessor edge is a (marked or retry-shaped)
    #: retransmission back-edge that fired un-redirected.
    retry: bool = False

    @property
    def sides(self) -> FrozenSet[str]:
        moved = set()
        if self.accessor is not None:
            moved.add("accessor")
        if self.server is not None:
            moved.add("server")
        return frozenset(moved)


@dataclass
class TemporalGraph:
    """The explored counter-extended product graph of one channel."""

    accessor: ProtocolFsm
    server: ProtocolFsm
    plan: Optional[ProtectionPlan]
    budget: Optional[int]
    #: Reason the counter abstraction could not be built, or None.
    abstraction_failure: Optional[str]
    #: True when the accessor has marked or retry-shaped back-edges.
    has_retry: bool = False
    initial: XState = None  # type: ignore[assignment]
    states: List[XState] = field(default_factory=list)
    edges: Dict[XState, List[Tuple[XState, EdgeLabel]]] = \
        field(default_factory=dict)
    #: BFS tree: state -> (parent state, edge label), None at the root.
    parents: Dict[XState, Optional[Tuple[XState, EdgeLabel]]] = \
        field(default_factory=dict)
    a_rest: str = ""
    s_rest: str = ""

    def is_rest(self, xstate: XState) -> bool:
        base, _ = xstate
        return base[0] == self.a_rest and base[1] == self.s_rest

    def path_to(self, xstate: XState) -> List[EdgeLabel]:
        """Edge labels along the BFS tree from the initial state."""
        labels: List[EdgeLabel] = []
        cursor = xstate
        while True:
            parent = self.parents[cursor]
            if parent is None:
                break
            cursor, label = parent
            labels.append(label)
        labels.reverse()
        return labels

    def describe_state(self, xstate: XState) -> str:
        (a_state, s_state, lines, id_code), k = xstate
        levels = ", ".join(f"{line}={value}"
                           for line, value in sorted(lines))
        text = f"accessor@{a_state}, server@{s_state}"
        if levels:
            text += f", {levels}"
        if id_code is not None:
            text += f', ID="{id_code}"'
        if k:
            text += f", retries={k}"
        return text


def build_temporal_graph(accessor: ProtocolFsm, server: ProtocolFsm,
                         plan: Optional[ProtectionPlan] = None,
                         ) -> TemporalGraph:
    """BFS the counter-extended product graph of one channel pair."""
    explorer = _Explorer(accessor, server)
    a_rest = accessor.initial_state().name
    s_rest = server.initial_state().name
    shaped = {(t.source, t.target, t.guard) for t in retry_shaped(accessor)}
    marked = any(t.is_retry for t in accessor.transitions)
    has_retry = marked or bool(shaped)

    budget = retry_budget(plan)
    failure: Optional[str] = None
    if has_retry and plan is None:
        failure = ("controller has retransmission back-edges but the bus "
                   "carries no protection plan to budget them")
    elif budget is not None and budget > COUNTER_CAP:
        failure = (f"retry budget {budget} exceeds the counter "
                   f"abstraction cap ({COUNTER_CAP})")
        budget = None

    graph = TemporalGraph(accessor=accessor, server=server, plan=plan,
                          budget=budget, abstraction_failure=failure,
                          has_retry=has_retry,
                          a_rest=a_rest, s_rest=s_rest)
    initial: XState = (explorer._initial(), 0)
    graph.initial = initial
    graph.states.append(initial)
    graph.parents[initial] = None
    seen = {initial}
    frontier = deque([initial])
    cap = MAX_PRODUCT_STATES

    while frontier:
        xstate = frontier.popleft()
        base, counter = xstate
        out: List[Tuple[XState, EdgeLabel]] = []
        for move in explorer._moves(base):
            t_a, t_s = move
            # Only *marked* retry edges consume budget: synthesis
            # guarantees the mark, and a retry-shaped edge that lost it
            # bypasses the counter -- exactly the defect P702 reports.
            consumes = t_a is not None and t_a.is_retry
            is_retry_edge = consumes or (
                t_a is not None
                and (t_a.source, t_a.target, t_a.guard) in shaped)
            redirect = False
            next_counter = counter
            if consumes and budget is not None:
                if counter < budget:
                    next_counter = counter + 1
                else:
                    # Budget exhausted: the controller gives up and
                    # returns to rest (the simulator raises here).
                    redirect = True
                    next_counter = 0
            fired_a = replace(t_a, target=a_rest) if redirect else t_a
            next_base = explorer._fire(base, (fired_a, t_s))
            if next_base[0] == a_rest and next_base[1] == s_rest:
                next_counter = 0
            target: XState = (next_base, next_counter)
            # Witness steps record the transition that actually fired:
            # on give-up redirects that is the rest-bound edge, so a
            # replay can follow the schedule literally.
            label = EdgeLabel(accessor=fired_a, server=t_s,
                              retry=is_retry_edge and not redirect)
            out.append((target, label))
            if target not in seen:
                if len(seen) >= cap:
                    raise AnalysisError(
                        f"temporal graph of {accessor.name} x "
                        f"{server.name} exceeds {cap} states")
                seen.add(target)
                graph.states.append(target)
                graph.parents[target] = (xstate, label)
                frontier.append(target)
        graph.edges[xstate] = out
    return graph
