"""Static protocol analysis (linting) over refined designs.

This package checks a :class:`~repro.protogen.refine.RefinedSpec`
*without simulating it*: handshake deadlock/livelock via product
automata (P1xx), bus contention and multi-driver hazards (P2xx), width
and capacity arithmetic (P3xx), and dead-code warnings (P4xx).  The
error-code registry lives in :data:`repro.errors.DIAGNOSTIC_CODES`;
``docs/linting.md`` documents every code with a triggering example.

Distinct from :mod:`repro.sim.analysis`, which post-processes
*simulation traces*; this package never runs the design.
"""

from repro.analysis.contention import check_contention
from repro.analysis.deadcode import check_dead_code
from repro.analysis.deadlock import (
    FsmTransform,
    check_fsm_pair,
    check_handshakes,
)
from repro.analysis.diagnostics import (
    Diagnostic,
    DiagnosticSet,
    Severity,
    SourceLocation,
)
from repro.analysis.mc import (
    PropertyVerdict,
    VerificationReport,
    Witness,
    check_temporal,
    verify_refined,
)
from repro.analysis.product import ProductResult, explore_product
from repro.analysis.runner import PASSES, analyze_refined
from repro.analysis.width import check_widths

__all__ = [
    "Diagnostic",
    "DiagnosticSet",
    "FsmTransform",
    "PASSES",
    "ProductResult",
    "PropertyVerdict",
    "Severity",
    "SourceLocation",
    "VerificationReport",
    "Witness",
    "analyze_refined",
    "check_contention",
    "check_dead_code",
    "check_fsm_pair",
    "check_handshakes",
    "check_temporal",
    "check_widths",
    "explore_product",
    "verify_refined",
]
