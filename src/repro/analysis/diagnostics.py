"""Diagnostics framework for the static protocol analyzer.

The analyzer never raises on a finding: each pass reports
:class:`Diagnostic` objects -- a stable error code (registered in
:data:`repro.errors.DIAGNOSTIC_CODES`), a severity, a human message and
a :class:`SourceLocation` pointing into the design (bus / channel /
FSM state / behavior / variable).  A :class:`DiagnosticSet` collects
them and renders either a compiler-style text listing or JSON for CI
tooling.

Raising is reserved for *misuse of the analyzer itself*
(:class:`repro.errors.AnalysisError`): emitting an unregistered code is
a bug in a pass, not a property of the design.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import AnalysisError, diagnostic_summary


class Severity(enum.IntEnum):
    """Diagnostic severities, ordered so comparisons read naturally."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            known = ", ".join(s.name.lower() for s in cls)
            raise AnalysisError(
                f"unknown severity {text!r}; choose from {known}"
            ) from None


@dataclass(frozen=True)
class SourceLocation:
    """Where in the design a diagnostic points.

    ``kind`` names the IR node class (``bus``, ``channel``, ``fsm``,
    ``behavior``, ``variable``, ``system``); ``name`` identifies the
    node and ``detail`` narrows further (a state name, a word index, a
    data-line range).
    """

    kind: str
    name: str
    detail: Optional[str] = None

    def __str__(self) -> str:
        base = f"{self.kind} {self.name}"
        if self.detail:
            base += f" [{self.detail}]"
        return base

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"kind": self.kind, "name": self.name}
        if self.detail is not None:
            data["detail"] = self.detail
        return data


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass."""

    code: str
    severity: Severity
    message: str
    location: Optional[SourceLocation] = None
    #: Optional remediation hint shown after the message.
    hint: Optional[str] = None

    def __post_init__(self) -> None:
        # Unknown codes are a pass bug; fail loudly at emission time.
        diagnostic_summary(self.code)

    @property
    def summary(self) -> str:
        """The registered one-line description of the code."""
        return diagnostic_summary(self.code)

    def render(self) -> str:
        where = f"{self.location}: " if self.location else ""
        text = f"{self.code} {self.severity}: {where}{self.message}"
        if self.hint:
            text += f"\n       hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.location is not None:
            data["location"] = self.location.to_dict()
        if self.hint is not None:
            data["hint"] = self.hint
        return data


@dataclass
class DiagnosticSet:
    """An ordered collection of diagnostics for one analyzed design."""

    system: str = ""
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def add(self, code: str, severity: Severity, message: str,
            location: Optional[SourceLocation] = None,
            hint: Optional[str] = None) -> Diagnostic:
        diagnostic = Diagnostic(code, severity, message, location, hint)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: Iterable[Diagnostic]) -> None:
        self.diagnostics.extend(other)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def at_least(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity >= severity]

    @property
    def errors(self) -> List[Diagnostic]:
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def clean(self) -> bool:
        return not self.diagnostics

    def counts(self) -> Dict[str, int]:
        out = {str(s): 0 for s in Severity}
        for diagnostic in self.diagnostics:
            out[str(diagnostic.severity)] += 1
        return out

    # ------------------------------------------------------------------
    # Normalization
    # ------------------------------------------------------------------

    def dedupe(self) -> int:
        """Drop findings repeating an earlier (code, location) pair.

        Independent passes can rediscover the same defect (e.g. a width
        pass and a value-flow pass both flagging one channel).  The
        *highest-severity* report wins -- an error must never be
        shadowed by an earlier warning-level sighting of the same
        (code, location); on equal severity the first report is kept,
        preserving the cheapest-pass-first output order.  Returns the
        number of diagnostics removed.
        """
        slots: Dict[Tuple[str, str], int] = {}
        kept: List[Diagnostic] = []
        for diagnostic in self.diagnostics:
            key = (diagnostic.code, str(diagnostic.location)
                   if diagnostic.location else "")
            slot = slots.get(key)
            if slot is None:
                slots[key] = len(kept)
                kept.append(diagnostic)
            elif diagnostic.severity > kept[slot].severity:
                # Upgrade in place: position stays first-seen, content
                # comes from the most severe sighting.
                kept[slot] = diagnostic
        removed = len(self.diagnostics) - len(kept)
        self.diagnostics = kept
        return removed

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics in a stable, pass-order-independent order."""
        return sorted(
            self.diagnostics,
            key=lambda d: (d.code, str(d.location) if d.location else "",
                           -int(d.severity), d.message),
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def render_text(self) -> str:
        """Compiler-style listing plus a one-line summary."""
        lines = [d.render() for d in self.diagnostics]
        counts = self.counts()
        name = self.system or "design"
        lines.append(
            f"{name}: {len(self.diagnostics)} diagnostic(s) "
            f"({counts['error']} error(s), {counts['warning']} "
            f"warning(s), {counts['info']} info)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        # Machine-readable output is sorted so CI diffs are stable no
        # matter which pass found what first.
        return {
            "system": self.system,
            "diagnostics": [d.to_dict() for d in self.sorted()],
            "counts": self.counts(),
            "clean": self.clean,
        }

    def render_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
