"""Handshake deadlock / livelock detection (P1xx).

For every channel of every generated bus, synthesize the accessor and
server controller FSMs and explore their product automaton
(:mod:`repro.analysis.product`).  Four defect classes fall out of the
exploration:

* **P101 deadlock** -- a reachable product state offers no move: each
  side waits on a line level the other will never produce (the classic
  dropped-DONE or crossed-polarity handshake bug).
* **P102 livelock** -- every move stays enabled but the pair can never
  return to its rest state, so the transfer never *completes* (e.g. a
  final transition looping back into the word cycle).
* **P103 unreachable state** -- an FSM state no interleaving visits.
* **P104 dead guard** -- a transition whose guard no peer behavior can
  ever satisfy although its source state is visited (e.g. a server
  keyed to an ID code the accessor never drives).

``fsm_transform`` lets callers intercept each synthesized FSM before
analysis; the mutation corpus uses it to seed controller-level defects.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.analysis.diagnostics import (
    DiagnosticSet,
    Severity,
    SourceLocation,
)
from repro.analysis.product import ProductResult, explore_product
from repro.protogen.fsm import ProtocolFsm, synthesize_fsm
from repro.protogen.refine import RefinedBus, RefinedSpec

FsmTransform = Callable[[ProtocolFsm], ProtocolFsm]


def check_handshakes(spec: RefinedSpec, diagnostics: DiagnosticSet,
                     fsm_transform: Optional[FsmTransform] = None) -> None:
    """Run the product-automaton pass over every channel of the spec."""
    for bus in spec.buses:
        for channel in bus.group:
            pair = bus.procedures[channel.name]
            accessor = synthesize_fsm(pair.accessor, bus.structure)
            server = synthesize_fsm(pair.server, bus.structure)
            if fsm_transform is not None:
                accessor = fsm_transform(accessor)
                server = fsm_transform(server)
            result = explore_product(accessor, server)
            _report(bus, channel.name, result, diagnostics)


def check_fsm_pair(accessor: ProtocolFsm, server: ProtocolFsm,
                   diagnostics: DiagnosticSet,
                   bus_name: str = "?",
                   channel_name: str = "?") -> ProductResult:
    """Analyze one pre-synthesized controller pair directly."""
    result = explore_product(accessor, server)
    _report_result(bus_name, channel_name, result, diagnostics)
    return result


def _report(bus: RefinedBus, channel_name: str, result: ProductResult,
            diagnostics: DiagnosticSet) -> None:
    _report_result(bus.name, channel_name, result, diagnostics)


def _report_result(bus_name: str, channel_name: str,
                   result: ProductResult,
                   diagnostics: DiagnosticSet) -> None:
    location = SourceLocation("channel", channel_name,
                              detail=f"bus {bus_name}")
    if result.deadlocks:
        state = result.deadlocks[0]
        diagnostics.add(
            "P101", Severity.ERROR,
            f"handshake deadlock between {result.accessor.name} and "
            f"{result.server.name}: no transition enabled at "
            f"{result.describe_state(state)}"
            + (f" (+{len(result.deadlocks) - 1} more state(s))"
               if len(result.deadlocks) > 1 else ""),
            location,
            hint="check that each wait guard has a peer state driving "
                 "the awaited level",
        )
    if result.livelocked:
        state = result.livelocked[0]
        diagnostics.add(
            "P102", Severity.ERROR,
            f"livelock: {len(result.livelocked)} reachable state(s) of "
            f"{result.accessor.name} x {result.server.name} can never "
            f"return to rest, e.g. {result.describe_state(state)}",
            location,
            hint="the controllers cycle without reaching their "
                 "initial/final states again",
        )
    for side, names in (("accessor", result.unreachable_accessor),
                        ("server", result.unreachable_server)):
        if not names:
            continue
        fsm = result.accessor if side == "accessor" else result.server
        diagnostics.add(
            "P103", Severity.ERROR,
            f"{side} FSM {fsm.name}: state(s) {', '.join(names)} "
            "unreachable in any sender/receiver interleaving",
            location,
        )
    for side, transition in result.never_fired:
        fsm = result.accessor if side == "accessor" else result.server
        diagnostics.add(
            "P104", Severity.ERROR,
            f"{side} FSM {fsm.name}: guard {transition.label()!r} on "
            f"{transition.source} -> {transition.target} is never "
            "satisfiable by the peer",
            location,
            hint="the peer never drives the awaited level/ID while "
                 "this state is occupied",
        )
