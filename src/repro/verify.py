"""Refinement verification: the paper's raison d'être, as an API.

"First, the refined specification is simulatable and the design
functionality after insertion of buses and communication protocols can
be verified" (Section 6).  :func:`verify_refinement` automates that
verification:

1. run the *original* specification in the golden direct-access
   interpreter,
2. simulate the *refined* specification clock-accurately over its
   generated buses,
3. compare -- final values of every shared variable, and, channel by
   channel, the exact sequence of (address, value) pairs that crossed
   each bus against the golden access trace,
4. optionally cross-check measured process clocks against the
   analytical performance estimator (exact in the contention-free,
   sequential-schedule case).

The result is a :class:`VerificationReport` that either attests
equivalence or pinpoints the first divergence per channel/variable --
which is what a designer debugging a protocol actually needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.estimate.perf import PerformanceEstimator, transfer_clocks
from repro.protogen.refine import RefinedSpec
from repro.sim.runtime import SimResult, Stage, simulate
from repro.spec.interp import InterpResult, run_reference
from repro.spec.system import SystemSpec
from repro.spec.types import ArrayType, IntType


@dataclass(frozen=True)
class ValueMismatch:
    """A shared variable whose final value diverged."""

    variable: str
    #: For arrays: the first differing element index; None for scalars.
    index: Optional[int]
    golden: int
    refined: int


@dataclass(frozen=True)
class SequenceMismatch:
    """A channel whose transfer sequence diverged from the golden
    access trace."""

    channel: str
    #: Position of the first divergence (or the shorter length).
    position: int
    golden: Optional[Tuple[Optional[int], int]]
    refined: Optional[Tuple[Optional[int], int]]


@dataclass(frozen=True)
class ClockMismatch:
    """A behavior whose measured clocks differ from the estimate."""

    behavior: str
    estimated: int
    measured: int


@dataclass
class VerificationReport:
    """Outcome of verifying one refinement."""

    value_mismatches: List[ValueMismatch] = field(default_factory=list)
    sequence_mismatches: List[SequenceMismatch] = field(default_factory=list)
    clock_mismatches: List[ClockMismatch] = field(default_factory=list)
    #: The underlying runs, for further inspection.
    golden: Optional[InterpResult] = None
    refined: Optional[SimResult] = None

    @property
    def passed(self) -> bool:
        return not (self.value_mismatches or self.sequence_mismatches
                    or self.clock_mismatches)

    def describe(self) -> str:
        if self.passed:
            checked = len(self.golden.final_values) if self.golden else 0
            return (f"verification PASSED: {checked} shared variables "
                    "equivalent, all channel sequences match")
        lines = ["verification FAILED:"]
        for m in self.value_mismatches:
            where = f"{m.variable}" + \
                (f"[{m.index}]" if m.index is not None else "")
            lines.append(f"  value    {where}: golden {m.golden}, "
                         f"refined {m.refined}")
        for m in self.sequence_mismatches:
            lines.append(f"  sequence {m.channel} @ {m.position}: "
                         f"golden {m.golden}, refined {m.refined}")
        for m in self.clock_mismatches:
            lines.append(f"  clocks   {m.behavior}: estimated "
                         f"{m.estimated}, measured {m.measured}")
        return "\n".join(lines)


def _decode(channel, raw: int) -> int:
    dtype = channel.variable.dtype
    if isinstance(dtype, ArrayType):
        dtype = dtype.element
    if isinstance(dtype, IntType):
        return dtype.decode(raw)
    return raw


def _compare_values(golden: InterpResult, refined: SimResult,
                    report: VerificationReport) -> None:
    for name, expected in golden.final_values.items():
        actual = refined.final_values.get(name)
        if expected == actual:
            continue
        if isinstance(expected, list) and isinstance(actual, list):
            for index, (a, b) in enumerate(zip(expected, actual)):
                if a != b:
                    report.value_mismatches.append(
                        ValueMismatch(name, index, a, b))
                    break
        else:
            report.value_mismatches.append(
                ValueMismatch(name, None, expected, actual))


def _compare_sequences(spec: RefinedSpec, golden: InterpResult,
                       refined: SimResult,
                       report: VerificationReport) -> None:
    for bus in spec.buses:
        log = refined.transactions.get(bus.name, [])
        for channel in bus.group:
            expected = [
                (event.index, event.value)
                for event in golden.trace
                if event.variable == channel.variable.name
                and event.direction is channel.direction
                and event.behavior == channel.accessor.name
            ]
            measured = [
                (t.address, _decode(channel, t.data))
                for t in log if t.channel == channel.name
            ]
            if measured == expected:
                continue
            limit = max(len(expected), len(measured))
            for position in range(limit):
                g = expected[position] if position < len(expected) else None
                r = measured[position] if position < len(measured) else None
                if g != r:
                    report.sequence_mismatches.append(SequenceMismatch(
                        channel.name, position, g, r))
                    break


def _compare_clocks(spec: RefinedSpec, refined: SimResult,
                    report: VerificationReport) -> None:
    estimator = PerformanceEstimator()
    all_channels = [c for bus in spec.buses for c in bus.group]
    for behavior in spec.original.behaviors:
        comp = estimator.comp_clocks(behavior, all_channels)
        comm = 0
        for bus in spec.buses:
            for channel in bus.group:
                if channel.accessor is not behavior:
                    continue
                # Estimate the design *as built*: a tightened message
                # layout (--tighten-fields) moves fewer bits than the
                # channel's declared message size.
                pair = bus.procedures.get(channel.name)
                bits = (pair.layout.total_bits if pair is not None
                        else channel.message_bits)
                comm += channel.accesses * transfer_clocks(
                    bits, bus.structure.width, bus.structure.protocol)
        estimated = comp + comm
        measured = refined.clocks.get(behavior.name)
        if measured is not None and measured != estimated:
            report.clock_mismatches.append(
                ClockMismatch(behavior.name, estimated, measured))


def verify_refinement(system: SystemSpec, refined_spec: RefinedSpec,
                      schedule: Optional[Sequence[Stage]] = None,
                      check_clocks: bool = True,
                      max_clocks: int = 10_000_000) -> VerificationReport:
    """Verify a refinement against the original specification.

    ``schedule`` sequences the behaviors in both worlds; the golden
    interpreter flattens it to its sequential order.  ``check_clocks``
    additionally cross-checks the estimator (only meaningful for
    sequential schedules -- contention makes measured clocks legally
    exceed estimates, so pass ``False`` for concurrent schedules).
    """
    flat_order: Optional[List[str]] = None
    if schedule is not None:
        flat_order = []
        for stage in schedule:
            if isinstance(stage, str):
                flat_order.append(stage)
            else:
                flat_order.extend(stage)

    golden = run_reference(system, order=flat_order)
    refined = simulate(refined_spec, schedule=schedule,
                       max_clocks=max_clocks)

    report = VerificationReport(golden=golden, refined=refined)
    _compare_values(golden, refined, report)
    _compare_sequences(refined_spec, golden, refined, report)
    if check_clocks:
        _compare_clocks(refined_spec, refined, report)
    return report
