"""Unified observability: pipeline tracing, simulator metrics, reports.

Public surface:

* :func:`span` / :func:`count` / :func:`tracing` /
  :class:`Tracer` -- pipeline span tracer
  (:mod:`repro.obs.tracer`); instrumentation is free when no tracer
  is active.
* :class:`SimMetrics` and its per-component collectors -- live
  simulator metrics (:mod:`repro.obs.simmetrics`), threaded through
  ``simulate(..., metrics=...)``.
* :mod:`repro.obs.export` -- JSON, Chrome ``trace_event`` and
  Prometheus text exporters.
* :mod:`repro.obs.report` -- the unified machine-readable run report.
* :class:`FlightRecorder` and :mod:`repro.obs.flight` -- causal
  transaction journal with exact clock attribution, threaded through
  ``simulate(..., recorder=...)`` and surfaced as ``repro-synth
  explain``.

See ``docs/observability.md`` for the metric catalogue and a
``repro-synth profile`` walkthrough.
"""

from repro.obs.flight import (
    FlightEvent,
    FlightRecorder,
    FlightTransaction,
)
from repro.obs.simmetrics import (
    ArbiterMetrics,
    BusMetrics,
    Histogram,
    KernelMetrics,
    SimMetrics,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    activate,
    active_tracer,
    count,
    deactivate,
    span,
    tracing,
)

__all__ = [
    "ArbiterMetrics",
    "BusMetrics",
    "FlightEvent",
    "FlightRecorder",
    "FlightTransaction",
    "Histogram",
    "KernelMetrics",
    "SimMetrics",
    "Span",
    "Tracer",
    "activate",
    "active_tracer",
    "count",
    "deactivate",
    "span",
    "tracing",
]
