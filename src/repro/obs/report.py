"""Machine-readable run reports: pipeline + simulator, unified.

:func:`run_report` merges everything one synthesis/simulation run
produced into a single JSON-ready payload:

* ``pipeline`` -- the tracer's spans, counters and per-stage breakdown
  (:class:`~repro.obs.tracer.Tracer`);
* ``simulations`` -- one entry per simulated system: end clock,
  per-behavior clocks, per-bus utilization/arbitration numbers from the
  :class:`~repro.sim.runtime.SimResult`, the live collector output
  (:class:`~repro.obs.simmetrics.SimMetrics`) and the post-hoc
  transaction statistics of :mod:`repro.sim.analysis` -- the two views
  agree on transaction counts, which the test suite asserts.

The payload is what ``repro-synth synth --metrics-out`` and
``repro-synth profile`` write to disk, and what
:func:`repro.obs.export.to_prometheus` flattens.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

from repro import __version__
from repro.obs.simmetrics import SimMetrics
from repro.obs.tracer import Tracer
from repro.sim.analysis import BusStats, analyze_bus


def bus_stats_dict(stats: BusStats) -> Dict[str, Any]:
    """JSON-ready form of :class:`~repro.sim.analysis.BusStats`."""
    return {
        "transactions": stats.transactions,
        "busy_clocks": stats.busy_clocks,
        "span_clocks": stats.span_clocks,
        "utilization": stats.utilization,
        "longest_idle_gap": stats.longest_idle_gap,
        "per_channel": {
            name: {
                "count": ch.count,
                "total_clocks": ch.total_clocks,
                "mean_clocks": ch.mean_clocks,
                "min_clocks": ch.min_clocks,
                "max_clocks": ch.max_clocks,
                "mean_interarrival": ch.mean_interarrival,
            }
            for name, ch in stats.per_channel.items()
        },
    }


def sim_section(system: str, result: Any,
                metrics: Optional[SimMetrics] = None,
                recorder: Optional[Any] = None) -> Dict[str, Any]:
    """Report entry for one simulated system.

    ``result`` is a :class:`~repro.sim.runtime.SimResult` (duck-typed
    to keep this module import-light).  With a
    :class:`~repro.obs.flight.FlightRecorder` that rode the run, the
    section gains an ``attribution`` block (see
    :func:`repro.obs.flight.summarize`).
    """
    section = {
        "system": system,
        "backend": getattr(result, "backend", "interp"),
        "fallbacks": dict(getattr(result, "fallbacks", {}) or {}),
        "end_clock": result.end_time,
        "behavior_clocks": dict(result.clocks),
        "bus_utilization": dict(result.utilization),
        "arbitration_wait_clocks": dict(result.arbitration_wait),
        "transaction_stats": {
            bus: bus_stats_dict(analyze_bus(log))
            for bus, log in sorted(result.transactions.items())
        },
        "faults": {
            "injected": len(getattr(result, "fault_records", []) or []),
            "records": [record.to_dict() for record in
                        getattr(result, "fault_records", []) or []],
        },
        "live": metrics.to_dict() if metrics is not None else None,
    }
    if recorder is not None:
        from repro.obs.flight import summarize
        section["attribution"] = summarize(recorder)
    return section


def run_report(meta: Mapping[str, Any],
               tracer: Optional[Tracer] = None,
               simulations: Optional[List[Dict[str, Any]]] = None,
               verification: Optional[Dict[str, Any]] = None,
               ) -> Dict[str, Any]:
    """The unified machine-readable run report.

    ``verification`` is the ``to_dict()`` payload of a temporal
    :class:`~repro.analysis.mc.checker.VerificationReport` when the run
    model-checked the design (``synth --vhdl`` / ``verify``).
    """
    payload = {
        "schema": "repro.obs/run-report/v1",
        "version": __version__,
        "meta": dict(meta),
        "pipeline": tracer.to_dict() if tracer is not None else None,
        "simulations": simulations or [],
    }
    if verification is not None:
        payload["verification"] = verification
    return payload
