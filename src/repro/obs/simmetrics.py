"""Live simulator metrics: kernel, bus and arbiter collectors.

:class:`SimMetrics` is the per-run container the simulation layer
threads through its components (``simulate(..., metrics=SimMetrics())``):

* :class:`KernelMetrics` hooks :class:`~repro.sim.kernel.Simulator` --
  delta passes, per-process step counts and, at every clock advance,
  how long each unfinished process sat blocked on a predicate
  (handshake wait) versus sleeping on a timer.
* :class:`BusMetrics` hooks :class:`~repro.sim.bus.SimBus` -- completed
  transactions, bus words moved, busy clocks and a handshake-latency
  histogram (whole-message clocks).
* :class:`ArbiterMetrics` hooks :class:`~repro.sim.arbiter.Arbiter` --
  request/grant counts per requester, queue depth at request time and
  a grant-wait histogram.

Every hook sits behind an ``if metrics is not None`` guard in the hot
code, so a run without metrics pays one pointer test per event.  All
collectors reduce to plain dicts via ``to_dict`` for the exporters in
:mod:`repro.obs.export`; the run report in :mod:`repro.obs.report`
unifies them with the post-hoc transaction statistics of
:mod:`repro.sim.analysis`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

#: Histogram bucket upper bounds, in clocks.
LATENCY_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Histogram:
    """Fixed-bucket histogram (Prometheus-style cumulative ``le``)."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[int] = LATENCY_BUCKETS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)   # last = +Inf
        self.count = 0
        self.total = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def observe(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def cumulative(self) -> List[Dict[str, Any]]:
        """Cumulative ``[{le, count}]`` rows ending with ``+Inf``."""
        rows: List[Dict[str, Any]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.counts):
            running += bucket
            rows.append({"le": bound, "count": running})
        rows.append({"le": "+Inf", "count": running + self.counts[-1]})
        return rows

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the winning bucket, exactly like
        Prometheus's ``histogram_quantile``, but clamped to the
        observed ``[min, max]`` so a wide bucket cannot report a value
        outside the data.  The overflow bucket reports ``max``.
        Returns None for an empty histogram.
        """
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        running = 0
        for index, bound in enumerate(self.bounds):
            previous = running
            running += self.counts[index]
            if running >= rank and self.counts[index]:
                lower = self.bounds[index - 1] if index else 0
                fraction = ((rank - previous) / self.counts[index]
                            if self.counts[index] else 0.0)
                value = lower + (bound - lower) * fraction
                return float(min(max(value, self.min), self.max))
        return float(self.max)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p99": self.quantile(0.99),
            "buckets": self.cumulative(),
        }


class _ProcessCounters:
    __slots__ = ("steps", "blocked_clocks", "timer_clocks")

    def __init__(self) -> None:
        self.steps = 0
        #: Clocks spent waiting on a WaitUntil predicate (handshakes,
        #: schedule dependencies, arbitration).
        self.blocked_clocks = 0
        #: Clocks spent sleeping on a Wait timer (doing "work").
        self.timer_clocks = 0


class KernelMetrics:
    """Scheduler-level counters, fed by the simulation kernel."""

    def __init__(self) -> None:
        self.end_clock = 0
        self.clock_jumps = 0
        self.passes = 0
        self.steps = 0
        #: Event-kernel counters, filled by ``on_run_end``: how many
        #: wait predicates were evaluated, how many processes the
        #: EventBus woke, and how many timer-heap wakeups were served.
        self.predicate_evals = 0
        self.signal_wakeups = 0
        self.timer_pops = 0
        self._processes: Dict[str, _ProcessCounters] = {}

    def _process(self, name: str) -> _ProcessCounters:
        counters = self._processes.get(name)
        if counters is None:
            counters = self._processes[name] = _ProcessCounters()
        return counters

    # -- kernel hooks ------------------------------------------------------

    def on_step(self, name: str) -> None:
        self.steps += 1
        self._process(name).steps += 1

    def on_pass(self) -> None:
        self.passes += 1

    def on_advance(self, now: int, next_time: int,
                   processes: Iterable[Any]) -> None:
        """Called once per clock jump with the kernel's process list."""
        delta = next_time - now
        self.clock_jumps += 1
        self.end_clock = next_time
        for process in processes:
            if process.finished:
                continue
            counters = self._process(process.name)
            if process.predicate is not None:
                counters.blocked_clocks += delta
            else:
                counters.timer_clocks += delta

    def on_run_end(self, predicate_evals: int = 0, signal_wakeups: int = 0,
                   timer_pops: int = 0) -> None:
        """Called once when the kernel's run loop completes."""
        self.predicate_evals = predicate_evals
        self.signal_wakeups = signal_wakeups
        self.timer_pops = timer_pops

    def to_dict(self) -> Dict[str, Any]:
        return {
            "end_clock": self.end_clock,
            "clock_jumps": self.clock_jumps,
            "passes": self.passes,
            "steps": self.steps,
            "predicate_evals": self.predicate_evals,
            "signal_wakeups": self.signal_wakeups,
            "timer_pops": self.timer_pops,
            "processes": {
                name: {
                    "steps": c.steps,
                    "blocked_clocks": c.blocked_clocks,
                    "timer_clocks": c.timer_clocks,
                }
                for name, c in sorted(self._processes.items())
            },
        }


class BusMetrics:
    """Per-bus transfer counters, fed by :class:`~repro.sim.bus.SimBus`."""

    def __init__(self, name: str):
        self.name = name
        self.transactions = 0
        self.words = 0
        self.busy_clocks = 0
        self.latency = Histogram()
        self.per_channel: Dict[str, int] = {}
        self.reads = 0
        self.writes = 0
        #: Message retransmissions on protected buses.
        self.retries = 0
        #: Faults the injector actually fired on this bus.
        self.faults_injected = 0

    def on_transaction(self, transaction: Any, words: int,
                       busy_clocks: int) -> None:
        self.transactions += 1
        self.words += words
        self.busy_clocks += busy_clocks
        self.retries += getattr(transaction, "retries", 0)
        self.latency.observe(transaction.clocks)
        channel = transaction.channel
        self.per_channel[channel] = self.per_channel.get(channel, 0) + 1
        if transaction.direction.name == "WRITE":
            self.writes += 1
        else:
            self.reads += 1

    def utilization(self, end_clock: int) -> float:
        if end_clock <= 0:
            return 0.0
        return self.busy_clocks / end_clock

    def to_dict(self, end_clock: int = 0) -> Dict[str, Any]:
        return {
            "transactions": self.transactions,
            "words": self.words,
            "busy_clocks": self.busy_clocks,
            "utilization": self.utilization(end_clock),
            "reads": self.reads,
            "writes": self.writes,
            "retries": self.retries,
            "faults_injected": self.faults_injected,
            "per_channel": dict(sorted(self.per_channel.items())),
            "latency_clocks": self.latency.to_dict(),
        }


class ArbiterMetrics:
    """Per-bus arbitration counters, fed by the arbiter base class."""

    def __init__(self, name: str):
        self.name = name
        self.requests = 0
        self.grants: Dict[str, int] = {}
        self.wait = Histogram()
        self.max_queue_depth = 0
        self._queue_depth_sum = 0

    def on_request(self, queue_depth: int) -> None:
        self.requests += 1
        self._queue_depth_sum += queue_depth
        if queue_depth > self.max_queue_depth:
            self.max_queue_depth = queue_depth

    def on_grant(self, requester: str, wait_clocks: int) -> None:
        self.grants[requester] = self.grants.get(requester, 0) + 1
        self.wait.observe(wait_clocks)

    @property
    def mean_queue_depth(self) -> float:
        if not self.requests:
            return 0.0
        return self._queue_depth_sum / self.requests

    def to_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "grants": dict(sorted(self.grants.items())),
            "max_queue_depth": self.max_queue_depth,
            "mean_queue_depth": self.mean_queue_depth,
            "wait_clocks": self.wait.to_dict(),
        }


class SimMetrics:
    """All live collectors for one simulation run."""

    def __init__(self) -> None:
        self.kernel = KernelMetrics()
        self.buses: Dict[str, BusMetrics] = {}
        self.arbiters: Dict[str, ArbiterMetrics] = {}

    def bus(self, name: str) -> BusMetrics:
        metrics = self.buses.get(name)
        if metrics is None:
            metrics = self.buses[name] = BusMetrics(name)
        return metrics

    def arbiter(self, name: str) -> ArbiterMetrics:
        metrics = self.arbiters.get(name)
        if metrics is None:
            metrics = self.arbiters[name] = ArbiterMetrics(name)
        return metrics

    def to_dict(self) -> Dict[str, Any]:
        end_clock = self.kernel.end_clock
        return {
            "kernel": self.kernel.to_dict(),
            "buses": {name: bus.to_dict(end_clock)
                      for name, bus in sorted(self.buses.items())},
            "arbiters": {name: arb.to_dict()
                         for name, arb in sorted(self.arbiters.items())},
        }
