"""Exporters: JSON, Chrome ``trace_event`` and Prometheus text.

Three views of one run's observability data:

* :func:`write_json` -- the unified run report (see
  :mod:`repro.obs.report`) as indented, sorted JSON;
* :func:`to_chrome_trace` -- the pipeline spans (wall-clock domain) and
  simulated bus transactions (clock domain, 1 clock rendered as 1 us)
  in the Chrome ``trace_event`` JSON format, loadable in
  ``chrome://tracing`` or https://ui.perfetto.dev;
* :func:`to_prometheus` -- a flat ``metric{labels} value`` text dump of
  the run-report payload, for scraping or diffing across runs.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from repro.obs.tracer import Tracer

#: One simulated run for the chrome exporter: (run label, {bus name ->
#: transaction list}).  Transactions only need ``start_time``,
#: ``end_time``, ``channel``, ``initiator``, ``address`` and ``data``.
#: A run may carry an optional third element: the fault records of the
#: run (see :class:`repro.sim.faults.FaultRecord`), rendered as
#: instant events.
SimRun = Tuple[str, Mapping[str, Sequence[Any]]]


def write_json(payload: Mapping[str, Any], path: str) -> None:
    """Write a report payload as stable, human-diffable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------

def to_chrome_trace(tracer: Tracer,
                    sim_runs: Iterable[SimRun] = ()) -> Dict[str, Any]:
    """Build a Chrome ``trace_event`` document.

    Pipeline spans land on pid 1 ("pipeline", wall-clock microseconds,
    rebased to the first span).  Each simulated run gets its own pid
    with one tid per bus, timestamps in simulation clocks.

    All pids and tids are derived from the *content* (sorted span
    categories, sorted run labels, sorted bus names), never from
    iteration order, so exporting the same run twice produces an
    identical document that diffs clean.
    """
    events: List[Dict[str, Any]] = [
        {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
         "args": {"name": "pipeline (wall clock)"}},
    ]
    categories = sorted({span.category for span in tracer.spans})
    category_tid = {category: tid for tid, category
                    in enumerate(categories, start=1)}
    for category, tid in category_tid.items():
        events.append({
            "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
            "args": {"name": category},
        })
    base_ns = min((s.start_ns for s in tracer.spans), default=0)
    for span in tracer.spans:
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": (span.start_ns - base_ns) / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": 1,
            "tid": category_tid[span.category],
            "args": dict(span.args),
        })
    if tracer.counters:
        counter_tid = len(categories) + 1
        events.append({
            "ph": "M", "pid": 1, "tid": counter_tid,
            "name": "thread_name", "args": {"name": "counters"},
        })
        events.append({
            "name": "counters", "cat": "counter", "ph": "I",
            "ts": 0.0, "pid": 1, "tid": counter_tid, "s": "g",
            "args": dict(tracer.counters),
        })

    runs = list(sim_runs)
    # pid per run by sorted label (original order breaks label ties).
    pid_of = {original: 100 + rank for rank, original in enumerate(
        sorted(range(len(runs)), key=lambda i: (str(runs[i][0]), i)))}
    for run_index, run in enumerate(runs):
        label, buses = run[0], run[1]
        fault_records = run[2] if len(run) > 2 else ()
        pid = pid_of[run_index]
        events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": f"simulation {label} (1 clock = 1 us)"},
        })
        if fault_records:
            events.append({
                "ph": "M", "pid": pid, "tid": 0, "name": "thread_name",
                "args": {"name": "faults"},
            })
        for record in fault_records:
            kind = getattr(record.kind, "value", str(record.kind))
            events.append({
                "name": f"fault:{kind}",
                "cat": "fault",
                "ph": "I",
                "ts": float(record.clock),
                "pid": pid,
                "tid": 0,
                "s": "p",
                "args": {
                    "bus": record.bus,
                    "line": record.line,
                    "detail": record.detail,
                },
            })
        for tid, (bus_name, transactions) in enumerate(
                sorted(buses.items()), start=1):
            events.append({
                "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": f"bus {bus_name}"},
            })
            for txn in transactions:
                events.append({
                    "name": txn.channel,
                    "cat": "transaction",
                    "ph": "X",
                    "ts": float(txn.start_time),
                    "dur": float(txn.end_time - txn.start_time),
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "initiator": txn.initiator,
                        "address": txn.address,
                        "data": txn.data,
                    },
                })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer: Tracer, path: str,
                       sim_runs: Iterable[SimRun] = ()) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(tracer, sim_runs), handle, indent=2)
        handle.write("\n")


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------

def _escape_label_value(value: Any) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double quote and newline."""
    return (str(value)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(pairs: Mapping[str, Any]) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(value)}"'
                     for key, value in pairs.items())
    return "{" + inner + "}"


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_"
                   for ch in name)


#: metric -> (type, help) for the exposition-format metadata lines.
#: ``bus_latency_clocks_bucket`` is declared under its histogram base
#: name, matching how Prometheus expects ``*_bucket`` series.
_METRIC_META: Dict[str, Tuple[str, str]] = {
    "pipeline_stage_ms": (
        "gauge", "Wall-clock milliseconds spent in a pipeline stage."),
    "pipeline_stage_calls": (
        "counter", "Invocations of a pipeline stage."),
    "sim_end_clock": (
        "gauge", "Final simulated clock of the run."),
    "sim_kernel_passes": (
        "counter", "Delta passes executed by the event kernel."),
    "sim_kernel_steps": (
        "counter", "Process steps executed by the event kernel."),
    "sim_process_steps": (
        "counter", "Steps executed by one simulated process."),
    "sim_process_blocked_clocks": (
        "counter",
        "Clocks a process spent blocked on a wait predicate."),
    "sim_process_timer_clocks": (
        "counter", "Clocks a process spent sleeping on a timer."),
    "bus_transactions_total": (
        "counter", "Message transfers completed on a bus."),
    "bus_words_total": (
        "counter", "Bus words moved."),
    "bus_busy_clocks": (
        "counter", "Clocks the bus spent transferring."),
    "bus_utilization": (
        "gauge", "Fraction of run clocks the bus was transferring."),
    "bus_retries_total": (
        "counter", "Protected-protocol retransmissions on a bus."),
    "bus_faults_injected_total": (
        "counter", "Faults the injector fired on a bus."),
    "bus_latency_clocks": (
        "histogram", "Per-transaction handshake latency in clocks."),
    "arbiter_requests_total": (
        "counter", "Bus requests seen by an arbiter."),
    "arbiter_max_queue_depth": (
        "gauge", "Deepest request queue an arbiter accumulated."),
    "arbiter_grants_total": (
        "counter", "Grants an arbiter issued to one requester."),
}


def _metric_meta(metric: str) -> Tuple[str, str, str]:
    """(base name, type, help) for a metric's HELP/TYPE lines."""
    if metric.endswith("_bucket") and metric[:-7] in _METRIC_META:
        base = metric[:-7]
        mtype, help_text = _METRIC_META[base]
        return base, mtype, help_text
    if metric in _METRIC_META:
        mtype, help_text = _METRIC_META[metric]
        return metric, mtype, help_text
    if metric.startswith("counter_"):
        return metric, "counter", "Pipeline counter."
    return metric, "untyped", "Exported by repro.obs."


def to_prometheus(payload: Mapping[str, Any]) -> str:
    """Flatten a run-report payload into Prometheus exposition lines.

    Each metric family gets ``# HELP``/``# TYPE`` metadata the first
    time it appears; label values are escaped per the exposition
    format.
    """
    lines: List[str] = []
    described: set = set()

    def emit(metric: str, value: Any, **labels: Any) -> None:
        if value is None:
            return
        base, mtype, help_text = _metric_meta(metric)
        if base not in described:
            described.add(base)
            lines.append(f"# HELP repro_{base} {help_text}")
            lines.append(f"# TYPE repro_{base} {mtype}")
        lines.append(f"repro_{metric}{_labels(labels)} {value:g}"
                     if isinstance(value, float)
                     else f"repro_{metric}{_labels(labels)} {value}")

    pipeline = payload.get("pipeline") or {}
    for entry in pipeline.get("breakdown", []):
        emit("pipeline_stage_ms", round(entry["total_ms"], 6),
             stage=entry["name"])
        emit("pipeline_stage_calls", entry["calls"], stage=entry["name"])
    for name, value in sorted((pipeline.get("counters") or {}).items()):
        emit(f"counter_{_sanitize(name)}", value)

    for run in payload.get("simulations", []):
        system = run.get("system", "unknown")
        emit("sim_end_clock", run.get("end_clock"), system=system)
        live = run.get("live") or {}
        kernel = live.get("kernel") or {}
        emit("sim_kernel_passes", kernel.get("passes"), system=system)
        emit("sim_kernel_steps", kernel.get("steps"), system=system)
        for pname, proc in (kernel.get("processes") or {}).items():
            emit("sim_process_steps", proc["steps"], system=system,
                 process=pname)
            emit("sim_process_blocked_clocks", proc["blocked_clocks"],
                 system=system, process=pname)
            emit("sim_process_timer_clocks", proc["timer_clocks"],
                 system=system, process=pname)
        for bus_name, bus in (live.get("buses") or {}).items():
            emit("bus_transactions_total", bus["transactions"],
                 system=system, bus=bus_name)
            emit("bus_words_total", bus["words"], system=system,
                 bus=bus_name)
            emit("bus_busy_clocks", bus["busy_clocks"], system=system,
                 bus=bus_name)
            emit("bus_utilization", float(bus["utilization"]),
                 system=system, bus=bus_name)
            emit("bus_retries_total", bus.get("retries"),
                 system=system, bus=bus_name)
            emit("bus_faults_injected_total", bus.get("faults_injected"),
                 system=system, bus=bus_name)
            for row in bus["latency_clocks"]["buckets"]:
                emit("bus_latency_clocks_bucket", row["count"],
                     system=system, bus=bus_name, le=row["le"])
        for bus_name, arb in (live.get("arbiters") or {}).items():
            emit("arbiter_requests_total", arb["requests"],
                 system=system, bus=bus_name)
            emit("arbiter_max_queue_depth", arb["max_queue_depth"],
                 system=system, bus=bus_name)
            for requester, grants in arb["grants"].items():
                emit("arbiter_grants_total", grants, system=system,
                     bus=bus_name, requester=requester)
    return "\n".join(lines) + "\n"
