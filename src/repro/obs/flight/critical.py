"""Critical-path extraction and anomaly detection over a flight log.

The **critical path** answers "where did the run's clocks go, end to
end?"  It is built as an exact tiling of ``[0, end_clock]``: a cursor
walks the transactions in chronological order, clips each one's
attributed segments to the portion that actually advanced the frontier
(overlapping transfers on other buses don't extend the run), and fills
uncovered gaps with run-level ``idle`` steps.  Step lengths therefore
sum to ``end_clock`` by construction -- the acceptance gate the CLI's
``explain --json`` output is tested against.

**Anomalies** are heuristics over the same data: p99 latency outliers,
retry storms, per-requester starvation, and transfers that gave up.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from .recorder import FlightRecorder, FlightTransaction


def _quantile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = q * (len(sorted_values) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * frac


def critical_path(recorder: FlightRecorder) -> Dict[str, Any]:
    """Tile ``[0, end_clock]`` with attributed steps.

    Each step is ``{start, end, clocks, bucket, correlation_id,
    channel, bus}``; idle gaps use ``correlation_id`` 0.  The step
    clocks always sum to ``end_clock``.
    """
    end_clock = recorder.end_clock
    steps: List[Dict[str, Any]] = []
    cursor = 0

    def idle_until(clock: int) -> None:
        nonlocal cursor
        if clock > cursor:
            steps.append({
                "start": cursor, "end": clock, "clocks": clock - cursor,
                "bucket": "idle", "correlation_id": 0,
                "channel": None, "bus": None,
            })
            cursor = clock

    ordered = sorted(recorder.transactions,
                     key=lambda t: (t.request_clock, t.correlation_id))
    for txn in ordered:
        if txn.end_clock is None or txn.end_clock <= cursor:
            continue
        idle_until(txn.request_clock)
        for start, end, bucket in txn.segments:
            clipped_start = max(start, cursor)
            clipped_end = min(end, end_clock)
            if clipped_end <= clipped_start:
                continue
            steps.append({
                "start": clipped_start, "end": clipped_end,
                "clocks": clipped_end - clipped_start,
                "bucket": bucket,
                "correlation_id": txn.correlation_id,
                "channel": txn.channel, "bus": txn.bus,
            })
            cursor = clipped_end
    idle_until(end_clock)

    return {
        "end_clock": end_clock,
        "total_clocks": sum(step["clocks"] for step in steps),
        "steps": steps,
    }


def detect_anomalies(recorder: FlightRecorder) -> List[Dict[str, Any]]:
    """Flag suspicious transactions and requesters.

    * ``p99_outlier`` -- latency above both the p99 and twice the
      median (needs >= 8 samples to be meaningful);
    * ``retry_storm`` -- a single transfer burning >= 2 retries, or a
      bus whose total retries exceed a quarter of its transfers;
    * ``starvation`` -- a requester spending >= 16 clocks *and* more
      than half its total latency waiting for grants;
    * ``gave_up`` / ``incomplete`` -- transfers that never committed.
    """
    anomalies: List[Dict[str, Any]] = []
    txns = recorder.transactions
    latencies = sorted(t.latency_clocks for t in txns)
    if len(latencies) >= 8:
        p99 = _quantile(latencies, 0.99)
        median = _quantile(latencies, 0.5)
        threshold = max(p99, 2 * median)
        for txn in txns:
            if txn.latency_clocks > threshold:
                anomalies.append({
                    "kind": "p99_outlier",
                    "correlation_id": txn.correlation_id,
                    "detail": (f"{txn.channel} latency "
                               f"{txn.latency_clocks} clocks vs p99 "
                               f"{p99:.1f}, median {median:.1f}"),
                })

    bus_retries: Dict[str, int] = {}
    bus_txns: Dict[str, int] = {}
    for txn in txns:
        bus_retries[txn.bus] = bus_retries.get(txn.bus, 0) + txn.retries
        bus_txns[txn.bus] = bus_txns.get(txn.bus, 0) + 1
        if txn.retries >= 2:
            anomalies.append({
                "kind": "retry_storm",
                "correlation_id": txn.correlation_id,
                "detail": (f"{txn.channel} needed {txn.retries} "
                           f"retransmission(s)"),
            })
        if txn.outcome in ("gave_up", "incomplete"):
            anomalies.append({
                "kind": txn.outcome,
                "correlation_id": txn.correlation_id,
                "detail": (f"{txn.channel or txn.bus} never committed "
                           f"(outcome: {txn.outcome}, retries "
                           f"{txn.retries})"),
            })
    for bus in sorted(bus_retries):
        if bus_retries[bus] > max(4, bus_txns[bus] // 4):
            anomalies.append({
                "kind": "retry_storm",
                "correlation_id": 0,
                "detail": (f"bus {bus}: {bus_retries[bus]} retries "
                           f"across {bus_txns[bus]} transfer(s)"),
            })

    waits: Dict[str, int] = {}
    total: Dict[str, int] = {}
    for txn in txns:
        waits[txn.initiator] = (waits.get(txn.initiator, 0)
                                + txn.buckets.get("arbitration_wait", 0))
        total[txn.initiator] = (total.get(txn.initiator, 0)
                                + txn.latency_clocks)
    for initiator in sorted(waits):
        wait = waits[initiator]
        if wait >= 16 and wait * 2 > total[initiator]:
            anomalies.append({
                "kind": "starvation",
                "correlation_id": 0,
                "detail": (f"{initiator} spent {wait} of "
                           f"{total[initiator]} clocks waiting for "
                           f"grants"),
            })
    return anomalies
