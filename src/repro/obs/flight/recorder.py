"""The causal flight recorder: a journal of typed protocol events.

The simulator's live metrics (:mod:`repro.obs.simmetrics`) answer *how
much* -- transactions, words, histograms.  The flight recorder answers
*why*: it journals every step of every message transfer as a typed
:class:`FlightEvent` (channel request, arbiter grant, handshake phase
edges, word transfers, CHECK/NACK verdicts, retries, commit or
give-up), all linked by a **correlation id** so a bus
:class:`~repro.sim.bus.Transaction`, the
:class:`~repro.sim.faults.FaultRecord` that perturbed it and a model-
checker witness replay resolve to one causal chain.

On top of the journal it keeps exact **clock attribution**: every
simulated clock of every transaction lands in exactly one bucket
(:data:`BUCKETS`).  Accounting is mark-based -- each instrumentation
point attributes the clocks elapsed since the previous mark to one
bucket -- so the buckets partition ``[request, end]`` and sum *exactly*
to the transaction's latency, by construction rather than by estimate.
The property test suite asserts this invariant under faults and
retries.

Bucket semantics:

* ``arbitration_wait`` -- request to bus grant (queueing + grant delay
  + TDMA slot waits);
* ``handshake`` -- control-line overhead: the return-to-zero half of
  each full-handshake word, burst setup/release clocks;
* ``data`` -- clocks in which payload words actually moved;
* ``protection`` -- the extra bus words the CHECK field appends to the
  message (both halves of each extra word), i.e. what the unprotected
  layout would not have paid;
* ``recovery`` -- everything a fault cost: timeout waits, all clocks
  of failed attempts (retroactively reassigned when the attempt
  fails), and the retransmission resync window;
* ``idle`` -- clocks inside the transaction window not covered by the
  above (zero for committed transfers; the run-level idle between
  transactions is surfaced by the critical path instead).

The recorder is attached with ``simulate(..., recorder=
FlightRecorder())``; every hook in the kernel/bus/arbiter/fault layers
sits behind an ``is not None`` guard, so a run without a recorder pays
one pointer test per site and the golden transaction logs stay
byte-identical either way.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Exclusive clock-attribution buckets, in display order.
BUCKETS = ("arbitration_wait", "handshake", "data", "protection",
           "recovery", "idle")

# -- journal event kinds ----------------------------------------------------

REQUEST = "REQUEST"              #: initiator asked the arbiter for the bus
GRANT = "GRANT"                  #: arbiter granted the bus
TRANSFER_START = "TRANSFER_START"  #: accessor began moving the message
WORD_START = "WORD_START"        #: START raised (or strobe armed) for a word
WORD_DATA = "WORD_DATA"          #: data phase of a word completed
WORD_DONE = "WORD_DONE"          #: return-to-zero handshake half completed
SETUP = "SETUP"                  #: burst grant handshake completed
RELEASE = "RELEASE"              #: burst release handshake completed
CHECK_FAIL = "CHECK_FAIL"        #: accessor-side response check mismatched
NACK = "NACK"                    #: server NACKed a protected write
RETRY = "RETRY"                  #: attempt failed; retransmission scheduled
COMMIT = "COMMIT"                #: transfer committed
GIVE_UP = "GIVE_UP"              #: retry budget exhausted
FAULT = "FAULT"                  #: the injector perturbed a wire
DEADLOCK = "DEADLOCK"            #: kernel declared a deadlock
REPLAY_START = "REPLAY_START"    #: mc witness replay began
REPLAY_END = "REPLAY_END"        #: mc witness replay finished

#: Every journal kind, for validation and the docs catalogue.
EVENT_KINDS = (
    REQUEST, GRANT, TRANSFER_START, WORD_START, WORD_DATA, WORD_DONE,
    SETUP, RELEASE, CHECK_FAIL, NACK, RETRY, COMMIT, GIVE_UP, FAULT,
    DEADLOCK, REPLAY_START, REPLAY_END,
)


class FlightEvent:
    """One journal entry.  ``correlation_id`` links it to its chain."""

    __slots__ = ("seq", "clock", "kind", "correlation_id", "bus",
                 "detail")

    def __init__(self, seq: int, clock: int, kind: str,
                 correlation_id: int, bus: str, detail: str = ""):
        self.seq = seq
        self.clock = clock
        self.kind = kind
        self.correlation_id = correlation_id
        self.bus = bus
        self.detail = detail

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "seq": self.seq, "clock": self.clock, "kind": self.kind,
            "correlation_id": self.correlation_id, "bus": self.bus,
        }
        if self.detail:
            payload["detail"] = self.detail
        return payload

    def __repr__(self) -> str:
        return (f"FlightEvent(#{self.seq} t={self.clock} {self.kind} "
                f"cid={self.correlation_id} {self.bus} {self.detail})")


class FlightTransaction:
    """Causal record of one message transfer, open or closed.

    ``segments`` is the exact tiling of ``[request_clock, end_clock]``
    as ``[start, end, bucket]`` triples; ``buckets`` (filled at close)
    is the per-bucket clock total.  ``sum(buckets.values()) ==
    latency_clocks`` always.
    """

    __slots__ = ("correlation_id", "bus", "initiator", "channel",
                 "direction", "request_clock", "grant_clock",
                 "start_clock", "end_clock", "words",
                 "extra_check_words", "retries", "outcome", "segments",
                 "buckets", "_last", "_attempt_mark")

    def __init__(self, correlation_id: int, bus: str, initiator: str,
                 clock: int):
        self.correlation_id = correlation_id
        self.bus = bus
        self.initiator = initiator
        self.channel: Optional[str] = None
        self.direction: Optional[str] = None
        self.request_clock = clock
        self.grant_clock = clock
        self.start_clock = clock
        self.end_clock: Optional[int] = None
        self.words = 0
        self.extra_check_words = 0
        self.retries = 0
        #: "committed", "gave_up", or "incomplete" (run ended first).
        self.outcome = "open"
        self.segments: List[List[Any]] = []
        self.buckets: Dict[str, int] = {}
        #: Clock of the most recent attribution mark.
        self._last = clock
        #: Segment index where the current protected attempt began.
        self._attempt_mark = 0

    @property
    def latency_clocks(self) -> int:
        end = self.end_clock if self.end_clock is not None else self._last
        return end - self.request_clock

    def to_dict(self) -> Dict[str, Any]:
        return {
            "correlation_id": self.correlation_id,
            "bus": self.bus,
            "channel": self.channel,
            "initiator": self.initiator,
            "direction": self.direction,
            "request_clock": self.request_clock,
            "grant_clock": self.grant_clock,
            "end_clock": self.end_clock,
            "latency_clocks": self.latency_clocks,
            "words": self.words,
            "retries": self.retries,
            "outcome": self.outcome,
            "buckets": dict(self.buckets),
            "segments": [[s, e, b] for s, e, b in self.segments],
        }


class FlightRecorder:
    """Always-attachable journal + exact clock-attribution engine.

    One instance records one simulation run (plus any witness replays
    correlated with it).  All hooks take the simulated clock explicitly
    so the recorder never reaches back into the kernel.
    """

    def __init__(self) -> None:
        self.events: List[FlightEvent] = []
        #: Closed transactions, in completion order.
        self.transactions: List[FlightTransaction] = []
        #: Final simulated clock of the run (set by the kernel/runtime).
        self.end_clock = 0
        #: Correlation id of each injected fault, in injection order
        #: (parallel to ``SimResult.fault_records``).
        self.fault_correlations: List[int] = []
        #: One summary dict per witness replayed with this recorder.
        self.replays: List[Dict[str, Any]] = []
        self._open_by_initiator: Dict[str, FlightTransaction] = {}
        self._open_by_bus: Dict[str, FlightTransaction] = {}
        self._next_cid = 1
        self._seq = 0

    # -- journal helpers ----------------------------------------------

    def _alloc_cid(self) -> int:
        cid = self._next_cid
        self._next_cid += 1
        return cid

    def _event(self, clock: int, kind: str, correlation_id: int,
               bus: str, detail: str = "") -> None:
        self.events.append(FlightEvent(self._seq, clock, kind,
                                       correlation_id, bus, detail))
        self._seq += 1

    def correlation_ids(self) -> set:
        """Every correlation id present in the journal."""
        return {event.correlation_id for event in self.events}

    def events_for(self, correlation_id: int) -> List[FlightEvent]:
        return [e for e in self.events
                if e.correlation_id == correlation_id]

    # -- attribution core ---------------------------------------------

    def _mark(self, txn: FlightTransaction, clock: int, bucket: str,
              nominal: Optional[int] = None) -> None:
        """Attribute the clocks since the last mark to ``bucket``.

        With ``nominal``, only the *final* ``nominal`` clocks go to
        ``bucket``; any excess (a timeout-bounded wait that preceded
        completion) is fault recovery.
        """
        last = txn._last
        if clock <= last:
            return
        if nominal is not None and clock - last > nominal:
            split = clock - nominal
            txn.segments.append([last, split, "recovery"])
            last = split
        txn.segments.append([last, clock, bucket])
        txn._last = clock

    def _begin(self, bus: str, initiator: str,
               clock: int) -> FlightTransaction:
        txn = FlightTransaction(self._alloc_cid(), bus, initiator, clock)
        self._open_by_initiator[initiator] = txn
        return txn

    def _close(self, txn: FlightTransaction, clock: int,
               outcome: str) -> None:
        txn.end_clock = clock
        txn.outcome = outcome
        merged: List[List[Any]] = []
        for segment in txn.segments:
            if (merged and merged[-1][2] == segment[2]
                    and merged[-1][1] == segment[0]):
                merged[-1][1] = segment[1]
            else:
                merged.append(segment)
        txn.segments = merged
        buckets = {bucket: 0 for bucket in BUCKETS}
        for start, end, bucket in merged:
            buckets[bucket] += end - start
        txn.buckets = buckets
        self.transactions.append(txn)
        if self._open_by_initiator.get(txn.initiator) is txn:
            del self._open_by_initiator[txn.initiator]
        if self._open_by_bus.get(txn.bus) is txn:
            del self._open_by_bus[txn.bus]

    # -- arbitration hooks --------------------------------------------

    def on_request(self, bus: str, initiator: str, clock: int) -> None:
        txn = self._begin(bus, initiator, clock)
        self._event(clock, REQUEST, txn.correlation_id, bus, initiator)

    def on_grant(self, bus: str, initiator: str, clock: int) -> None:
        txn = self._open_by_initiator.get(initiator)
        if txn is None or txn.bus != bus:
            txn = self._begin(bus, initiator, clock)
        self._mark(txn, clock, "arbitration_wait")
        txn.grant_clock = clock
        self._event(clock, GRANT, txn.correlation_id, bus, initiator)

    # -- transfer hooks (called by SimBus) ----------------------------

    def on_transfer_start(self, bus: str, channel: str, initiator: str,
                          clock: int, words: int,
                          extra_check_words: int,
                          direction: str) -> FlightTransaction:
        txn = self._open_by_initiator.get(initiator)
        if txn is None or txn.bus != bus or txn.channel is not None:
            # Direct transfer without an instrumented arbiter.
            txn = self._begin(bus, initiator, clock)
        self._mark(txn, clock, "arbitration_wait")
        txn.channel = channel
        txn.direction = getattr(direction, "name", direction)
        txn.start_clock = clock
        txn.words = words
        txn.extra_check_words = extra_check_words
        self._open_by_bus[bus] = txn
        self._event(clock, TRANSFER_START, txn.correlation_id, bus,
                    f"{channel} {direction} {words} word(s)")
        return txn

    def on_word_start(self, txn: FlightTransaction, clock: int,
                      word: int) -> None:
        self._event(clock, WORD_START, txn.correlation_id, txn.bus,
                    f"word {word}")

    def on_data_phase(self, txn: FlightTransaction, clock: int,
                      word: int) -> None:
        self._mark(txn, clock, "data", nominal=1)
        self._event(clock, WORD_DATA, txn.correlation_id, txn.bus,
                    f"word {word}")

    def on_handshake_phase(self, txn: FlightTransaction, clock: int,
                           word: int) -> None:
        self._mark(txn, clock, "handshake", nominal=1)
        self._event(clock, WORD_DONE, txn.correlation_id, txn.bus,
                    f"word {word}")

    def on_setup(self, txn: FlightTransaction, clock: int) -> None:
        self._mark(txn, clock, "handshake", nominal=1)
        self._event(clock, SETUP, txn.correlation_id, txn.bus)

    def on_release(self, txn: FlightTransaction, clock: int) -> None:
        self._mark(txn, clock, "handshake", nominal=1)
        self._event(clock, RELEASE, txn.correlation_id, txn.bus)

    # -- protected-transfer hooks -------------------------------------

    def on_attempt_begin(self, txn: FlightTransaction,
                         clock: int) -> None:
        """A (re)transmission attempt starts; the resync window since
        the previous attempt failed is fault recovery."""
        self._mark(txn, clock, "recovery")
        txn._attempt_mark = len(txn.segments)

    def on_nack(self, txn: FlightTransaction, clock: int,
                detail: str) -> None:
        self._event(clock, NACK, txn.correlation_id, txn.bus, detail)

    def on_check_fail(self, txn: FlightTransaction, clock: int,
                      detail: str) -> None:
        self._event(clock, CHECK_FAIL, txn.correlation_id, txn.bus,
                    detail)

    def _fail_attempt(self, txn: FlightTransaction, clock: int) -> None:
        """Everything the failed attempt spent becomes recovery."""
        self._mark(txn, clock, "recovery")
        for segment in txn.segments[txn._attempt_mark:]:
            segment[2] = "recovery"

    def on_attempt_failed(self, txn: FlightTransaction, clock: int,
                          reason: str, retries: int) -> None:
        self._fail_attempt(txn, clock)
        txn.retries = retries
        self._event(clock, RETRY, txn.correlation_id, txn.bus, reason)

    # -- completion hooks ---------------------------------------------

    def on_commit(self, txn: FlightTransaction, clock: int,
                  retries: int) -> None:
        self._mark(txn, clock, "idle")
        txn.retries = retries
        if txn.extra_check_words:
            self._relabel_protection(txn)
        self._event(clock, COMMIT, txn.correlation_id, txn.bus,
                    f"retries={retries}")
        self._close(txn, clock, "committed")

    def on_giveup(self, txn: FlightTransaction, clock: int, reason: str,
                  retries: int) -> None:
        self._fail_attempt(txn, clock)
        txn.retries = retries
        self._event(clock, GIVE_UP, txn.correlation_id, txn.bus, reason)
        self._close(txn, clock, "gave_up")

    def _relabel_protection(self, txn: FlightTransaction) -> None:
        """Move the CHECK field's extra words into the protection
        bucket.

        The check field appends ``extra_check_words`` whole words to
        the message; each cost one data clock and one handshake clock
        on the (successful) final attempt.  Walking the segments
        backwards relabels exactly those -- failed attempts are already
        recovery and are skipped by bucket mismatch.
        """
        need_data = need_handshake = txn.extra_check_words
        for segment in reversed(txn.segments):
            if not need_data and not need_handshake:
                break
            if need_data and segment[2] == "data":
                segment[2] = "protection"
                need_data -= 1
            elif need_handshake and segment[2] == "handshake":
                segment[2] = "protection"
                need_handshake -= 1

    # -- fault / kernel hooks -----------------------------------------

    def on_fault(self, record: Any) -> None:
        """Correlate an injected fault with the transfer it hit.

        A fault landing outside any open transfer (e.g. a STUCK window
        armed on an idle bus) gets a fresh correlation id, so *every*
        :class:`~repro.sim.faults.FaultRecord` resolves to a chain in
        the journal.
        """
        txn = self._open_by_bus.get(record.bus)
        cid = txn.correlation_id if txn is not None else self._alloc_cid()
        self.fault_correlations.append(cid)
        kind = getattr(record.kind, "value", str(record.kind))
        self._event(record.clock, FAULT, cid, record.bus,
                    f"{kind} on {record.line}: {record.detail}")

    def on_deadlock(self, clock: int, blocked: int) -> None:
        self._event(clock, DEADLOCK, 0, "",
                    f"{blocked} process(es) blocked with no timer "
                    "pending")
        self.end_clock = max(self.end_clock, clock)

    def on_kernel_end(self, clock: int) -> None:
        self.end_clock = max(self.end_clock, clock)

    def finish(self, end_clock: int) -> None:
        """Seal the run: record the final clock and close any transfer
        the run ended around (outcome ``incomplete``)."""
        self.end_clock = max(self.end_clock, end_clock)
        for txn in list(self._open_by_initiator.values()):
            self._mark(txn, self.end_clock, "recovery")
            self._close(txn, max(txn._last, txn.request_clock),
                        "incomplete")

    # -- witness replay hooks -----------------------------------------

    def on_replay_begin(self, witness: Any) -> int:
        cid = self._alloc_cid()
        detail = (f"{getattr(witness, 'property_id', '?')} "
                  f"[{getattr(witness, 'code', '?')}] "
                  f"{witness.claim.get('type', '?')}")
        self._event(0, REPLAY_START, cid,
                    getattr(witness, "bus", ""), detail)
        return cid

    def on_replay_end(self, correlation_id: int, clocks: int,
                      confirmed: bool, claim: str) -> None:
        verdict = "CONFIRMED" if confirmed else "NOT CONFIRMED"
        self._event(clocks, REPLAY_END, correlation_id, "",
                    f"{claim}: {verdict} after {clocks} clock(s)")
        self.replays.append({
            "correlation_id": correlation_id,
            "claim": claim,
            "confirmed": confirmed,
            "clocks": clocks,
        })

    # -- summaries -----------------------------------------------------

    def journal_kinds(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
