"""`repro-synth explain` payloads: JSON schema, text rendering,
Perfetto/Chrome export of a recorded run on the *simulated-clock*
timeline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .attribution import summarize
from .critical import critical_path, detect_anomalies
from .recorder import BUCKETS, FlightRecorder

EXPLAIN_SCHEMA = "repro.obs/explain/v1"


def explain_payload(recorder: FlightRecorder, result: Any = None,
                    system: str = "") -> Dict[str, Any]:
    """Assemble the full machine-readable explanation of one run.

    ``result`` (a :class:`~repro.sim.runtime.SimResult`) contributes
    the injected-fault records, each resolved to its correlation id via
    the recorder's parallel ``fault_correlations`` list.
    """
    faults: List[Dict[str, Any]] = []
    if result is not None:
        for index, record in enumerate(result.fault_records):
            entry = record.to_dict()
            if index < len(recorder.fault_correlations):
                entry["correlation_id"] = recorder.fault_correlations[index]
            faults.append(entry)
    return {
        "schema": EXPLAIN_SCHEMA,
        "system": system,
        "end_clock": recorder.end_clock,
        "attribution": summarize(recorder),
        "critical_path": critical_path(recorder),
        "anomalies": detect_anomalies(recorder),
        "transactions": [txn.to_dict() for txn in recorder.transactions],
        "faults": faults,
        "replays": list(recorder.replays),
        "journal": recorder.journal_kinds(),
    }


def _bar(clocks: int, total: int, width: int = 28) -> str:
    filled = round(width * clocks / total) if total else 0
    return "#" * filled + "." * (width - filled)


def render_explain_text(payload: Dict[str, Any], top: int = 5) -> str:
    """Human-readable report for the ``explain`` subcommand."""
    lines: List[str] = []
    attribution = payload["attribution"]
    end_clock = payload["end_clock"]
    lines.append(f"flight recorder: {payload['system']} -- "
                 f"{attribution['transactions']} transaction(s), "
                 f"{end_clock} simulated clock(s)")
    lines.append("")

    lines.append("clock attribution (all transactions):")
    bucket_totals = attribution["buckets"]
    attributed = sum(bucket_totals.values())
    for bucket in BUCKETS:
        clocks = bucket_totals[bucket]
        share = 100.0 * clocks / attributed if attributed else 0.0
        lines.append(f"  {bucket:<17} {clocks:>8} clk  {share:5.1f}%  "
                     f"{_bar(clocks, attributed)}")
    lines.append(f"  {'(total)':<17} {attributed:>8} clk   "
                 f"exact={attribution['exact']}")
    lines.append(f"  run idle (no transfer in flight): "
                 f"{attribution['run_idle_clocks']} clk of {end_clock}")
    lines.append("")

    path = payload["critical_path"]
    lines.append(f"critical path: {path['total_clocks']} clk in "
                 f"{len(path['steps'])} step(s) "
                 f"(== end clock: {path['total_clocks'] == end_clock})")
    slowest = sorted((txn for txn in payload["transactions"]),
                     key=lambda t: t["latency_clocks"], reverse=True)
    lines.append("")
    lines.append(f"slowest transactions (top {min(top, len(slowest))}):")
    for txn in slowest[:top]:
        buckets = txn["buckets"]
        mix = " ".join(f"{bucket}={buckets[bucket]}" for bucket in BUCKETS
                       if buckets[bucket])
        lines.append(f"  cid={txn['correlation_id']:<4} "
                     f"{str(txn['channel']):<14} "
                     f"{txn['latency_clocks']:>5} clk  "
                     f"[{txn['outcome']}] {mix}")

    if payload["faults"]:
        lines.append("")
        lines.append(f"injected faults ({len(payload['faults'])}):")
        for fault in payload["faults"][:top]:
            lines.append(f"  cid={fault.get('correlation_id', '?'):<4} "
                         f"t={fault['clock']:<6} {fault['kind']} on "
                         f"{fault['bus']}.{fault['line']}: "
                         f"{fault['detail']}")
        if len(payload["faults"]) > top:
            lines.append(f"  ... and {len(payload['faults']) - top} more")

    lines.append("")
    if payload["anomalies"]:
        lines.append(f"anomalies ({len(payload['anomalies'])}):")
        for anomaly in payload["anomalies"]:
            lines.append(f"  [{anomaly['kind']}] {anomaly['detail']}")
    else:
        lines.append("anomalies: none")
    return "\n".join(lines) + "\n"


def flight_trace(recorder: FlightRecorder,
                 label: str = "sim") -> List[Dict[str, Any]]:
    """Chrome/Perfetto ``trace_event`` list on the simulated-clock
    timeline (1 clock = 1 "microsecond").

    One lane per (bus, initiator) pair; each transaction is a slice
    with its attributed bucket segments nested inside, faults are
    instant events on tid 0.  Lane ids come from the sorted lane-name
    order, so re-exporting the same run diffs clean.
    """
    events: List[Dict[str, Any]] = []
    pid = 1
    events.append({"ph": "M", "pid": pid, "tid": 0,
                   "name": "process_name",
                   "args": {"name": f"{label} (simulated clocks)"}})
    events.append({"ph": "M", "pid": pid, "tid": 0,
                   "name": "thread_name", "args": {"name": "faults"}})

    lanes = sorted({(txn.bus, txn.initiator)
                    for txn in recorder.transactions})
    lane_tid = {lane: tid for tid, lane in enumerate(lanes, start=1)}
    for (bus, initiator), tid in lane_tid.items():
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name",
                       "args": {"name": f"{bus}/{initiator}"}})

    for txn in recorder.transactions:
        tid = lane_tid[(txn.bus, txn.initiator)]
        end = txn.end_clock if txn.end_clock is not None else txn._last
        events.append({
            "name": f"{txn.channel or txn.bus} cid={txn.correlation_id}",
            "cat": "transaction", "ph": "X",
            "ts": float(txn.request_clock),
            "dur": float(end - txn.request_clock),
            "pid": pid, "tid": tid,
            "args": {"correlation_id": txn.correlation_id,
                     "outcome": txn.outcome, "retries": txn.retries,
                     "buckets": dict(txn.buckets)},
        })
        for start, stop, bucket in txn.segments:
            events.append({
                "name": bucket, "cat": "attribution", "ph": "X",
                "ts": float(start), "dur": float(stop - start),
                "pid": pid, "tid": tid,
                "args": {"correlation_id": txn.correlation_id},
            })

    for event in recorder.events:
        if event.kind == "FAULT":
            events.append({
                "name": f"fault: {event.detail}", "cat": "fault",
                "ph": "I", "ts": float(event.clock), "s": "g",
                "pid": pid, "tid": 0,
                "args": {"correlation_id": event.correlation_id,
                         "bus": event.bus},
            })
    return events


def write_flight_trace(path: str, recorder: FlightRecorder,
                       label: str = "sim") -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": flight_trace(recorder, label),
                   "displayTimeUnit": "ms"}, handle, indent=2)
        handle.write("\n")
