"""Causal transaction flight recorder with exact clock attribution.

Attach a :class:`FlightRecorder` to a run (``simulate(...,
recorder=FlightRecorder())``) to journal every protocol event with a
correlation id and account every simulated clock of every transfer to
an exclusive bucket.  See :mod:`repro.obs.flight.recorder` for the
event catalogue and bucket semantics, and ``repro-synth explain`` for
the CLI surface.
"""

from .attribution import summarize
from .critical import critical_path, detect_anomalies
from .explain import (EXPLAIN_SCHEMA, explain_payload, flight_trace,
                      render_explain_text, write_flight_trace)
from .recorder import (BUCKETS, EVENT_KINDS, FlightEvent,
                       FlightRecorder, FlightTransaction)

__all__ = [
    "BUCKETS",
    "EVENT_KINDS",
    "EXPLAIN_SCHEMA",
    "FlightEvent",
    "FlightRecorder",
    "FlightTransaction",
    "critical_path",
    "detect_anomalies",
    "explain_payload",
    "flight_trace",
    "render_explain_text",
    "summarize",
    "write_flight_trace",
]
