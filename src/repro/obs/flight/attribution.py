"""Run-level clock attribution over a flight recorder's journal.

:func:`summarize` rolls the per-transaction bucket accounting (see
:mod:`repro.obs.flight.recorder`) up to whole-run totals plus per-bus,
per-initiator and per-channel breakdowns, and cross-checks the core
invariant -- every transaction's buckets sum exactly to its latency --
reporting the result in the ``exact`` flag rather than trusting it
silently.
"""

from __future__ import annotations

from typing import Any, Dict, List

from .recorder import BUCKETS, FlightRecorder


def _empty_buckets() -> Dict[str, int]:
    return {bucket: 0 for bucket in BUCKETS}


def _merged_intervals(recorder: FlightRecorder) -> List[List[int]]:
    """Transaction windows merged into disjoint busy intervals."""
    windows = sorted(
        (txn.request_clock, txn.end_clock)
        for txn in recorder.transactions
        if txn.end_clock is not None and txn.end_clock > txn.request_clock
    )
    merged: List[List[int]] = []
    for start, end in windows:
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return merged


def summarize(recorder: FlightRecorder) -> Dict[str, Any]:
    """Aggregate attribution for one recorded run.

    Returns a dict with:

    * ``buckets`` -- total clocks per bucket across all transactions;
    * ``per_bus`` / ``per_initiator`` / ``per_channel`` -- the same
      split by dimension;
    * ``transaction_clocks`` -- sum of all transaction latencies
      (overlapping transactions on different buses count once each);
    * ``covered_clocks`` / ``run_idle_clocks`` -- merged-interval
      coverage of ``[0, end_clock]``: clocks inside at least one
      transaction window vs. clocks no transfer was in flight;
    * ``exact`` -- True iff every transaction's buckets summed exactly
      to its latency (the attribution invariant).
    """
    totals = _empty_buckets()
    per_bus: Dict[str, Dict[str, int]] = {}
    per_initiator: Dict[str, Dict[str, int]] = {}
    per_channel: Dict[str, Dict[str, int]] = {}
    transaction_clocks = 0
    exact = True

    for txn in recorder.transactions:
        attributed = sum(txn.buckets.values())
        if attributed != txn.latency_clocks:
            exact = False
        transaction_clocks += txn.latency_clocks
        for store, key in ((per_bus, txn.bus),
                           (per_initiator, txn.initiator),
                           (per_channel, txn.channel or "?")):
            bucket_map = store.setdefault(key, _empty_buckets())
            for bucket, clocks in txn.buckets.items():
                bucket_map[bucket] += clocks
                if store is per_bus:
                    totals[bucket] += clocks

    merged = _merged_intervals(recorder)
    covered = sum(end - start for start, end in merged)
    end_clock = recorder.end_clock

    return {
        "end_clock": end_clock,
        "transactions": len(recorder.transactions),
        "buckets": totals,
        "per_bus": {bus: per_bus[bus] for bus in sorted(per_bus)},
        "per_initiator": {name: per_initiator[name]
                          for name in sorted(per_initiator)},
        "per_channel": {name: per_channel[name]
                        for name in sorted(per_channel)},
        "transaction_clocks": transaction_clocks,
        "covered_clocks": covered,
        "run_idle_clocks": max(0, end_clock - covered),
        "exact": exact,
    }
