"""Pipeline tracer: spans and counters with near-zero disabled cost.

The synthesis flow (partitioning, bus generation, the five protocol
generation steps, HDL emission, static analysis, simulation) is
instrumented with *spans* -- named, nested wall-clock intervals -- and
monotonic *counters*.  Instrumentation sites call the module-level
:func:`span` / :func:`count` helpers, which consult one module global:
when no tracer is active they return a shared no-op context manager
(one attribute read and an ``is None`` test), so the instrumented
pipeline runs at full speed by default.

Activate collection with :func:`tracing`::

    from repro import obs

    with obs.tracing() as tracer:
        design = generate_bus(group)
    print(tracer.total_ms("busgen.generate_bus"))

Spans record a name, a category, start/end times from
``time.perf_counter_ns``, a nesting depth and free-form attributes
(set at creation or via :meth:`SpanHandle.set` while the span is
open).  The recorded list is the source for every exporter in
:mod:`repro.obs.export`, including the Chrome ``trace_event`` view.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One completed (or still open) traced interval."""

    __slots__ = ("name", "category", "start_ns", "end_ns", "depth", "args")

    def __init__(self, name: str, category: str, start_ns: int,
                 depth: int, args: Dict[str, Any]):
        self.name = name
        self.category = category
        self.start_ns = start_ns
        self.end_ns: Optional[int] = None
        self.depth = depth
        self.args = args

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    @property
    def duration_ms(self) -> float:
        return self.duration_ns / 1e6

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "category": self.category,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "depth": self.depth,
            "args": dict(self.args),
        }

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, {self.duration_ms:.3f} ms, "
                f"depth={self.depth})")


class _NullSpanHandle:
    """Shared no-op stand-in returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *_exc: object) -> bool:
        return False

    def set(self, **_args: Any) -> None:
        """Discard attributes (tracing is off)."""


NULL_SPAN = _NullSpanHandle()


class SpanHandle:
    """Context manager driving one live span on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> "SpanHandle":
        self._tracer._open(self._span)
        return self

    def __exit__(self, exc_type: object, *_exc: object) -> bool:
        if exc_type is not None:
            self._span.args.setdefault("error", getattr(
                exc_type, "__name__", str(exc_type)))
        self._tracer._close(self._span)
        return False

    def set(self, **args: Any) -> None:
        """Attach attributes to the span while it is open."""
        self._span.args.update(args)


class Tracer:
    """Collects spans and counters for one traced run."""

    def __init__(self, clock=time.perf_counter_ns):
        self._clock = clock
        self.spans: List[Span] = []
        self.counters: Dict[str, float] = {}
        self._stack: List[Span] = []

    # -- recording ---------------------------------------------------------

    def span(self, name: str, category: str = "pipeline",
             **args: Any) -> SpanHandle:
        return SpanHandle(self, Span(name, category, self._clock(),
                                     depth=len(self._stack), args=args))

    def count(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def _open(self, span: Span) -> None:
        span.depth = len(self._stack)
        span.start_ns = self._clock()
        self._stack.append(span)
        self.spans.append(span)

    def _close(self, span: Span) -> None:
        span.end_ns = self._clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:          # tolerate unbalanced exits
            self._stack.remove(span)

    # -- queries -----------------------------------------------------------

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def total_ms(self, name: str) -> float:
        return sum(s.duration_ms for s in self.spans_named(name))

    def breakdown(self) -> List[Dict[str, Any]]:
        """Aggregate spans by name in first-seen order: name, category,
        call count and total wall milliseconds."""
        order: List[str] = []
        totals: Dict[str, Dict[str, Any]] = {}
        for span in self.spans:
            entry = totals.get(span.name)
            if entry is None:
                order.append(span.name)
                entry = {"name": span.name, "category": span.category,
                         "calls": 0, "total_ms": 0.0}
                totals[span.name] = entry
            entry["calls"] += 1
            entry["total_ms"] += span.duration_ms
        return [totals[name] for name in order]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "spans": [span.to_dict() for span in self.spans],
            "counters": dict(self.counters),
            "breakdown": self.breakdown(),
        }


# ---------------------------------------------------------------------------
# Module-level switchboard (the instrumentation sites' entry points)
# ---------------------------------------------------------------------------

_ACTIVE: Optional[Tracer] = None


def active_tracer() -> Optional[Tracer]:
    """The currently installed tracer, or ``None`` when disabled."""
    return _ACTIVE


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the collection target; returns it."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


def span(name: str, category: str = "pipeline", **args: Any):
    """Open a span on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, category, **args)


def count(name: str, value: float = 1.0) -> None:
    """Bump a counter on the active tracer (no-op when disabled)."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.count(name, value)


class tracing:
    """Context manager enabling collection for a block::

        with obs.tracing() as tracer:
            ...pipeline calls...

    Nesting restores the previously active tracer on exit.
    """

    def __init__(self, tracer: Optional[Tracer] = None):
        self.tracer = tracer or Tracer()
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = _ACTIVE
        activate(self.tracer)
        return self.tracer

    def __exit__(self, *_exc: object) -> bool:
        global _ACTIVE
        _ACTIVE = self._previous
        return False
