"""Abstract communication channels and channel groups (Section 1-2 of
the paper).  See DESIGN.md section 3."""

from repro.channels.channel import Channel
from repro.channels.group import ChannelGroup
from repro.channels.rates import (
    ChannelRates,
    GroupRateModel,
    average_rate,
    peak_rate,
)

__all__ = [
    "Channel",
    "ChannelGroup",
    "ChannelRates",
    "GroupRateModel",
    "average_rate",
    "peak_rate",
]
