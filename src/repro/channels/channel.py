"""Abstract communication channels.

"A channel is an abstract communication medium over which two processes
can transfer data" (Section 1).  After partitioning, every (behavior,
remote variable, direction) triple is one channel: Figure 1 derives
``ch1 : A < MEM`` (A reads MEM), ``ch2 : A > MEM`` (A writes MEM) and
``ch3 : A > STATUS`` from process A's accesses.

A channel knows:

* its *accessor* behavior (the process initiating transfers) and the
  *variable* at the far end,
* its *direction* from the accessor's point of view (read or write),
* its *message format*: data bits, plus address bits when the variable
  is an array (the address must cross the bus too -- the FLC channels
  carry 16 data + 7 address = 23 message bits), and
* its *access count*: how many messages the accessor sends/requests
  over its lifetime, from static access analysis.

The channel is "a virtual entity and free of any implementation
details"; widths, wires and protocols appear only after bus and protocol
generation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ChannelError
from repro.spec.access import AccessSummary, Direction
from repro.spec.behavior import Behavior
from repro.spec.types import address_bits, data_bits, message_bits
from repro.spec.variable import Variable


@dataclass
class Channel:
    """One abstract channel between a behavior and a remote variable."""

    name: str
    accessor: Behavior
    variable: Variable
    direction: Direction
    #: Messages transferred over the accessor's lifetime.
    accesses: int
    #: Module name hosting the accessor behavior (informational).
    accessor_module: Optional[str] = None
    #: Module name hosting the variable (informational).
    variable_module: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ChannelError("channel name must be non-empty")
        if self.accesses < 0:
            raise ChannelError(
                f"channel {self.name}: negative access count {self.accesses}"
            )

    # ------------------------------------------------------------------
    # Message format
    # ------------------------------------------------------------------

    @property
    def data_bits(self) -> int:
        """Bits of the data portion of one message."""
        return data_bits(self.variable.dtype)

    @property
    def address_bits(self) -> int:
        """Bits of the address portion (0 for scalar variables)."""
        return address_bits(self.variable.dtype)

    @property
    def message_bits(self) -> int:
        """Total bits of one message (address + data)."""
        return message_bits(self.variable.dtype)

    @property
    def total_bits(self) -> int:
        """Total bits transferred over the accessor's lifetime."""
        return self.accesses * self.message_bits

    @property
    def is_write(self) -> bool:
        """True when the accessor writes the variable."""
        return self.direction is Direction.WRITE

    @property
    def is_read(self) -> bool:
        """True when the accessor reads the variable."""
        return self.direction is Direction.READ

    def describe(self) -> str:
        """Human-readable summary in the paper's ``A > MEM`` notation."""
        arrow = ">" if self.is_write else "<"
        return (f"{self.name} : {self.accessor.name} {arrow} "
                f"{self.variable.name} ({self.message_bits} bits x "
                f"{self.accesses} accesses)")

    @classmethod
    def from_access(cls, name: str, summary: AccessSummary,
                    accessor_module: Optional[str] = None,
                    variable_module: Optional[str] = None) -> "Channel":
        """Build a channel from a static access summary."""
        return cls(
            name=name,
            accessor=summary.behavior,
            variable=summary.variable,
            direction=summary.direction,
            accesses=summary.count,
            accessor_module=accessor_module,
            variable_module=variable_module,
        )

    def __repr__(self) -> str:
        return f"Channel({self.describe()})"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other
