"""Channel groups: sets of channels to be implemented as one bus.

System partitioning "may group channels to be implemented as a single
bus" (Section 1, Figure 1: ch1/ch2/ch3 merge into bus B).  A
:class:`ChannelGroup` is the unit of work handed to bus generation and
protocol generation.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Set

from repro.errors import ChannelError
from repro.channels.channel import Channel
from repro.spec.behavior import Behavior


class ChannelGroup:
    """A named group of channels that will share one bus.

    Parameters
    ----------
    name:
        Bus name used in generated code (``B`` in the paper's figures).
    channels:
        The member channels.  Names must be unique within the group.
    clock_period:
        Clock period in arbitrary time units; rates are reported in bits
        per clock when this is 1.0 (as in the paper's Figures 7-8).
    """

    def __init__(self, name: str, channels: Sequence[Channel],
                 clock_period: float = 1.0):
        if not name:
            raise ChannelError("channel group name must be non-empty")
        if not channels:
            raise ChannelError(f"channel group {name} has no channels")
        if clock_period <= 0:
            raise ChannelError(
                f"channel group {name}: clock period must be positive"
            )
        names = [c.name for c in channels]
        if len(set(names)) != len(names):
            raise ChannelError(
                f"channel group {name}: duplicate channel names"
            )
        self.name = name
        self.channels: List[Channel] = list(channels)
        self.clock_period = clock_period

    def __iter__(self) -> Iterator[Channel]:
        return iter(self.channels)

    def __len__(self) -> int:
        return len(self.channels)

    def channel(self, name: str) -> Channel:
        for channel in self.channels:
            if channel.name == name:
                return channel
        raise ChannelError(f"group {self.name}: no channel named {name!r}")

    # ------------------------------------------------------------------
    # Aggregate properties used by bus generation
    # ------------------------------------------------------------------

    @property
    def max_message_bits(self) -> int:
        """Largest message any member channel sends.

        This is the upper end of the buswidth range examined by the bus
        generation algorithm (Section 3 step 1); wider buses cannot be
        exploited because a single message fits in one word already.
        """
        return max(c.message_bits for c in self.channels)

    @property
    def total_message_pins(self) -> int:
        """Sum of member message widths: the data pins that *separate*
        (unmerged) channel implementations would need.  The baseline of
        the paper's "interconnect reduction" percentages (Figure 8):
        ch1 and ch2 at 23 bits each give 46 pins."""
        return sum(c.message_bits for c in self.channels)

    def behaviors(self) -> List[Behavior]:
        """Distinct accessor behaviors, in first-appearance order."""
        seen: Set[int] = set()
        out: List[Behavior] = []
        for channel in self.channels:
            if id(channel.accessor) not in seen:
                seen.add(id(channel.accessor))
                out.append(channel.accessor)
        return out

    def channels_of(self, behavior: Behavior) -> List[Channel]:
        """Member channels whose accessor is ``behavior``."""
        return [c for c in self.channels if c.accessor is behavior]

    def describe(self) -> str:
        lines = [f"bus {self.name} ({len(self.channels)} channels, "
                 f"clock {self.clock_period}):"]
        lines.extend(f"  {c.describe()}" for c in self.channels)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"ChannelGroup({self.name!r}, {len(self.channels)} channels)"
