"""Channel rate computation (Section 2 of the paper).

The **channel average rate** ``AveRate(C)`` is "the rate at which data is
sent over channel C over the lifetime of the processes which communicate
over it": total message bits divided by the accessor process's lifetime.
The lifetime itself depends on the candidate buswidth (a narrower bus
stretches communication, lengthening the lifetime and *lowering* the
average rate), which is why bus generation re-estimates rates per width
(Section 3 step 3; the estimation method is the paper's ref [8]).

The **channel peak rate** is the rate sustained *during* a transfer:
useful bits per word divided by the protocol delay.  A 20-bit bus moving
23-bit messages under the 2-clock full handshake has a peak rate of
``20 / 2 = 10`` bits/clock -- the value constrained in Figure 8's design
A, which selects exactly width 20.

The **bus rate** (Equation 2) lives on :class:`repro.protocols.Protocol`.
Feasibility (Equation 1) requires ``BusRate >= sum of AveRates``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.channels.channel import Channel
from repro.channels.group import ChannelGroup
from repro.errors import ChannelError
from repro.estimate.perf import PerformanceEstimator
from repro.protocols import Protocol


@dataclass(frozen=True)
class ChannelRates:
    """Rates of one channel under one candidate bus implementation."""

    channel_name: str
    width: int
    #: bits per time unit (bits/clock when clock_period == 1).
    average_rate: float
    #: bits per time unit during an active transfer.
    peak_rate: float
    #: accessor process lifetime in clocks, the average-rate denominator.
    lifetime_clocks: int


def peak_rate(channel: Channel, width: int, protocol: Protocol,
              clock_period: float = 1.0) -> float:
    """Peak rate of a channel on a ``width``-bit bus.

    During a transfer, each protocol round moves one bus word.  The word
    carries ``min(width, message_bits)`` useful bits (a bus wider than
    the message cannot be filled).
    """
    if width < 1:
        raise ChannelError(f"buswidth must be >= 1, got {width}")
    useful = min(width, channel.message_bits)
    return useful / (protocol.delay_clocks * clock_period)


def average_rate(channel: Channel, siblings: Sequence[Channel], width: int,
                 protocol: Protocol, clock_period: float = 1.0,
                 estimator: Optional[PerformanceEstimator] = None) -> float:
    """Average rate of a channel on a ``width``-bit bus.

    ``siblings`` must contain every channel whose accessor is the same
    behavior as ``channel``'s (including ``channel`` itself): they all
    stretch the process lifetime.  Channels of other behaviors in the
    sequence are ignored.
    """
    estimator = estimator or PerformanceEstimator()
    lifetime = estimator.lifetime_clocks(
        channel.accessor, siblings, width, protocol)
    if lifetime <= 0:
        raise ChannelError(
            f"channel {channel.name}: accessor {channel.accessor.name} has "
            "zero lifetime; cannot define an average rate"
        )
    return channel.total_bits / (lifetime * clock_period)


class GroupRateModel:
    """Computes all member-channel rates of a group per candidate width.

    One instance caches the computation-clock estimates across the
    buswidth sweep of the bus generation algorithm.
    """

    def __init__(self, group: ChannelGroup, protocol: Protocol,
                 estimator: Optional[PerformanceEstimator] = None):
        self.group = group
        self.protocol = protocol
        self.estimator = estimator or PerformanceEstimator()

    def rates_at(self, width: int) -> Dict[str, ChannelRates]:
        """Rates of every member channel at one buswidth."""
        out: Dict[str, ChannelRates] = {}
        for channel in self.group:
            siblings = self.group.channels_of(channel.accessor)
            lifetime = self.estimator.lifetime_clocks(
                channel.accessor, siblings, width, self.protocol)
            if lifetime <= 0:
                raise ChannelError(
                    f"channel {channel.name}: accessor "
                    f"{channel.accessor.name} has zero lifetime"
                )
            out[channel.name] = ChannelRates(
                channel_name=channel.name,
                width=width,
                average_rate=channel.total_bits /
                (lifetime * self.group.clock_period),
                peak_rate=peak_rate(channel, width, self.protocol,
                                    self.group.clock_period),
                lifetime_clocks=lifetime,
            )
        return out

    def demand_at(self, width: int) -> float:
        """Sum of member average rates: the right side of Equation 1."""
        return sum(r.average_rate for r in self.rates_at(width).values())

    def bus_rate_at(self, width: int) -> float:
        """Bus data rate at one width: the left side of Equation 1."""
        return self.protocol.bus_rate(width, self.group.clock_period)

    def is_feasible(self, width: int) -> bool:
        """Equation 1: the bus keeps up with all member channels."""
        return self.bus_rate_at(width) >= self.demand_at(width)
