"""First-order area estimation for generated bus interfaces.

The paper's ref [10] is "Area and performance estimation from
system-level specifications"; Figure 7 uses only the performance half,
but a designer choosing among Figure 8's implementations also weighs
interface *area*.  This module provides the classic first-order model
for the hardware that protocol generation implies:

* **wires** -- every pin of the bus crosses the module boundary
  (data + ID + control);
* **accessor controller** -- each generated send/receive procedure is a
  little FSM; a handshake word costs two states (drive, wait) plus one
  state per message for setup/teardown.  Gates ~ ``states *
  GATES_PER_STATE`` plus output drivers (one per driven data pin);
* **server controller** -- the variable process adds an ID decoder
  (~``id_width`` gates per served channel), the same per-word FSM, and
  a word-wide latch bank.

Absolute numbers are technology-scaled by two documented constants;
what the model is *for* is ranking: wider buses cost more wires and
drivers but fewer FSM states (fewer words per message), which yields
the area/performance trade-off table of the ``abl-area`` benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    # estimate is a low-level package (channels.rates imports it), so
    # the high-level protogen types are imported lazily to avoid a
    # cycle; at runtime the functions below receive them duck-typed.
    from repro.protogen.procedures import CommProcedure
    from repro.protogen.refine import RefinedBus, RefinedSpec

#: Gate-equivalents per FSM state (one-hot state register + next-state
#: logic), a conventional planning number.
GATES_PER_STATE = 6
#: Gate-equivalents per driven/latched data bit (tristate driver or
#: flip-flop).
GATES_PER_BIT = 2


@dataclass(frozen=True)
class ProcedureArea:
    """Area of one generated procedure's controller."""

    procedure_name: str
    fsm_states: int
    driver_bits: int

    @property
    def gates(self) -> int:
        return (self.fsm_states * GATES_PER_STATE
                + self.driver_bits * GATES_PER_BIT)


@dataclass
class BusAreaEstimate:
    """Area of one generated bus and all its interface hardware."""

    bus_name: str
    wires: int
    procedures: List[ProcedureArea]
    #: ID-decoder gates across all variable processes.
    decoder_gates: int

    @property
    def controller_gates(self) -> int:
        return sum(p.gates for p in self.procedures)

    @property
    def total_gates(self) -> int:
        return self.controller_gates + self.decoder_gates


def procedure_area(procedure: "CommProcedure", width: int) -> ProcedureArea:
    """Estimate one procedure's controller."""
    words = procedure.layout.word_count(width)
    # Two states per word under a handshake (drive, wait-ack); one per
    # word for strobed protocols; setup adds its clock count in states.
    states_per_word = 2 if procedure.protocol.num_control_lines >= 2 \
        and procedure.protocol.setup_clocks == 0 else 1
    fsm_states = (procedure.protocol.setup_clocks
                  + words * states_per_word + 1)   # +1 idle state
    driven = 0
    for word in procedure.layout.words(width):
        for word_slice in word.slices:
            if word_slice.field.driver is procedure.role:
                driven = max(driven, word_slice.bits)
    # The widest simultaneously driven/latched slice sizes the datapath.
    datapath_bits = max(driven, 1)
    return ProcedureArea(
        procedure_name=procedure.name,
        fsm_states=fsm_states,
        driver_bits=datapath_bits,
    )


def estimate_bus_area(bus: "RefinedBus") -> BusAreaEstimate:
    """Estimate one refined bus's interface area.

    State counts come from the *synthesized* controller FSMs
    (:mod:`repro.protogen.fsm`), so the area model and the simulator's
    timing share one structural source; the closed-form
    :func:`procedure_area` matches it exactly (tested) and exists for
    width sweeps that don't want to build FSM objects.
    """
    from repro.protogen.fsm import synthesize_fsm

    structure = bus.structure
    procedures: List[ProcedureArea] = []
    for pair in bus.procedures.values():
        for procedure in (pair.accessor, pair.server):
            closed_form = procedure_area(procedure, structure.width)
            fsm = synthesize_fsm(procedure, structure)
            procedures.append(ProcedureArea(
                procedure_name=procedure.name,
                fsm_states=fsm.state_count,
                driver_bits=closed_form.driver_bits,
            ))
    decoder_gates = 0
    for vproc in bus.variable_processes:
        decoder_gates += len(vproc.services) * max(structure.id_lines, 1)
    return BusAreaEstimate(
        bus_name=structure.name,
        wires=structure.total_pins,
        procedures=procedures,
        decoder_gates=decoder_gates,
    )


def estimate_spec_area(spec: "RefinedSpec") -> Dict[str, BusAreaEstimate]:
    """Area estimates for every bus of a refined specification."""
    return {bus.name: estimate_bus_area(bus) for bus in spec.buses}
