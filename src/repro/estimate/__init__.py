"""Performance and traffic estimation (substrate for the paper's
ref [10] estimator).  See DESIGN.md section 3."""

from repro.estimate.area import (
    BusAreaEstimate,
    ProcedureArea,
    estimate_bus_area,
    estimate_spec_area,
    procedure_area,
)
from repro.estimate.perf import (
    PerformanceEstimator,
    ProcessEstimate,
    comp_clocks_body,
    sweep_widths,
    transfer_clocks,
)
from repro.estimate.traffic import (
    ChannelTraffic,
    GroupTraffic,
    channel_traffic,
    format_traffic_table,
    group_traffic,
    interconnect_reduction,
)

__all__ = [
    "BusAreaEstimate",
    "ChannelTraffic",
    "ProcedureArea",
    "estimate_bus_area",
    "estimate_spec_area",
    "procedure_area",
    "GroupTraffic",
    "PerformanceEstimator",
    "ProcessEstimate",
    "channel_traffic",
    "comp_clocks_body",
    "format_traffic_table",
    "group_traffic",
    "interconnect_reduction",
    "sweep_widths",
    "transfer_clocks",
]
