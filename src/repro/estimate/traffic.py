"""Traffic summaries: per-channel and per-group message statistics.

These are the numbers the paper's Section 2 reasons about when merging
channels (Figure 2: per-channel bits moved over the process lifetime)
and the "Total Bitwidth of the channels (pins)" row of Figure 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.channels.channel import Channel
from repro.channels.group import ChannelGroup


@dataclass(frozen=True)
class ChannelTraffic:
    """Static traffic facts about one channel."""

    channel_name: str
    message_bits: int
    data_bits: int
    address_bits: int
    accesses: int
    total_bits: int


def channel_traffic(channel: Channel) -> ChannelTraffic:
    """Summarize one channel's traffic."""
    return ChannelTraffic(
        channel_name=channel.name,
        message_bits=channel.message_bits,
        data_bits=channel.data_bits,
        address_bits=channel.address_bits,
        accesses=channel.accesses,
        total_bits=channel.total_bits,
    )


@dataclass(frozen=True)
class GroupTraffic:
    """Aggregated traffic facts about a channel group."""

    group_name: str
    channels: List[ChannelTraffic]
    total_message_pins: int
    total_bits: int
    max_message_bits: int


def group_traffic(group: ChannelGroup) -> GroupTraffic:
    """Summarize a group's traffic (Figure 8's baseline rows)."""
    per_channel = [channel_traffic(c) for c in group]
    return GroupTraffic(
        group_name=group.name,
        channels=per_channel,
        total_message_pins=group.total_message_pins,
        total_bits=sum(t.total_bits for t in per_channel),
        max_message_bits=group.max_message_bits,
    )


def interconnect_reduction(separate_pins: int, bus_pins: int) -> float:
    """Percentage reduction in data lines from channel merging.

    Figure 8 reports ``(separate - merged) / separate`` as a percentage:
    46 separate pins reduced to a 20-bit bus is a 56% reduction.
    """
    if separate_pins <= 0:
        raise ValueError(f"separate pin count must be positive, got {separate_pins}")
    if bus_pins < 0:
        raise ValueError(f"bus pin count must be >= 0, got {bus_pins}")
    return 100.0 * (separate_pins - bus_pins) / separate_pins


def format_traffic_table(traffic: GroupTraffic) -> str:
    """Render a plain-text traffic table for reports and benches."""
    header = (f"{'channel':<12} {'msg bits':>8} {'data':>6} {'addr':>6} "
              f"{'accesses':>9} {'total bits':>11}")
    rows = [header, "-" * len(header)]
    for t in traffic.channels:
        rows.append(
            f"{t.channel_name:<12} {t.message_bits:>8} {t.data_bits:>6} "
            f"{t.address_bits:>6} {t.accesses:>9} {t.total_bits:>11}"
        )
    rows.append("-" * len(header))
    rows.append(
        f"{'TOTAL':<12} {traffic.total_message_pins:>8} {'':>6} {'':>6} "
        f"{'':>9} {traffic.total_bits:>11}"
    )
    return "\n".join(rows)
