"""Performance estimation (substrate for ref [10]).

The paper uses "a performance estimator [10]" to obtain process
execution times for each candidate buswidth (Figure 7).  This module
implements that estimator as a clock-accurate analytical model over the
statement IR:

``exec_clocks(P, w) = comp_clocks(P) + comm_clocks(P, w)``

* **Computation clocks** follow the statement cost model documented in
  :mod:`repro.spec.stmt` (one control step per statement, loops pay one
  clock of overhead per iteration).  ``If`` costs its *worst-case*
  branch, the standard conservative choice for constraint checking.
* **Communication clocks**: every access to a remote variable is one
  message of ``message_bits`` bits; a ``w``-bit bus moves it in
  ``ceil(message_bits / w)`` words of ``protocol.delay_clocks`` clocks
  each.  This is what produces the Figure 7 staircase: execution time
  decreases with width and plateaus once ``w >= message_bits`` (23 for
  the FLC channels -- "bus widths greater than 23 pins do not yield any
  further improvements").

The estimator is intentionally the *same model* the simulator realizes,
so tests can assert estimate == measurement on branch-free workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.errors import EstimationError
from repro.channels.channel import Channel
from repro.protocols import Protocol
from repro.spec.behavior import Behavior
from repro.spec.stmt import (
    Assign,
    Call,
    For,
    If,
    Nop,
    Stmt,
    WaitClocks,
    While,
)


def transfer_clocks(bits: int, width: int, protocol: Protocol) -> int:
    """Clocks to move one ``bits``-bit message over a ``width``-bit bus.

    ``ceil(bits / width)`` bus words at ``protocol.delay_clocks`` clocks
    per word (Figure 4's procedures loop ``for J in 1 to 2`` to push a
    16-bit message through an 8-bit bus, two handshakes of 2 clocks),
    plus the protocol's per-message setup (zero for the paper's
    protocols; the burst extension pays its handshake here).
    """
    if bits < 0:
        raise EstimationError(f"message bits must be >= 0, got {bits}")
    if width < 1:
        raise EstimationError(f"buswidth must be >= 1, got {width}")
    if bits == 0:
        return 0
    words = math.ceil(bits / width)
    return protocol.message_clocks(words)


def comp_clocks_body(body: Sequence[Stmt],
                     remote: frozenset = frozenset()) -> int:
    """Computation clocks of a statement list (communication excluded).

    ``remote`` holds the variables that live on another module.  An
    assignment *into* a remote variable is pure communication after
    refinement (``X <= 32`` becomes ``SendCH0(32)``), so it contributes
    no computation step of its own -- its cost is entirely the transfer
    counted by :meth:`PerformanceEstimator.comm_clocks`.  Remote *reads*
    inside an expression still leave the computation statement behind
    (``IR <= MEMtemp``), so those statements keep their clock.
    """
    total = 0
    for stmt in body:
        total += _comp_clocks_stmt(stmt, remote)
    return total


def _comp_clocks_stmt(stmt: Stmt, remote: frozenset) -> int:
    if isinstance(stmt, Assign):
        return 0 if stmt.target.variable in remote else 1
    if isinstance(stmt, If):
        return 1 + max(comp_clocks_body(stmt.then_body, remote),
                       comp_clocks_body(stmt.else_body, remote))
    if isinstance(stmt, For):
        return stmt.trip_count * (1 + comp_clocks_body(stmt.body, remote))
    if isinstance(stmt, While):
        return stmt.trip_count * (1 + comp_clocks_body(stmt.body, remote)) + 1
    if isinstance(stmt, WaitClocks):
        return stmt.clocks
    if isinstance(stmt, (Call, Nop)):
        # Calls are communication; their cost is counted by comm_clocks
        # from the channel traffic, not here.
        return 0
    raise EstimationError(f"cannot estimate statement {stmt!r}")


@dataclass(frozen=True)
class ProcessEstimate:
    """Execution-time breakdown of one process at one buswidth."""

    behavior_name: str
    width: int
    comp_clocks: int
    comm_clocks: int

    @property
    def exec_clocks(self) -> int:
        return self.comp_clocks + self.comm_clocks


class PerformanceEstimator:
    """Estimates process execution times under a bus implementation.

    Computation clocks are cached per behavior (they do not depend on
    the bus); communication clocks are recomputed per width/protocol.
    """

    def __init__(self) -> None:
        self._comp_cache: Dict[tuple, int] = {}

    def comp_clocks(self, behavior: Behavior,
                    channels: Sequence[Channel] = ()) -> int:
        """Computation clocks of ``behavior``.

        When ``channels`` is given, variables the behavior reaches over
        a channel are treated as remote: assignments into them are pure
        communication and carry no computation clock (see
        :func:`comp_clocks_body`).
        """
        remote = frozenset(
            c.variable for c in channels if c.accessor is behavior
        )
        key = (id(behavior), frozenset(v.name for v in remote))
        if key not in self._comp_cache:
            self._comp_cache[key] = comp_clocks_body(behavior.body, remote)
        return self._comp_cache[key]

    def comm_clocks(self, behavior: Behavior, channels: Sequence[Channel],
                    width: int, protocol: Protocol) -> int:
        """Communication clocks of ``behavior`` over its channels.

        ``channels`` may contain channels of other behaviors; only those
        whose accessor is ``behavior`` contribute.
        """
        total = 0
        for channel in channels:
            if channel.accessor is behavior:
                total += channel.accesses * transfer_clocks(
                    channel.message_bits, width, protocol)
        return total

    def estimate(self, behavior: Behavior, channels: Sequence[Channel],
                 width: int, protocol: Protocol) -> ProcessEstimate:
        """Full execution-time estimate of one process."""
        return ProcessEstimate(
            behavior_name=behavior.name,
            width=width,
            comp_clocks=self.comp_clocks(behavior, channels),
            comm_clocks=self.comm_clocks(behavior, channels, width, protocol),
        )

    def lifetime_clocks(self, behavior: Behavior,
                        channels: Sequence[Channel], width: int,
                        protocol: Protocol) -> int:
        """Process lifetime in clocks: the denominator of the channel
        average rate (Section 2)."""
        estimate = self.estimate(behavior, channels, width, protocol)
        return estimate.exec_clocks


def sweep_widths(behavior: Behavior, channels: Sequence[Channel],
                 widths: Sequence[int], protocol: Protocol,
                 estimator: Optional[PerformanceEstimator] = None,
                 ) -> Dict[int, ProcessEstimate]:
    """Estimate a process at several buswidths (the Figure 7 sweep)."""
    estimator = estimator or PerformanceEstimator()
    return {
        width: estimator.estimate(behavior, channels, width, protocol)
        for width in widths
    }
