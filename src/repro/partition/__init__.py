"""System partitioning (substrate for the paper's ref [1], the SpecSyn
partitioner).  See DESIGN.md section 3."""

from repro.partition.channels import default_bus_groups, extract_channels
from repro.partition.closeness import ClosenessModel, cut_traffic
from repro.partition.improve import ImprovementReport, improve_partition
from repro.partition.module import ModuleKind, SystemModule
from repro.partition.partitioner import Partition, cluster_partition

__all__ = [
    "ClosenessModel",
    "ImprovementReport",
    "ModuleKind",
    "Partition",
    "SystemModule",
    "cluster_partition",
    "cut_traffic",
    "default_bus_groups",
    "improve_partition",
    "extract_channels",
]
