"""Closeness metrics for automatic partitioning.

The SpecSyn partitioner (the paper's ref [1]) clusters objects using
*closeness* functions: objects that communicate heavily should land in
the same module so their traffic never crosses a chip boundary.  We
implement the traffic-based closeness used by our greedy clusterer:

* ``closeness(behavior, variable)`` -- total message bits the behavior
  moves to/from the variable over its lifetime,
* ``closeness(behavior, behavior)`` -- traffic both behaviors direct at
  *shared* variables (they benefit from co-location with the variable
  and hence with each other),
* ``closeness(variable, variable)`` -- traffic from behaviors accessing
  both (arrays accessed together belong in the same memory).
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple, Union

from repro.spec.access import analyze_behavior
from repro.spec.behavior import Behavior
from repro.spec.system import SystemSpec
from repro.spec.types import message_bits
from repro.spec.variable import Variable

PartObject = Union[Behavior, Variable]


class ClosenessModel:
    """Precomputed traffic-based closeness over a system's objects."""

    def __init__(self, system: SystemSpec):
        self.system = system
        # traffic[behavior][variable] = total message bits moved.
        self._traffic: Dict[Behavior, Dict[Variable, int]] = {}
        for behavior in system.behaviors:
            per_variable: Dict[Variable, int] = {}
            for summary in analyze_behavior(behavior):
                bits = summary.count * message_bits(summary.variable.dtype)
                per_variable[summary.variable] = (
                    per_variable.get(summary.variable, 0) + bits
                )
            self._traffic[behavior] = per_variable

    def traffic(self, behavior: Behavior, variable: Variable) -> int:
        """Message bits ``behavior`` moves to/from ``variable``."""
        return self._traffic.get(behavior, {}).get(variable, 0)

    def closeness(self, a: PartObject, b: PartObject) -> float:
        """Symmetric closeness between two partition objects."""
        if isinstance(a, Behavior) and isinstance(b, Variable):
            return float(self.traffic(a, b))
        if isinstance(a, Variable) and isinstance(b, Behavior):
            return float(self.traffic(b, a))
        if isinstance(a, Behavior) and isinstance(b, Behavior):
            total = 0
            for variable in set(self._traffic.get(a, {})) & set(
                    self._traffic.get(b, {})):
                total += min(self.traffic(a, variable),
                             self.traffic(b, variable))
            return float(total)
        if isinstance(a, Variable) and isinstance(b, Variable):
            total = 0
            for behavior in self.system.behaviors:
                ta = self.traffic(behavior, a)
                tb = self.traffic(behavior, b)
                if ta and tb:
                    total += min(ta, tb)
            return float(total)
        raise TypeError(f"cannot compute closeness of {a!r} and {b!r}")

    def cluster_closeness(self, cluster_a: Iterable[PartObject],
                          cluster_b: Iterable[PartObject]) -> float:
        """Sum of pairwise closeness across two clusters."""
        cluster_b = list(cluster_b)
        return sum(self.closeness(a, b)
                   for a in cluster_a for b in cluster_b)


def object_name(obj: PartObject) -> str:
    """Stable display/sort name of a partition object."""
    return obj.name


def cut_traffic(model: ClosenessModel,
                assignment: Dict[PartObject, str]) -> int:
    """Message bits crossing module boundaries under an assignment.

    The quantity partitioning minimizes: every (behavior, variable) pair
    split across modules contributes its full traffic to the cut.
    """
    total = 0
    for behavior in model.system.behaviors:
        for variable, bits in model._traffic[behavior].items():
            module_b = assignment.get(behavior)
            module_v = assignment.get(variable)
            if module_b is not None and module_v is not None \
                    and module_b != module_v:
                total += bits
    return total


Pair = Tuple[PartObject, PartObject]
