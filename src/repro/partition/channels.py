"""Channel extraction: turning cross-module accesses into channels.

After partitioning, "variables ... mapped to a different module" are
accessed "over channels" (Figure 1).  Extraction walks every behavior's
static access summaries and creates one :class:`~repro.channels.Channel`
per (behavior, remote variable, direction) with a non-zero access count.

Channels are named ``ch0, ch1, ...`` in deterministic order (behavior
declaration order, then variable name, then direction) so repeated runs
and generated code are stable.  :func:`default_bus_groups` then groups
channels by the unordered pair of modules they connect -- the natural
"minimize interconnect at the module boundary" grouping the paper
describes -- yielding one bus candidate per module pair.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.channels.channel import Channel
from repro.channels.group import ChannelGroup
from repro.errors import PartitionError
from repro.partition.partitioner import Partition
from repro.spec.access import analyze_behavior


def extract_channels(partition: Partition, prefix: str = "ch",
                     start_index: int = 0) -> List[Channel]:
    """Derive all cross-module channels of a validated partition."""
    partition.validate()
    channels: List[Channel] = []
    index = start_index
    for behavior in partition.system.behaviors:
        behavior_module = partition.module_of(behavior)
        for summary in analyze_behavior(behavior):
            variable_module = partition.module_of(summary.variable)
            if variable_module is behavior_module:
                continue
            if summary.count == 0:
                continue
            channels.append(Channel.from_access(
                name=f"{prefix}{index}",
                summary=summary,
                accessor_module=behavior_module.name,
                variable_module=variable_module.name,
            ))
            index += 1
    return channels


def default_bus_groups(partition: Partition,
                       clock_period: float = 1.0,
                       channels: Optional[List[Channel]] = None,
                       ) -> List[ChannelGroup]:
    """Group extracted channels into one bus candidate per module pair.

    Returns groups named ``bus_<moduleA>_<moduleB>`` (names sorted), in
    deterministic order.
    """
    if channels is None:
        channels = extract_channels(partition)
    by_pair: Dict[Tuple[str, str], List[Channel]] = {}
    for channel in channels:
        if channel.accessor_module is None or channel.variable_module is None:
            raise PartitionError(
                f"channel {channel.name} lacks module annotations; extract "
                "it via extract_channels()"
            )
        pair = tuple(sorted((channel.accessor_module,
                             channel.variable_module)))
        by_pair.setdefault(pair, []).append(channel)

    groups: List[ChannelGroup] = []
    for pair in sorted(by_pair):
        group_name = f"bus_{pair[0]}_{pair[1]}"
        groups.append(ChannelGroup(group_name, by_pair[pair],
                                   clock_period=clock_period))
    return groups
