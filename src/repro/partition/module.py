"""System modules: the chips and memories produced by partitioning.

"System-level partitioning groups processes and variables in the system
specification into modules representing chips and memories" (abstract).
A :class:`SystemModule` is one such container; Figure 6's FLC uses two
chips, the second holding only the large array variables (a memory).
"""

from __future__ import annotations

import enum
from typing import List, Set

from repro.errors import PartitionError
from repro.spec.behavior import Behavior
from repro.spec.variable import Variable


class ModuleKind(enum.Enum):
    """What a module physically represents."""

    CHIP = "chip"
    MEMORY = "memory"

    def __str__(self) -> str:
        return self.value


class SystemModule:
    """One partition bin: a chip or a memory.

    Memories may hold only variables (a memory chip has no controller
    processes of its own in this model -- the paper generates *variable
    processes* for its contents during protocol generation instead).
    """

    def __init__(self, name: str, kind: ModuleKind = ModuleKind.CHIP):
        if not name:
            raise PartitionError("module name must be non-empty")
        self.name = name
        self.kind = kind
        self.behaviors: List[Behavior] = []
        self.variables: List[Variable] = []

    def add_behavior(self, behavior: Behavior) -> None:
        if self.kind is ModuleKind.MEMORY:
            raise PartitionError(
                f"module {self.name} is a memory; it cannot host behavior "
                f"{behavior.name}"
            )
        if behavior in self.behaviors:
            raise PartitionError(
                f"behavior {behavior.name} already in module {self.name}"
            )
        self.behaviors.append(behavior)

    def add_variable(self, variable: Variable) -> None:
        if variable in self.variables:
            raise PartitionError(
                f"variable {variable.name} already in module {self.name}"
            )
        self.variables.append(variable)

    @property
    def storage_bits(self) -> int:
        """Total bits of variable storage mapped to this module."""
        return sum(v.dtype.bits for v in self.variables)

    def contents(self) -> Set[object]:
        return set(self.behaviors) | set(self.variables)

    def describe(self) -> str:
        behavior_names = ", ".join(b.name for b in self.behaviors) or "-"
        variable_names = ", ".join(v.name for v in self.variables) or "-"
        return (f"module {self.name} ({self.kind}): "
                f"behaviors[{behavior_names}] variables[{variable_names}]")

    def __repr__(self) -> str:
        return (f"SystemModule({self.name!r}, {self.kind}, "
                f"{len(self.behaviors)} behaviors, "
                f"{len(self.variables)} variables)")
