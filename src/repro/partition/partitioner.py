"""System partitioning: manual assignment and greedy clustering.

This is substrate #3 (the paper's ref [1], Vahid & Gajski's SpecSyn
partitioner).  Two entry points:

* :class:`Partition` -- explicit, designer-driven assignment of
  behaviors and variables to modules.  The paper's experiments use a
  known partition (Figure 6: FLC memories on chip 2), so this is the
  primary path.
* :func:`cluster_partition` -- greedy hierarchical clustering using the
  traffic closeness of :mod:`repro.partition.closeness`, merging the
  closest clusters until the requested module count remains.  Useful
  when no partition is given; deterministic (ties break on names).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import PartitionError
from repro.obs.tracer import span as obs_span
from repro.partition.closeness import ClosenessModel, PartObject, object_name
from repro.partition.module import ModuleKind, SystemModule
from repro.spec.behavior import Behavior
from repro.spec.system import SystemSpec
from repro.spec.variable import Variable


class Partition:
    """An assignment of a system's behaviors and variables to modules."""

    def __init__(self, system: SystemSpec):
        self.system = system
        self.modules: List[SystemModule] = []
        self._module_of: Dict[PartObject, SystemModule] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_module(self, name: str,
                   kind: ModuleKind = ModuleKind.CHIP) -> SystemModule:
        if any(m.name == name for m in self.modules):
            raise PartitionError(f"duplicate module name {name!r}")
        module = SystemModule(name, kind)
        self.modules.append(module)
        return module

    def assign(self, obj: Union[Behavior, Variable, str],
               module: Union[SystemModule, str]) -> None:
        """Assign a behavior or shared variable to a module.

        Accepts names for convenience; behavior names are resolved
        first, then variable names.
        """
        resolved = self._resolve_object(obj)
        target = self._resolve_module(module)
        if resolved in self._module_of:
            raise PartitionError(
                f"{object_name(resolved)} is already assigned to "
                f"{self._module_of[resolved].name}"
            )
        if isinstance(resolved, Behavior):
            target.add_behavior(resolved)
        else:
            target.add_variable(resolved)
        self._module_of[resolved] = target

    def _resolve_object(self, obj: Union[Behavior, Variable, str]) -> PartObject:
        if isinstance(obj, (Behavior, Variable)):
            return obj
        for behavior in self.system.behaviors:
            if behavior.name == obj:
                return behavior
        for variable in self.system.variables:
            if variable.name == obj:
                return variable
        raise PartitionError(
            f"system {self.system.name} has no behavior or variable "
            f"named {obj!r}"
        )

    def _resolve_module(self, module: Union[SystemModule, str]) -> SystemModule:
        if isinstance(module, SystemModule):
            if module not in self.modules:
                raise PartitionError(
                    f"module {module.name} does not belong to this partition"
                )
            return module
        for candidate in self.modules:
            if candidate.name == module:
                return candidate
        raise PartitionError(f"no module named {module!r}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def module_of(self, obj: Union[Behavior, Variable, str]) -> SystemModule:
        resolved = self._resolve_object(obj)
        try:
            return self._module_of[resolved]
        except KeyError:
            raise PartitionError(
                f"{object_name(resolved)} is not assigned to any module"
            ) from None

    def is_remote(self, behavior: Behavior, variable: Variable) -> bool:
        """True when the behavior and variable live on different modules."""
        return self.module_of(behavior) is not self.module_of(variable)

    def validate(self) -> None:
        """Every behavior and shared variable assigned exactly once."""
        for behavior in self.system.behaviors:
            if behavior not in self._module_of:
                raise PartitionError(
                    f"behavior {behavior.name} is unassigned"
                )
        for variable in self.system.variables:
            if variable not in self._module_of:
                raise PartitionError(
                    f"shared variable {variable.name} is unassigned"
                )

    def describe(self) -> str:
        return "\n".join(m.describe() for m in self.modules)

    def __repr__(self) -> str:
        return (f"Partition({self.system.name!r}, "
                f"{len(self.modules)} modules)")


def cluster_partition(system: SystemSpec, module_count: int,
                      module_prefix: str = "module",
                      model: Optional[ClosenessModel] = None) -> Partition:
    """Greedy closeness clustering into ``module_count`` modules.

    Starts with every behavior and shared variable in its own cluster
    and repeatedly merges the pair with the highest closeness (ties:
    lexicographically earliest pair of cluster names) until
    ``module_count`` clusters remain.  Raises when the system has fewer
    objects than the requested module count.
    """
    if module_count < 1:
        raise PartitionError(f"module count must be >= 1, got {module_count}")
    objects: List[PartObject] = [*system.behaviors, *system.variables]
    if len(objects) < module_count:
        raise PartitionError(
            f"cannot split {len(objects)} objects into {module_count} modules"
        )
    with obs_span("partition.cluster", system=system.name,
                  objects=len(objects), modules=module_count):
        return _cluster(system, module_count, module_prefix, model, objects)


def _cluster(system: SystemSpec, module_count: int, module_prefix: str,
             model: Optional[ClosenessModel],
             objects: List[PartObject]) -> Partition:
    model = model or ClosenessModel(system)

    clusters: List[List[PartObject]] = [[obj] for obj in objects]

    def cluster_name(cluster: Sequence[PartObject]) -> str:
        return min(object_name(obj) for obj in cluster)

    while len(clusters) > module_count:
        best: Optional[Tuple[float, str, str, int, int]] = None
        for i in range(len(clusters)):
            for j in range(i + 1, len(clusters)):
                closeness = model.cluster_closeness(clusters[i], clusters[j])
                key = (-closeness, cluster_name(clusters[i]),
                       cluster_name(clusters[j]), i, j)
                if best is None or key < best:
                    best = key
        assert best is not None
        _, _, _, i, j = best
        clusters[i] = clusters[i] + clusters[j]
        del clusters[j]

    clusters.sort(key=cluster_name)
    partition = Partition(system)
    for index, cluster in enumerate(clusters, start=1):
        only_variables = all(isinstance(obj, Variable) for obj in cluster)
        kind = ModuleKind.MEMORY if only_variables else ModuleKind.CHIP
        module = partition.add_module(f"{module_prefix}{index}", kind)
        for obj in sorted(cluster, key=object_name):
            partition.assign(obj, module)
    partition.validate()
    return partition
