"""Group-migration improvement for partitions.

The SpecSyn partitioner (the paper's ref [1]) follows its constructive
clustering with *group migration* -- a Kernighan/Lin-flavoured
hill-climbing pass that moves objects between modules whenever that
reduces the cut (the traffic crossing module boundaries, i.e. exactly
the bus demand that interface synthesis must then carry).

:func:`improve_partition` implements the classic scheme:

1. compute every object's *gain* (cut reduction if it moved to another
   module),
2. tentatively apply the best move (even when its gain is negative --
   the KL trick that escapes shallow local minima), lock the object,
3. repeat until all objects are locked, keep the best prefix of the
   move sequence, and
4. run more passes until one yields no improvement.

Memory modules only accept variables, and a module is never emptied.
The result is a *new* partition; the input is not mutated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.tracer import span as obs_span
from repro.partition.closeness import ClosenessModel, PartObject, object_name
from repro.partition.module import ModuleKind
from repro.partition.partitioner import Partition
from repro.spec.behavior import Behavior


@dataclass
class ImprovementReport:
    """What the migration pass did."""

    initial_cut: int
    final_cut: int
    passes: int
    moves_applied: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def improvement(self) -> int:
        return self.initial_cut - self.final_cut

    def describe(self) -> str:
        lines = [
            f"group migration: cut {self.initial_cut} -> {self.final_cut} "
            f"({self.improvement} bits saved) in {self.passes} pass(es)"
        ]
        for name, source, target in self.moves_applied:
            lines.append(f"  moved {name}: {source} -> {target}")
        return "\n".join(lines)


def _assignment_of(partition: Partition) -> Dict[PartObject, str]:
    assignment: Dict[PartObject, str] = {}
    for obj in [*partition.system.behaviors, *partition.system.variables]:
        assignment[obj] = partition.module_of(obj).name
    return assignment


def _cut(model: ClosenessModel, assignment: Dict[PartObject, str]) -> int:
    total = 0
    for behavior in model.system.behaviors:
        for variable in model.system.variables:
            bits = model.traffic(behavior, variable)
            if bits and assignment[behavior] != assignment[variable]:
                total += bits
    return total


def _may_move(obj: PartObject, target_kind: ModuleKind,
              assignment: Dict[PartObject, str], source: str) -> bool:
    if isinstance(obj, Behavior) and target_kind is ModuleKind.MEMORY:
        return False
    # Never empty a module.
    remaining = sum(1 for o, m in assignment.items() if m == source)
    return remaining > 1


def improve_partition(partition: Partition,
                      max_passes: int = 10,
                      model: Optional[ClosenessModel] = None,
                      ) -> Tuple[Partition, ImprovementReport]:
    """Run group migration; returns (improved partition, report)."""
    partition.validate()
    if len(partition.modules) < 2:
        report = ImprovementReport(initial_cut=0, final_cut=0, passes=0)
        return partition, report

    with obs_span("partition.improve", system=partition.system.name,
                  modules=len(partition.modules)) as sp:
        improved, report = _improve(partition, max_passes, model)
        sp.set(passes=report.passes, initial_cut=report.initial_cut,
               final_cut=report.final_cut)
    return improved, report


def _improve(partition: Partition, max_passes: int,
             model: Optional[ClosenessModel],
             ) -> Tuple[Partition, ImprovementReport]:
    model = model or ClosenessModel(partition.system)
    module_kinds = {m.name: m.kind for m in partition.modules}
    assignment = _assignment_of(partition)
    initial_cut = _cut(model, assignment)
    best_cut = initial_cut
    applied: List[Tuple[str, str, str]] = []
    passes = 0

    for _ in range(max_passes):
        passes += 1
        pass_moves = _one_pass(model, assignment, module_kinds)
        # Keep the best prefix of this pass's move sequence.
        best_prefix = 0
        best_prefix_cut = best_cut
        trial = dict(assignment)
        for index, (obj, _, target, cut_after) in enumerate(pass_moves,
                                                            start=1):
            trial[obj] = target
            if cut_after < best_prefix_cut:
                best_prefix_cut = cut_after
                best_prefix = index
        if best_prefix == 0:
            break
        for obj, source, target, _ in pass_moves[:best_prefix]:
            assignment[obj] = target
            applied.append((object_name(obj), source, target))
        best_cut = best_prefix_cut

    improved = _rebuild(partition, assignment)
    report = ImprovementReport(
        initial_cut=initial_cut,
        final_cut=best_cut,
        passes=passes,
        moves_applied=applied,
    )
    return improved, report


def _one_pass(model: ClosenessModel,
              assignment: Dict[PartObject, str],
              module_kinds: Dict[str, ModuleKind],
              ) -> List[Tuple[PartObject, str, str, int]]:
    """One KL pass: greedy best-gain moves with locking.

    Returns the tentative move sequence as
    ``(object, source, target, cut_after_move)`` tuples.
    """
    working = dict(assignment)
    locked: set = set()
    moves: List[Tuple[PartObject, str, str, int]] = []
    current_cut = _cut(model, working)
    objects = [*model.system.behaviors, *model.system.variables]
    module_names = sorted(module_kinds)

    for _ in range(len(objects)):
        best: Optional[Tuple[int, str, PartObject, str]] = None
        for obj in objects:
            if obj in locked:
                continue
            source = working[obj]
            for target in module_names:
                if target == source:
                    continue
                if not _may_move(obj, module_kinds[target], working,
                                 source):
                    continue
                working[obj] = target
                cut_after = _cut(model, working)
                working[obj] = source
                key = (cut_after, target, obj, source)
                if best is None or \
                        (key[0], key[1], object_name(key[2])) < \
                        (best[0], best[1], object_name(best[2])):
                    best = key
        if best is None:
            break
        cut_after, target, obj, source = best
        working[obj] = target
        locked.add(obj)
        moves.append((obj, source, target, cut_after))
        current_cut = cut_after
    return moves


def _rebuild(original: Partition,
             assignment: Dict[PartObject, str]) -> Partition:
    improved = Partition(original.system)
    for module in original.modules:
        improved.add_module(module.name, module.kind)
    for obj, module_name in assignment.items():
        improved.assign(obj, module_name)
    improved.validate()
    return improved
